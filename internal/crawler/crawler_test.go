package crawler

import (
	"bytes"
	"sync"
	"testing"

	"repro/internal/capture"
	"repro/internal/capturedb"
	"repro/internal/detect"
	"repro/internal/simtime"
	"repro/internal/socialfeed"
	"repro/internal/webworld"
)

func crawlWorld(t *testing.T) *webworld.World {
	t.Helper()
	return webworld.New(webworld.Config{Seed: 1, Domains: 3_000})
}

func TestCrawlDayVantageSplit(t *testing.T) {
	w := crawlWorld(t)
	feed := socialfeed.New(w, socialfeed.Config{Seed: 1, SharesPerDay: 2_000})
	p := NewPlatform(w, Config{Seed: 1, Workers: 8})
	store := capture.NewMemStore()
	for day := simtime.Day(0); day < 3; day++ {
		p.CrawlDay(day, feed.Day(day), store)
	}
	us, eu := 0, 0
	for _, c := range store.All() {
		switch c.Vantage.Name {
		case capture.USCloud.Name:
			us++
		case capture.EUCloud.Name:
			eu++
		default:
			t.Fatalf("unexpected vantage %q", c.Vantage.Name)
		}
		if !c.Vantage.Cloud {
			t.Fatal("social crawls must come from cloud address space")
		}
	}
	total := us + eu
	if total == 0 {
		t.Fatal("no captures")
	}
	usShare := float64(us) / float64(total)
	if usShare < 0.45 || usShare > 0.55 {
		t.Errorf("US share = %.2f, want ≈0.50 (paper: 50%% of crawls from the EU)", usShare)
	}
	if p.Captures != int64(total) {
		t.Errorf("Captures counter = %d, stored %d", p.Captures, total)
	}
}

func TestCrawlDayDeterministicOrder(t *testing.T) {
	w := crawlWorld(t)
	run := func() []string {
		feed := socialfeed.New(w, socialfeed.Config{Seed: 2, SharesPerDay: 300})
		p := NewPlatform(w, Config{Seed: 2, Workers: 4})
		store := capture.NewMemStore()
		p.CrawlDay(0, feed.Day(0), store)
		var out []string
		for _, c := range store.All() {
			out = append(out, c.SeedURL+"|"+c.Vantage.Name)
		}
		return out
	}
	a, b := run(), run()
	if len(a) != len(b) {
		t.Fatalf("lengths differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("capture %d differs despite identical seeds", i)
		}
	}
}

func TestCrawlWindowProgress(t *testing.T) {
	w := crawlWorld(t)
	feed := socialfeed.New(w, socialfeed.Config{Seed: 3, SharesPerDay: 50})
	p := NewPlatform(w, Config{Seed: 3})
	store := capture.NewMemStore()
	days := 0
	p.CrawlWindow(feed, 0, 4, store, func(day simtime.Day, captures int64) { days++ })
	if days != 5 {
		t.Errorf("progress callbacks = %d, want 5", days)
	}
}

func TestSeedProbe(t *testing.T) {
	w := crawlWorld(t)
	var sawHTTPS, sawHTTPWWW, sawApex, sawUnreachable bool
	for _, d := range w.Domains()[:1000] {
		probe := SeedProbe(w, d.Name)
		switch probe.Outcome {
		case ProbeHTTPSWWW:
			sawHTTPS = true
			if probe.SeedURL != "https://www."+d.Name+"/" {
				t.Errorf("seed URL %q", probe.SeedURL)
			}
		case ProbeHTTPWWW:
			sawHTTPWWW = true
			if probe.SeedURL != "http://www."+d.Name+"/" {
				t.Errorf("seed URL %q", probe.SeedURL)
			}
			if d.HTTPSWWW || !d.HTTPWWW {
				t.Errorf("%s: http-www probe but HTTPSWWW=%v HTTPWWW=%v",
					d.Name, d.HTTPSWWW, d.HTTPWWW)
			}
		case ProbeHTTPApex:
			sawApex = true
			if probe.SeedURL != "http://"+d.Name+"/" {
				t.Errorf("seed URL %q", probe.SeedURL)
			}
		case ProbeUnreachable:
			sawUnreachable = true
			if probe.SeedURL != "" {
				t.Error("unreachable probes must not yield a seed URL")
			}
		}
	}
	if !sawHTTPS || !sawHTTPWWW || !sawApex || !sawUnreachable {
		t.Errorf("probe outcome coverage: https=%v http-www=%v apex=%v unreachable=%v",
			sawHTTPS, sawHTTPWWW, sawApex, sawUnreachable)
	}
	if SeedProbe(w, "missing.example").Outcome != ProbeUnreachable {
		t.Error("unknown domains must probe unreachable")
	}
}

// TestCampaignWorkerDeterminism pins the parallel campaign contract:
// probe slices and per-configuration store contents are byte-identical
// at any worker count.
func TestCampaignWorkerDeterminism(t *testing.T) {
	w := crawlWorld(t)
	var domains []string
	for _, d := range w.Domains()[:300] {
		domains = append(domains, d.Name)
	}
	run := func(workers int) *CampaignResult {
		c := &Campaign{World: w, Domains: domains, Day: simtime.Table1Snapshot, Workers: workers}
		return c.Run()
	}
	serial := run(1)
	for _, workers := range []int{2, 8, 64, 1000} {
		par := run(workers)
		if len(par.Probes) != len(serial.Probes) {
			t.Fatalf("workers=%d: %d probes, serial %d", workers, len(par.Probes), len(serial.Probes))
		}
		for i := range serial.Probes {
			if par.Probes[i] != serial.Probes[i] {
				t.Fatalf("workers=%d: probe %d = %+v, serial %+v",
					workers, i, par.Probes[i], serial.Probes[i])
			}
		}
		for key, ss := range serial.Stores {
			ps := par.Stores[key]
			if ps == nil {
				t.Fatalf("workers=%d: missing store %q", workers, key)
			}
			if ps.Len() != ss.Len() {
				t.Fatalf("workers=%d %s: %d captures, serial %d", workers, key, ps.Len(), ss.Len())
			}
			pc, sc := ps.All(), ss.All()
			for i := range sc {
				want, err := capturedb.Encode(sc[i])
				if err != nil {
					t.Fatal(err)
				}
				got, err := capturedb.Encode(pc[i])
				if err != nil {
					t.Fatal(err)
				}
				if !bytes.Equal(got, want) {
					t.Fatalf("workers=%d %s: capture %d differs from serial:\n got %s\nwant %s",
						workers, key, i, got, want)
				}
			}
		}
	}
}

// TestObservationsConcurrentCrawl drives the lock-striped Observations
// from concurrent CrawlDay workers; run under -race it is the
// regression test for the striping.
func TestObservationsConcurrentCrawl(t *testing.T) {
	w := crawlWorld(t)
	feed := socialfeed.New(w, socialfeed.Config{Seed: 4, SharesPerDay: 400})
	obs := detect.NewObservations(detect.Default())
	const days = 8
	// Feed.Day is stateful (cross-day dedup) — generate the share
	// stream serially up front, then crawl and record concurrently.
	sharesByDay := make([][]socialfeed.Share, days)
	for day := simtime.Day(0); day < days; day++ {
		sharesByDay[day] = feed.Day(day)
	}
	var wg sync.WaitGroup
	for day := simtime.Day(0); day < days; day++ {
		wg.Add(1)
		go func(day simtime.Day) {
			defer wg.Done()
			p := NewPlatform(w, Config{Seed: 4, Workers: 2})
			store := capture.NewMemStore()
			p.CrawlDay(day, sharesByDay[day], store)
			var inner sync.WaitGroup
			caps := store.All()
			for half := 0; half < 2; half++ {
				inner.Add(1)
				go func(caps []*capture.Capture) {
					defer inner.Done()
					for _, c := range caps {
						obs.Record(c)
					}
				}(caps[half*len(caps)/2 : (half+1)*len(caps)/2])
			}
			inner.Wait()
		}(day)
	}
	wg.Wait()
	if obs.Total == 0 || obs.NumDomains() == 0 {
		t.Fatalf("no observations recorded: total=%d domains=%d", obs.Total, obs.NumDomains())
	}
	// The striped store must agree with a serial re-record.
	serial := detect.NewObservations(detect.Default())
	for day := simtime.Day(0); day < days; day++ {
		p := NewPlatform(w, Config{Seed: 4, Workers: 2})
		store := capture.NewMemStore()
		p.CrawlDay(day, sharesByDay[day], store)
		for _, c := range store.All() {
			serial.Record(c)
		}
	}
	if obs.Total != serial.Total || obs.NumDomains() != serial.NumDomains() {
		t.Fatalf("concurrent totals diverge: total %d vs %d, domains %d vs %d",
			obs.Total, serial.Total, obs.NumDomains(), serial.NumDomains())
	}
}

func TestToplistCampaign(t *testing.T) {
	w := crawlWorld(t)
	var domains []string
	for _, d := range w.Domains()[:300] {
		domains = append(domains, d.Name)
	}
	c := &Campaign{World: w, Domains: domains, Day: simtime.Table1Snapshot}
	res := c.Run()
	if len(res.Probes) != 300 {
		t.Fatalf("probes = %d", len(res.Probes))
	}
	configs := ToplistConfigs()
	if len(configs) != 6 {
		t.Fatalf("want the six Table 1 configurations, got %d", len(configs))
	}
	keys := map[string]bool{}
	for _, tc := range configs {
		key := ConfigKey(tc)
		if keys[key] {
			t.Fatalf("duplicate config key %q", key)
		}
		keys[key] = true
		store := res.Stores[key]
		if store == nil {
			t.Fatalf("missing store for %q", key)
		}
		if store.Len() == 0 {
			t.Errorf("store %q empty", key)
		}
		// Toplist crawls store the DOM for non-failed captures.
		for _, cap := range store.All() {
			if !cap.Failed && cap.Status == 200 && cap.DOM == "" {
				t.Errorf("%s: toplist capture without DOM", key)
				break
			}
		}
	}
	// Unreachable domains are probed but produce no captures.
	unreachable := 0
	for _, p := range res.Probes {
		if p.Outcome == ProbeUnreachable {
			unreachable++
		}
	}
	want := (300 - unreachable) // per config
	for key, store := range res.Stores {
		if store.Len() != want {
			t.Errorf("%s: %d captures, want %d", key, store.Len(), want)
		}
	}
}

func TestProbeOutcomeString(t *testing.T) {
	for _, o := range []ProbeOutcome{ProbeHTTPSWWW, ProbeHTTPWWW, ProbeHTTPApex, ProbeUnreachable} {
		if o.String() == "" {
			t.Error("empty outcome name")
		}
	}
}
