package crawler

import (
	"bytes"
	"context"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/capture"
	"repro/internal/obs"
	"repro/internal/resilience"
	"repro/internal/simtime"
	"repro/internal/socialfeed"
	"repro/internal/webworld"
)

// stressWorld is shared across stress iterations (construction is the
// expensive part).
var stressWorld = struct {
	once sync.Once
	w    *webworld.World
}{}

func getStressWorld() *webworld.World {
	stressWorld.once.Do(func() {
		stressWorld.w = webworld.New(webworld.Config{Seed: 9, Domains: 400})
	})
	return stressWorld.w
}

// checkStressInvariants asserts the pipeline's accounting after Run
// has returned: every accepted submission ends in exactly one of
// recorded / dead-lettered / dropped, and no share is both recorded
// and dead-lettered. When the platform ran with live telemetry, the
// metric counters must tell the same story as the mutex-guarded
// ledger.
func checkStressInvariants(t *testing.T, name string, p *StreamPlatform, store *capture.MemStore, accepted int64) {
	t.Helper()
	st := p.Stats()
	if m := p.cfg.Metrics; m != nil {
		if got := m.Succeeded.Value(); got != st.Succeeded {
			t.Errorf("%s: succeeded metric %d != ledger %d", name, got, st.Succeeded)
		}
		if got := m.Failed.Value(); got != st.FailedRecorded {
			t.Errorf("%s: failed metric %d != ledger %d", name, got, st.FailedRecorded)
		}
		if got := m.Retries.Value(); got != st.Retries {
			t.Errorf("%s: retries metric %d != ledger %d", name, got, st.Retries)
		}
		var deadTotal int64
		for _, c := range m.deadLetters {
			deadTotal += c.Value()
		}
		if want := st.DeadLettered + st.Dropped; deadTotal != want {
			t.Errorf("%s: dead-letter metrics sum %d != ledger %d", name, deadTotal, want)
		}
		if snap := m.VisitSeconds.Snapshot(); snap.Count != st.Succeeded+st.FailedRecorded+st.DeadLettered {
			t.Errorf("%s: visit latency observations %d != processed shares %d",
				name, snap.Count, st.Succeeded+st.FailedRecorded+st.DeadLettered)
		}
	}
	if st.Submitted != accepted {
		t.Errorf("%s: platform counted %d submissions, test accepted %d", name, st.Submitted, accepted)
	}
	if got := p.Captures() + st.DeadLettered + st.Dropped; got != st.Submitted {
		t.Errorf("%s: captures %d + dead %d + dropped %d = %d != submitted %d",
			name, p.Captures(), st.DeadLettered, st.Dropped, got, st.Submitted)
	}
	if int64(store.Len()) != p.Captures() {
		t.Errorf("%s: store has %d captures, platform says %d", name, store.Len(), p.Captures())
	}
	// Each submission used a unique URL: recorded and dead-lettered
	// sets must be disjoint and their union sized to the ledger.
	recorded := make(map[string]bool, store.Len())
	for _, c := range store.All() {
		if recorded[c.SeedURL] {
			t.Errorf("%s: %s recorded twice", name, c.SeedURL)
		}
		recorded[c.SeedURL] = true
	}
	dead := p.DeadLetters().Entries()
	deadSeen := make(map[string]bool, len(dead))
	for _, e := range dead {
		if recorded[e.URL] {
			t.Errorf("%s: %s both recorded and dead-lettered (%s)", name, e.URL, e.Reason)
		}
		if deadSeen[e.URL] {
			t.Errorf("%s: %s dead-lettered twice", name, e.URL)
		}
		deadSeen[e.URL] = true
	}
	if int64(len(dead)) != st.DeadLettered+st.Dropped {
		t.Errorf("%s: dead sink %d entries vs ledger %d", name, len(dead), st.DeadLettered+st.Dropped)
	}
}

// TestStreamStressOrderings exercises concurrent Submit / Run / Close
// / context-cancel interleavings under the race detector. Scenario
// "close": submitters finish, Close drains cleanly. Scenario "cancel":
// cancellation lands mid-stream while submitters race it.
func TestStreamStressOrderings(t *testing.T) {
	w := getStressWorld()
	var urlSeq atomic.Int64 // unique per submission, across all iterations

	domains := make([]*webworld.Domain, 0, 64)
	for _, d := range w.Domains() {
		if !d.Unreachable && d.RedirectTo == "" {
			domains = append(domains, d)
			if len(domains) == 64 {
				break
			}
		}
	}

	run := func(name string, iter int, cancelMidway bool) {
		reg := obs.NewRegistry()
		p := NewStreamPlatform(w, StreamConfig{
			Seed:           uint64(100 + iter),
			Workers:        6,
			QueueDepth:     32,
			PerDomainDelay: 100 * time.Microsecond,
			Retry:          resilience.RetryPolicy{MaxAttempts: 3, BaseDelay: 100 * time.Microsecond, MaxDelay: 500 * time.Microsecond},
			Breaker:        resilience.BreakerConfig{Threshold: 4, Cooldown: 5 * time.Millisecond},
			Metrics:        NewStreamMetrics(reg),
			Tracer:         obs.NewTracer(obs.TracerConfig{}),
		})
		p.RegisterMetrics(reg)
		store := capture.NewMemStore()
		ctx, cancel := context.WithCancel(context.Background())
		defer cancel()

		runDone := make(chan struct{})
		go func() {
			defer close(runDone)
			p.Run(ctx, store)
		}()

		const submitters = 4
		const perSubmitter = 120
		var accepted atomic.Int64
		var wg sync.WaitGroup
		for s := 0; s < submitters; s++ {
			wg.Add(1)
			go func(s int) {
				defer wg.Done()
				for i := 0; i < perSubmitter; i++ {
					d := domains[(s*perSubmitter+i)%len(domains)]
					share := socialfeed.Share{
						URL:    fmt.Sprintf("https://www.%s/s/%d", d.Name, urlSeq.Add(1)),
						Domain: d.Name,
					}
					if err := p.Submit(ctx, simtime.Day(150+i%3), share); err != nil {
						return // cancelled or stopped: stop submitting
					}
					accepted.Add(1)
				}
			}(s)
		}

		if cancelMidway {
			time.Sleep(time.Duration(2+iter) * time.Millisecond)
			cancel()
			wg.Wait()
		} else {
			wg.Wait()
			p.Close()
		}
		select {
		case <-runDone:
		case <-time.After(30 * time.Second):
			t.Fatalf("%s/%d: Run did not return", name, iter)
		}
		if cancelMidway {
			// Close after Run returned must not break accounting, and
			// late Submits must be refused.
			p.Close()
			if err := p.Submit(context.Background(), 150, socialfeed.Share{URL: "x", Domain: "x"}); err != ErrStopped {
				t.Errorf("%s/%d: post-shutdown Submit = %v, want ErrStopped", name, iter, err)
			}
		}
		checkStressInvariants(t, fmt.Sprintf("%s/%d", name, iter), p, store, accepted.Load())
		// The exposition produced under concurrent load must stay
		// parseable.
		var buf bytes.Buffer
		if err := reg.WritePrometheus(&buf); err != nil {
			t.Fatalf("%s/%d: %v", name, iter, err)
		}
		if err := obs.ValidateExposition(&buf); err != nil {
			t.Errorf("%s/%d: invalid exposition: %v", name, iter, err)
		}
	}

	for iter := 0; iter < 3; iter++ {
		run("close", iter, false)
		run("cancel", iter, true)
	}
}
