package crawler

import (
	"bytes"
	"context"
	"strings"
	"testing"
	"time"

	"repro/internal/capture"
	"repro/internal/obs"
	"repro/internal/resilience"
	"repro/internal/simtime"
	"repro/internal/socialfeed"
)

// telClock is a fixed clock: with it, politeness reservations are pure
// arithmetic and every span timestamp is constant.
func telClock() func() time.Time {
	at := time.Date(2020, 5, 1, 0, 0, 0, 0, time.UTC)
	return func() time.Time { return at }
}

// With a fixed clock, successive reservations of the same domain step
// the schedule forward by exactly PerDomainDelay each time.
func TestPolitenessReserveDeterministic(t *testing.T) {
	w := crawlWorld(t)
	const delay = 10 * time.Second
	p := NewStreamPlatform(w, StreamConfig{PerDomainDelay: delay, Now: telClock()})
	for i, want := range []time.Duration{0, delay, 2 * delay, 3 * delay} {
		if got := p.politenessReserve("example.com"); got != want {
			t.Errorf("reservation %d = %v, want %v", i, got, want)
		}
	}
	if got := p.politenessReserve("other.org"); got != 0 {
		t.Errorf("fresh domain reservation = %v, want 0", got)
	}
}

// streamTraceRun runs the platform over a deterministic feed with a
// fixed-clock tracer and returns the full NDJSON export.
func streamTraceRun(t *testing.T, workers int) string {
	t.Helper()
	w := crawlWorld(t)
	tr := obs.NewTracer(obs.TracerConfig{Clock: telClock()})
	p := NewStreamPlatform(w, StreamConfig{
		Seed:           7,
		Workers:        workers,
		PerDomainDelay: time.Nanosecond,
		Retry:          resilience.RetryPolicy{MaxAttempts: 3, BaseDelay: time.Nanosecond, MaxDelay: time.Nanosecond},
		Tracer:         tr,
		Now:            telClock(),
	})
	store := capture.NewMemStore()
	ctx := context.Background()
	done := make(chan struct{})
	go func() {
		defer close(done)
		p.Run(ctx, store)
	}()
	feed := socialfeed.New(w, socialfeed.Config{Seed: 5, SharesPerDay: 200})
	for day := simtime.Day(0); day < 2; day++ {
		for _, s := range feed.Day(day) {
			if err := p.Submit(ctx, day, s); err != nil {
				t.Fatalf("submit: %v", err)
			}
		}
	}
	p.Close()
	<-done
	var buf bytes.Buffer
	if err := tr.WriteNDJSON(&buf); err != nil {
		t.Fatal(err)
	}
	return buf.String()
}

// The headline determinism contract: the streaming pipeline's full
// span export — visits, retries, store writes — is byte-identical
// across worker counts under a fixed clock. Span identity is
// structural and export order canonical, so goroutine interleaving
// cannot leak into the bytes.
func TestStreamTraceDeterministicAcrossWorkers(t *testing.T) {
	a := streamTraceRun(t, 2)
	b := streamTraceRun(t, 8)
	if a != b {
		t.Fatalf("trace export differs between 2 and 8 workers:\n--- 2 workers (%d bytes)\n%.2000s\n--- 8 workers (%d bytes)\n%.2000s",
			len(a), a, len(b), b)
	}
	for _, want := range []string{`"name":"visit"`, `"name":"store"`} {
		if !strings.Contains(a, want) {
			t.Errorf("export missing %s", want)
		}
	}
}

// campaignTraceRun runs a toplist campaign with a fixed-clock tracer
// and returns the visit/retry span export. Shard spans are excluded:
// their count tracks the worker count by construction (their identity
// and the visit parent ids do not).
func campaignTraceRun(t *testing.T, workers int) string {
	t.Helper()
	w := crawlWorld(t)
	var domains []string
	for _, d := range w.Domains()[:120] {
		domains = append(domains, d.Name)
	}
	tr := obs.NewTracer(obs.TracerConfig{Clock: telClock(), Cap: 1 << 20})
	c := &Campaign{
		World:   w,
		Domains: domains,
		Day:     simtime.Table1Snapshot,
		Workers: workers,
		Tracer:  tr,
		Now:     telClock(),
	}
	c.Run()
	var buf bytes.Buffer
	if err := tr.WriteNDJSON(&buf, "visit", "retry"); err != nil {
		t.Fatal(err)
	}
	return buf.String()
}

func TestCampaignTraceDeterministicAcrossWorkers(t *testing.T) {
	a := campaignTraceRun(t, 1)
	b := campaignTraceRun(t, 3)
	if a != b {
		t.Fatalf("campaign trace differs between 1 and 3 workers (%d vs %d bytes)", len(a), len(b))
	}
	if !strings.Contains(a, `"parent":"shard[]"`) {
		t.Error("campaign visits should parent to the worker-independent shard id")
	}
}

// Campaign metrics must agree with the probe outcomes and store
// contents the result reports.
func TestCampaignMetrics(t *testing.T) {
	w := crawlWorld(t)
	var domains []string
	for _, d := range w.Domains()[:200] {
		domains = append(domains, d.Name)
	}
	reg := obs.NewRegistry()
	m := NewCampaignMetrics(reg)
	c := &Campaign{World: w, Domains: domains, Day: simtime.Table1Snapshot, Workers: 4, Metrics: m}
	res := c.Run()

	var unreachable, reachable int64
	for _, pr := range res.Probes {
		if pr.Outcome == ProbeUnreachable {
			unreachable++
		} else {
			reachable++
		}
	}
	if got := m.probes[ProbeUnreachable].Value(); got != unreachable {
		t.Errorf("unreachable probes metric = %d, probe slice has %d", got, unreachable)
	}
	var probeTotal int64
	for _, ctr := range m.probes {
		probeTotal += ctr.Value()
	}
	if probeTotal != int64(len(domains)) {
		t.Errorf("probe counters sum to %d, want %d", probeTotal, len(domains))
	}
	// One visit latency observation per (reachable domain, config).
	snap := m.VisitSeconds.Snapshot()
	if want := reachable * int64(len(ToplistConfigs())); snap.Count != want {
		t.Errorf("visit observations = %d, want %d", snap.Count, want)
	}
	var buf bytes.Buffer
	if err := reg.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	if err := obs.ValidateExposition(&buf); err != nil {
		t.Errorf("campaign exposition invalid: %v", err)
	}
}
