package crawler

import (
	"errors"
	"testing"

	"repro/internal/browser"
	"repro/internal/capture"
	"repro/internal/simtime"
	"repro/internal/webworld"
)

// findTransient locates a reachable domain with an outage on some day.
func findTransient(w *webworld.World) (*webworld.Domain, simtime.Day) {
	for _, d := range w.Domains() {
		if d.Unreachable || d.NoValidResponse || d.HTTPError || d.RedirectTo != "" {
			continue
		}
		for day := simtime.Day(100); day < 130; day++ {
			if w.TransientDown(d.Name, day) {
				return d, day
			}
		}
	}
	return nil, 0
}

func TestTransientFailureSurfaces(t *testing.T) {
	w := webworld.New(webworld.Config{Seed: 1, Domains: 2_000})
	d, day := findTransient(w)
	if d == nil {
		t.Fatal("no transient outage found in 2000×30 domain-days (rate 2%)")
	}
	_, err := w.Visit(d.Name, "/", webworld.VisitContext{Day: day, Geo: webworld.GeoEU})
	if !errors.Is(err, webworld.ErrTemporarilyDown) {
		t.Fatalf("want ErrTemporarilyDown, got %v", err)
	}
	// A browser load on the outage day records a failed capture…
	b := browser.New(w, browser.Options{})
	cap := b.Load("https://www."+d.Name+"/", day, capture.EUCloud)
	if !cap.Failed {
		t.Fatal("outage must fail the capture")
	}
	// …and the outage is transient: another day succeeds.
	recovered := false
	for off := simtime.Day(1); off <= 7; off++ {
		if !w.TransientDown(d.Name, day+off) {
			c2 := b.Load("https://www."+d.Name+"/", day+off, capture.EUCloud)
			recovered = !c2.Failed
			break
		}
	}
	if !recovered {
		t.Error("transient outage did not recover within a week")
	}
}

// TestCampaignRetriesRecoverTransients: the toplist campaign's weekly
// retry procedure recovers almost all transient outages, so per-config
// capture success rates approach the reachable-domain count.
func TestCampaignRetriesRecoverTransients(t *testing.T) {
	w := webworld.New(webworld.Config{Seed: 1, Domains: 2_000})
	var domains []string
	for _, d := range w.Domains()[:500] {
		domains = append(domains, d.Name)
	}
	c := &Campaign{World: w, Domains: domains, Day: simtime.Table1Snapshot}
	res := c.Run()
	for key, store := range res.Stores {
		failed := 0
		for _, cap := range store.All() {
			if cap.Failed {
				failed++
			}
		}
		// Without retries ≈2% of captures would fail transiently; with
		// four attempts the residual rate is ≈0.02⁴.
		if failed > store.Len()/100 {
			t.Errorf("%s: %d/%d failed captures despite retries", key, failed, store.Len())
		}
	}
}
