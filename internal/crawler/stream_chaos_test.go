package crawler

import (
	"bytes"
	"context"
	"testing"
	"time"

	"repro/internal/capture"
	"repro/internal/resilience"
	"repro/internal/resilience/chaos"
	"repro/internal/simtime"
	"repro/internal/socialfeed"
	"repro/internal/webworld"
)

// chaosRates are the acceptance-criteria fault rates: 5% transient
// 5xx, 2% connection drops, 1% anti-bot interstitials.
func chaosRates(seed uint64) chaos.Config {
	return chaos.Config{Seed: seed, FiveXXRate: 0.05, DropRate: 0.02, AntiBotRate: 0.01}
}

// runChaosStream pushes three feed days through a stream platform
// whose substrate injects faults, and returns the platform.
func runChaosStream(t *testing.T, w *webworld.World, inj *chaos.Injector, cfg StreamConfig) *StreamPlatform {
	t.Helper()
	cfg.Visitor = inj.Visitor(w)
	if cfg.PerDomainDelay == 0 {
		cfg.PerDomainDelay = 200 * time.Microsecond
	}
	p := NewStreamPlatform(w, cfg)
	store := capture.NewMemStore()
	ctx := context.Background()
	done := make(chan struct{})
	go func() {
		defer close(done)
		p.Run(ctx, store)
	}()
	feed := socialfeed.New(w, socialfeed.Config{Seed: 5, SharesPerDay: 400})
	for day := simtime.Day(200); day < 203; day++ {
		for _, s := range feed.Day(day) {
			if err := p.Submit(ctx, day, s); err != nil {
				t.Fatalf("submit: %v", err)
			}
		}
	}
	p.Close()
	<-done
	return p
}

// TestChaosStreamRetryCompletion is the acceptance bar: under injected
// faults (5% 5xx, 2% drops, 1% anti-bot) the retrying pipeline
// completes ≥99% of submitted shares, while the no-retry baseline in
// the same test is measurably worse. Both runs keep the full
// accounting invariant.
func TestChaosStreamRetryCompletion(t *testing.T) {
	// Inherent webworld outages are drawn per day, so the stream
	// pipeline's minute-scale retries cannot recover them (they land in
	// the dead-letter sink, correctly). Disable them to measure the
	// injected rates in isolation.
	w := webworld.New(webworld.Config{Seed: 1, Domains: 2_000, TransientDownRate: -1})

	check := func(name string, p *StreamPlatform) StreamStats {
		t.Helper()
		st := p.Stats()
		if got := p.Captures() + st.DeadLettered + st.Dropped; got != st.Submitted {
			t.Errorf("%s: captures %d + dead %d + dropped %d != submitted %d",
				name, p.Captures(), st.DeadLettered, st.Dropped, st.Submitted)
		}
		return st
	}

	baselineP := runChaosStream(t, w, chaos.New(chaosRates(7)), StreamConfig{Seed: 1, Workers: 8})
	base := check("baseline", baselineP)
	baseRate := float64(base.Succeeded) / float64(base.Submitted)
	// ~8% injected + ~2% inherent transient outages: well below 97%.
	if baseRate >= 0.97 {
		t.Fatalf("no-retry baseline succeeded %.2f%%: faults not biting", 100*baseRate)
	}
	if base.Retries != 0 || base.DeadLettered != 0 {
		t.Fatalf("baseline must not retry or dead-letter: %+v", base)
	}

	retryP := runChaosStream(t, w, chaos.New(chaosRates(7)), StreamConfig{
		Seed:    1,
		Workers: 8,
		Retry: resilience.RetryPolicy{
			MaxAttempts: 4,
			BaseDelay:   500 * time.Microsecond,
			MaxDelay:    2 * time.Millisecond,
		},
		Breaker: resilience.BreakerConfig{Threshold: 8, Cooldown: 50 * time.Millisecond},
	})
	st := check("retry", retryP)
	rate := float64(st.Succeeded) / float64(st.Submitted)
	if rate < 0.99 {
		t.Fatalf("retrying pipeline succeeded %.2f%% (%d/%d), want ≥99%%; stats %+v, dead by reason %v",
			100*rate, st.Succeeded, st.Submitted, st, retryP.DeadLetters().ByReason())
	}
	if rate <= baseRate {
		t.Fatalf("retrying rate %.4f not above baseline %.4f", rate, baseRate)
	}
	if st.Retries == 0 {
		t.Fatal("retrying pipeline performed no retries under 8% faults")
	}
	// Whatever was dead-lettered is accounted with a reason.
	if int64(retryP.DeadLetters().Len()) != st.DeadLettered+st.Dropped {
		t.Fatalf("dead-letter sink has %d entries, stats say %d",
			retryP.DeadLetters().Len(), st.DeadLettered+st.Dropped)
	}
}

// TestChaosStreamScheduleDeterminism: two identical seeded runs of the
// retrying pipeline draw byte-identical fault schedules, even though
// worker interleaving differs. (Breakers are disabled here: their
// open/close decisions depend on cross-share ordering by design.)
func TestChaosStreamScheduleDeterminism(t *testing.T) {
	w := webworld.New(webworld.Config{Seed: 1, Domains: 800})
	var schedules [][]byte
	for run := 0; run < 2; run++ {
		inj := chaos.New(chaosRates(13))
		runChaosStream(t, w, inj, StreamConfig{
			Seed:    1,
			Workers: 2 + run*6,
			Retry:   resilience.RetryPolicy{MaxAttempts: 3, BaseDelay: 200 * time.Microsecond, MaxDelay: time.Millisecond},
		})
		schedules = append(schedules, inj.Schedule())
	}
	if len(schedules[0]) == 0 {
		t.Fatal("no faults injected")
	}
	if !bytes.Equal(schedules[0], schedules[1]) {
		t.Fatalf("fault schedules differ across same-seed runs: %d vs %d bytes",
			len(schedules[0]), len(schedules[1]))
	}
}
