package crawler

import (
	"repro/internal/obs"
	"repro/internal/resilience"
)

// StreamMetrics is the streaming pipeline's telemetry recorder: a
// visit-latency histogram, per-outcome counters, and dead-letter
// counts by reason. A nil *StreamMetrics (what NewStreamMetrics
// returns for a nil registry) is the no-op recorder — instrumented
// code pays one nil check and nothing else.
type StreamMetrics struct {
	// VisitSeconds is the wall time from dequeue to terminal outcome
	// (recorded capture or dead-letter), retries and backoff included.
	VisitSeconds *obs.Histogram
	// Succeeded and Failed split recorded captures by usability.
	Succeeded *obs.Counter
	Failed    *obs.Counter
	// Retries counts loads beyond each share's first attempt.
	Retries *obs.Counter

	// deadLetters pre-resolves the known reasons so the hot path never
	// touches the vec's map; deadVec covers reasons added later.
	deadLetters map[string]*obs.Counter
	deadVec     *obs.CounterVec
}

// NewStreamMetrics registers the pipeline's metric families on reg;
// returns nil (the no-op recorder) when reg is nil.
func NewStreamMetrics(reg *obs.Registry) *StreamMetrics {
	if reg == nil {
		return nil
	}
	vec := obs.NewCounterVec(reg, "crawler_dead_letters_total",
		"Shares routed to the dead-letter sink, by reason.", "reason")
	m := &StreamMetrics{
		VisitSeconds: obs.NewHistogram(reg, "crawler_visit_seconds",
			"Wall time from dequeue to terminal outcome per share, retries included.",
			obs.LatencyBuckets),
		Succeeded: obs.NewCounter(reg, "crawler_visits_succeeded_total",
			"Recorded captures that produced a usable page."),
		Failed: obs.NewCounter(reg, "crawler_visits_failed_total",
			"Recorded captures with terminal failures."),
		Retries: obs.NewCounter(reg, "crawler_retries_total",
			"Retry loads beyond each share's first attempt."),
		deadLetters: make(map[string]*obs.Counter, 4),
		deadVec:     vec,
	}
	for _, reason := range []string{
		resilience.ReasonBudgetExhausted,
		resilience.ReasonBreakerOpen,
		resilience.ReasonCancelled,
		resilience.ReasonShutdownDrop,
	} {
		m.deadLetters[reason] = vec.With(reason)
	}
	return m
}

// recordVisit books a recorded capture's outcome.
func (m *StreamMetrics) recordVisit(ok bool) {
	if m == nil {
		return
	}
	if ok {
		m.Succeeded.Inc()
	} else {
		m.Failed.Inc()
	}
}

// retry books one retry load.
func (m *StreamMetrics) retry() {
	if m != nil {
		m.Retries.Inc()
	}
}

// deadLetter books one dead-lettered share under its reason.
func (m *StreamMetrics) deadLetter(reason string) {
	if m == nil {
		return
	}
	if c, ok := m.deadLetters[reason]; ok {
		c.Inc()
		return
	}
	m.deadVec.With(reason).Inc()
}

// RegisterMetrics publishes the platform's live state on reg — capture
// queue depth and the per-domain breaker set (open/tracked gauges plus
// transition counters) — complementing the per-visit recorder in
// StreamConfig.Metrics. Call it once, before Run.
func (p *StreamPlatform) RegisterMetrics(reg *obs.Registry) {
	if reg == nil {
		return
	}
	obs.NewGaugeFunc(reg, "crawler_queue_depth",
		"Shares waiting in the bounded capture queue.",
		func() float64 { return float64(len(p.queue)) })
	obs.NewGaugeFunc(reg, "crawler_queue_capacity",
		"Capture queue bound; ingestion blocks when depth reaches it.",
		func() float64 { return float64(cap(p.queue)) })
	p.breakers.RegisterMetrics(reg)
}

// CampaignMetrics is the toplist-campaign recorder.
type CampaignMetrics struct {
	// VisitSeconds is the wall time of one (domain, config) capture,
	// including the week of retry offsets.
	VisitSeconds *obs.Histogram
	// Retries counts loads beyond the first retryOffset.
	Retries *obs.Counter

	// probes pre-resolves the four probe outcomes.
	probes map[ProbeOutcome]*obs.Counter
}

// NewCampaignMetrics registers the campaign metric families on reg;
// returns nil (the no-op recorder) when reg is nil.
func NewCampaignMetrics(reg *obs.Registry) *CampaignMetrics {
	if reg == nil {
		return nil
	}
	vec := obs.NewCounterVec(reg, "campaign_probes_total",
		"Seed-URL probe results, by outcome.", "outcome")
	m := &CampaignMetrics{
		VisitSeconds: obs.NewHistogram(reg, "campaign_visit_seconds",
			"Wall time of one (domain, configuration) capture, retry offsets included.",
			obs.LatencyBuckets),
		Retries: obs.NewCounter(reg, "campaign_retries_total",
			"Campaign loads beyond each capture's first retry offset."),
		probes: make(map[ProbeOutcome]*obs.Counter, 4),
	}
	for _, o := range []ProbeOutcome{ProbeHTTPSWWW, ProbeHTTPWWW, ProbeHTTPApex, ProbeUnreachable} {
		m.probes[o] = vec.With(o.String())
	}
	return m
}

func (m *CampaignMetrics) probe(o ProbeOutcome) {
	if m != nil {
		m.probes[o].Inc()
	}
}

func (m *CampaignMetrics) retry() {
	if m != nil {
		m.Retries.Inc()
	}
}
