// Package crawler implements the Netograph-style measurement platform
// (Figure 3): a capture queue seeded from the social-media feed, worker
// pools of instrumented browsers in US and EU data centers (each URL
// assigned randomly, 50% crawled from within the EU), and the
// toplist-based campaign infrastructure used for Tables 1 and A.3.
package crawler

import (
	"sync"

	"repro/internal/browser"
	"repro/internal/capture"
	"repro/internal/rng"
	"repro/internal/simtime"
	"repro/internal/socialfeed"
	"repro/internal/webworld"
)

// Config parameterizes the platform.
type Config struct {
	Seed uint64
	// Workers is the per-day crawl concurrency. Defaults to 8.
	Workers int
}

// Platform is the social-feed crawling pipeline.
type Platform struct {
	cfg   Config
	world *webworld.World
	vsrc  *rng.Source
	us    *browser.Browser
	eu    *browser.Browser

	// Captures counts all captures performed.
	Captures int64
}

// NewPlatform wires a platform over a world.
func NewPlatform(w *webworld.World, cfg Config) *Platform {
	if cfg.Workers <= 0 {
		cfg.Workers = 8
	}
	opts := browser.Options{} // cloud crawls use the default config
	return &Platform{
		cfg:   cfg,
		world: w,
		vsrc:  VantageSource(cfg.Seed),
		us:    browser.New(w, opts),
		eu:    browser.New(w, opts),
	}
}

// CrawlDay captures every share of one feed day, assigning each URL
// randomly to the US or EU cloud, and records results to the sink.
// Captures are recorded in share order regardless of worker scheduling
// so runs are reproducible.
func (p *Platform) CrawlDay(day simtime.Day, shares []socialfeed.Share, sink capture.Sink) {
	results := make([]*capture.Capture, len(shares))
	var wg sync.WaitGroup
	sem := make(chan struct{}, p.cfg.Workers)
	for i, s := range shares {
		wg.Add(1)
		sem <- struct{}{}
		go func(i int, s socialfeed.Share) {
			defer wg.Done()
			defer func() { <-sem }()
			vantage := PickVantage(p.vsrc, s.URL, day)
			b := p.us
			if vantage.Name == capture.EUCloud.Name {
				b = p.eu
			}
			results[i] = b.Load(s.URL, day, vantage)
		}(i, s)
	}
	wg.Wait()
	for _, c := range results {
		if c != nil {
			sink.Record(c)
			p.Captures++
		}
	}
}

// CrawlWindow runs the feed from day `from` through `to` inclusive.
// progress, if non-nil, is called after each day.
func (p *Platform) CrawlWindow(feed *socialfeed.Feed, from, to simtime.Day, sink capture.Sink, progress func(day simtime.Day, captures int64)) {
	for day := from; day <= to; day++ {
		p.CrawlDay(day, feed.Day(day), sink)
		if progress != nil {
			progress(day, p.Captures)
		}
	}
}
