package crawler

import (
	"fmt"
	"runtime"
	"strconv"
	"sync"
	"time"

	"repro/internal/browser"
	"repro/internal/capture"
	"repro/internal/obs"
	"repro/internal/simtime"
	"repro/internal/webworld"
)

// Toplist campaign (Section 3.2, "Toplist-Based Web Measurement"):
// every toplist domain is converted to a crawlable seed URL by probing
// TLS and TCP reachability, then crawled six times in immediate
// succession — four configurations from a European university network
// plus US and EU cloud control captures.

// ProbeOutcome classifies the seed-URL probe of one domain.
type ProbeOutcome int

const (
	// ProbeHTTPSWWW: https://www.<domain>/ served a valid certificate.
	ProbeHTTPSWWW ProbeOutcome = iota
	// ProbeHTTPWWW: TLS failed but port 80 on www.<domain> connected.
	ProbeHTTPWWW
	// ProbeHTTPApex: only http://<domain>/ was usable.
	ProbeHTTPApex
	// ProbeUnreachable: no connection on either port after retries.
	ProbeUnreachable
)

func (o ProbeOutcome) String() string {
	switch o {
	case ProbeHTTPSWWW:
		return "https-www"
	case ProbeHTTPWWW:
		return "http-www"
	case ProbeHTTPApex:
		return "http-apex"
	default:
		return "unreachable"
	}
}

// ProbeResult is the seed URL decision for one toplist domain.
type ProbeResult struct {
	Domain  string
	Outcome ProbeOutcome
	SeedURL string // empty when unreachable
}

// SeedProbe determines the seed URL for a toplist domain, mirroring
// the paper's procedure: TLS to www:443 with hostname validation,
// falling back to TCP on :80, falling back to the apex; repeated three
// times over a week to catch temporarily unavailable domains (the
// simulation's unavailability is persistent, so one pass suffices).
func SeedProbe(w *webworld.World, domain string) ProbeResult {
	d := w.Domain(domain)
	if d == nil || d.Unreachable {
		return ProbeResult{Domain: domain, Outcome: ProbeUnreachable}
	}
	if d.HTTPSWWW {
		return ProbeResult{Domain: domain, Outcome: ProbeHTTPSWWW,
			SeedURL: fmt.Sprintf("https://www.%s/", domain)}
	}
	if d.HTTPWWW {
		// TLS to www:443 failed but plain HTTP on www:80 connected.
		return ProbeResult{Domain: domain, Outcome: ProbeHTTPWWW,
			SeedURL: fmt.Sprintf("http://www.%s/", domain)}
	}
	return ProbeResult{Domain: domain, Outcome: ProbeHTTPApex,
		SeedURL: fmt.Sprintf("http://%s/", domain)}
}

// ToplistConfig is one of the six capture configurations.
type ToplistConfig struct {
	Vantage capture.Vantage
	Opts    browser.Options
}

// ToplistConfigs returns the six configurations in the order of the
// Table 1 columns: US cloud, EU cloud, then the four EU-university
// configurations (default, extended timeout, German, British English).
// All toplist crawls store the DOM tree and full-page screenshots.
func ToplistConfigs() []ToplistConfig {
	return []ToplistConfig{
		{capture.USCloud, browser.Options{StoreDOM: true}},
		{capture.EUCloud, browser.Options{StoreDOM: true}},
		{capture.EUUniversity, browser.Options{StoreDOM: true}},
		{capture.EUUniversity, browser.Options{ExtendedTimeout: true, StoreDOM: true}},
		{capture.EUUniversity, browser.Options{Language: "de", ExtendedTimeout: true, StoreDOM: true}},
		{capture.EUUniversity, browser.Options{Language: "en-GB", ExtendedTimeout: true, StoreDOM: true}},
	}
}

// ConfigKey labels a (vantage, options) pair for result grouping.
func ConfigKey(tc ToplistConfig) string {
	return tc.Vantage.Name + "/" + tc.Opts.ConfigLabel()
}

// Campaign crawls a toplist snapshot.
type Campaign struct {
	World   *webworld.World
	Domains []string
	Day     simtime.Day
	// Workers is the crawl concurrency of Run. Zero or negative means
	// GOMAXPROCS. Results are byte-identical at any worker count.
	Workers int
	// Metrics receives per-visit latency, retry, and probe-outcome
	// counts; nil disables recording.
	Metrics *CampaignMetrics
	// Tracer receives campaign → shard → visit spans; nil disables
	// tracing. With a fixed-clock tracer the exported span set is
	// byte-identical at any worker count (shard bounds vary only in
	// post-start display attributes, never in span identity).
	Tracer *obs.Tracer
	// Now is the clock used for visit-latency observations, injectable
	// for deterministic tests (default time.Now). Matches the
	// resilience.BreakerConfig.Now pattern.
	Now func() time.Time
}

// CampaignResult holds per-configuration capture stores and the probe
// outcomes.
type CampaignResult struct {
	// Stores maps ConfigKey → captures of that configuration.
	Stores map[string]*capture.MemStore
	Probes []ProbeResult
}

// retryOffsets are the days after the snapshot on which unsuccessful
// captures are retried: "We retried all unsuccessful captures three
// times over the span of a week" (Section 3.2).
var retryOffsets = []simtime.Day{0, 2, 4, 7}

// campaignShard is the private output of one campaign worker: the
// probes and per-config captures of one contiguous slice of the
// toplist, in toplist order.
type campaignShard struct {
	probes []ProbeResult
	stores []*capture.MemStore // index parallels ToplistConfigs()
}

// Run executes the full six-configuration campaign, retrying
// unsuccessful captures over the following week.
//
// The toplist is sharded into contiguous ranges across Workers
// goroutines. Each worker owns a private set of six per-config
// browsers and records into private per-worker stores; after the pool
// drains, shards are merged in toplist order. Because shards are
// contiguous and the merge respects shard order, the result — probe
// slice and per-config store contents — is byte-identical to a serial
// run at any worker count.
func (c *Campaign) Run() *CampaignResult {
	if c.Now == nil {
		c.Now = time.Now
	}
	workers := c.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > len(c.Domains) {
		workers = len(c.Domains)
	}
	if workers < 1 {
		workers = 1
	}
	configs := ToplistConfigs()

	var root *obs.Span
	if c.Tracer != nil {
		root = c.Tracer.Start("campaign",
			obs.A("day", c.Day.String()),
			obs.A("domains", strconv.Itoa(len(c.Domains))))
		root.Attr("workers", strconv.Itoa(workers))
		defer root.End()
	}

	shards := make([]campaignShard, workers)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		// Contiguous shard bounds: the first (len % workers) shards get
		// one extra domain.
		lo := w * len(c.Domains) / workers
		hi := (w + 1) * len(c.Domains) / workers
		// The shard span carries no start attributes: its identity (and
		// hence the parent id of every visit span below it) must not
		// depend on the worker count. Bounds are display-only.
		var shardSpan *obs.Span
		if root != nil {
			shardSpan = root.Start("shard")
			shardSpan.Attr("lo", strconv.Itoa(lo))
			shardSpan.Attr("hi", strconv.Itoa(hi))
		}
		wg.Add(1)
		go func(shard *campaignShard, domains []string, span *obs.Span) {
			defer wg.Done()
			defer span.End()
			c.runShard(shard, domains, configs, span)
		}(&shards[w], c.Domains[lo:hi], shardSpan)
	}
	wg.Wait()

	res := &CampaignResult{Stores: make(map[string]*capture.MemStore, len(configs))}
	for _, tc := range configs {
		res.Stores[ConfigKey(tc)] = capture.NewMemStore()
	}
	for _, sh := range shards {
		res.Probes = append(res.Probes, sh.probes...)
		for i, tc := range configs {
			res.Stores[ConfigKey(tc)].Merge(sh.stores[i])
		}
	}
	return res
}

// runShard crawls one contiguous toplist slice with a private browser
// and store set.
func (c *Campaign) runShard(out *campaignShard, domains []string, configs []ToplistConfig, span *obs.Span) {
	browsers := make([]*browser.Browser, len(configs))
	out.stores = make([]*capture.MemStore, len(configs))
	for i, tc := range configs {
		browsers[i] = browser.New(c.World, tc.Opts)
		out.stores[i] = capture.NewMemStore()
	}
	for _, domain := range domains {
		probe := SeedProbe(c.World, domain)
		out.probes = append(out.probes, probe)
		c.Metrics.probe(probe.Outcome)
		if probe.Outcome == ProbeUnreachable {
			continue
		}
		for i, tc := range configs {
			var visit *obs.Span
			if span != nil {
				visit = span.Start("visit",
					obs.A("url", probe.SeedURL),
					obs.A("config", ConfigKey(tc)))
			}
			var start time.Time
			if c.Metrics != nil {
				start = c.Now()
			}
			var cap *capture.Capture
			for n, off := range retryOffsets {
				var retry *obs.Span
				if visit != nil && n > 0 {
					retry = visit.Start("retry", obs.A("n", strconv.Itoa(n)))
				}
				if n > 0 {
					c.Metrics.retry()
				}
				cap = browsers[i].Load(probe.SeedURL, c.Day+off, tc.Vantage)
				retry.End()
				if !cap.Failed {
					break
				}
			}
			if m := c.Metrics; m != nil {
				m.VisitSeconds.Observe(c.Now().Sub(start).Seconds())
			}
			if visit != nil {
				if cap.Failed {
					visit.Attr("outcome", "failed")
				} else {
					visit.Attr("outcome", "success")
				}
				visit.End()
			}
			out.stores[i].Record(cap)
		}
	}
}
