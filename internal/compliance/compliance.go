// Package compliance audits consent banners for the legal-compliance
// defects the consent ecosystem makes measurable at scale (Section 5.2:
// "the consistent web interfaces provided by CMPs help researchers
// discover possible privacy violations at scale"). The audit taxonomy
// follows Matte, Bielova and Santos (S&P 2020), whom the paper builds
// on: consent signals sent before the user makes a choice, positive
// consent registered after an explicit opt-out, and accept wording that
// may not qualify as an affirmative consent signal.
package compliance

import (
	"fmt"

	"repro/internal/cmps"
	"repro/internal/consensu"
	"repro/internal/simtime"
	"repro/internal/tcf"
	"repro/internal/webworld"
)

// Violation identifies one defect class.
type Violation int

const (
	// ConsentBeforeChoice: a positive consent signal is stored before
	// the user interacts with the dialog (12% of TCF sites in Matte
	// et al.).
	ConsentBeforeChoice Violation = iota
	// ConsentAfterOptOut: the site registers positive consent even
	// though the user explicitly opted out.
	ConsentAfterOptOut
	// NonAffirmativeWording: the accept button's wording ("Whatever",
	// "Sounds good") may not qualify as a freely given, specific,
	// informed and unambiguous indication of the user's wishes.
	NonAffirmativeWording
	// NoDirectReject: rejecting requires navigating beyond the first
	// page, against the CNIL guidance of a real choice at the same
	// level.
	NoDirectReject
	numViolations int = iota
)

var violationNames = [...]string{
	"consent-before-choice", "consent-after-optout",
	"non-affirmative-wording", "no-direct-reject",
}

func (v Violation) String() string {
	if int(v) < len(violationNames) {
		return violationNames[v]
	}
	return "unknown"
}

// Violations enumerates all audit checks.
func Violations() []Violation {
	out := make([]Violation, numViolations)
	for i := range out {
		out[i] = Violation(i)
	}
	return out
}

// Report is the audit result for one website.
type Report struct {
	Domain string
	CMP    cmps.ID
	// Found lists the detected violations.
	Found []Violation
	// StoredAfterOptOut is the consent string the site stored after
	// the simulated opt-out (empty when none was stored).
	StoredAfterOptOut string
}

// Has reports whether the audit found the violation.
func (r *Report) Has(v Violation) bool {
	for _, f := range r.Found {
		if f == v {
			return true
		}
	}
	return false
}

// Auditor drives simulated dialog interactions against the synthetic
// web and inspects the stored consent signals.
type Auditor struct {
	world *webworld.World
	store *consensu.Store
}

// New returns an auditor over the world with a fresh consent store.
func New(w *webworld.World) *Auditor {
	return &Auditor{world: w, store: consensu.NewStore()}
}

// Store exposes the underlying consent store for inspection.
func (a *Auditor) Store() *consensu.Store { return a.store }

// AuditSite audits one website at a day, simulating a fresh EU user
// who opts out. Sites without a TCF-implementing CMP at the day return
// a nil report: their consent signals are not externally inspectable.
func (a *Auditor) AuditSite(domain string, day simtime.Day) (*Report, error) {
	d := a.world.Domain(domain)
	if d == nil {
		return nil, fmt.Errorf("compliance: unknown domain %q", domain)
	}
	cmp := d.CMPAt(day)
	if cmp == cmps.None || !cmp.ImplementsTCF() {
		return nil, nil
	}
	page, err := a.world.Visit(domain, "/", webworld.VisitContext{Day: day, Geo: webworld.GeoEU})
	if err != nil {
		return nil, err
	}
	r := &Report{Domain: d.Name, CMP: cmp}

	// Check 1: a consent signal present before any interaction.
	for _, c := range page.Cookies {
		if c.Name == consensu.CookieName && c.Value != "" {
			if decoded, err := tcf.Decode(c.Value); err == nil && grantsAnything(decoded) {
				r.Found = append(r.Found, ConsentBeforeChoice)
			}
		}
	}

	// Check 2: simulate an explicit opt-out and inspect what the site
	// stores in the shared cookie.
	userID := "auditor:" + d.Name
	stored := a.simulateOptOut(d, day, userID)
	if stored != "" {
		r.StoredAfterOptOut = stored
		if decoded, err := tcf.Decode(stored); err == nil && grantsAnything(decoded) {
			r.Found = append(r.Found, ConsentAfterOptOut)
		}
	}

	// Check 3: accept wording.
	if !d.Custom.AcceptAffirmative && !d.APIOnly {
		r.Found = append(r.Found, NonAffirmativeWording)
	}

	// Check 4: no first-page reject option. The conventional banner —
	// 1-click accept plus a link to a settings page — counts: around
	// 50% of sites in Nouwens et al. offered no 1-click opt-out.
	switch d.Custom.Variant {
	case webworld.VariantConventional, webworld.VariantMoreOptions,
		webworld.VariantNoControlLink, webworld.VariantAutonomyButton,
		webworld.VariantFooterLink:
		r.Found = append(r.Found, NoDirectReject)
	}
	return r, nil
}

// simulateOptOut performs the opt-out interaction and returns the
// consent string the site stored, or "".
func (a *Auditor) simulateOptOut(d *webworld.Domain, day simtime.Day, userID string) string {
	c := tcf.New(day.Time())
	c.MaxVendorID = 500
	if d.IgnoresOptOut {
		// The defective implementation records a full grant anyway.
		c.SetAllPurposes(true)
		c.SetAllVendors(500, true)
	}
	s, err := c.Encode()
	if err != nil {
		return ""
	}
	if err := a.store.Set(userID, s); err != nil {
		return ""
	}
	stored, err := a.store.CookieAccess(userID)
	if err != nil {
		return ""
	}
	return stored
}

// grantsAnything reports whether the string grants any purpose to any
// vendor.
func grantsAnything(c *tcf.ConsentString) bool {
	anyPurpose := false
	for _, ok := range c.PurposesAllowed {
		if ok {
			anyPurpose = true
			break
		}
	}
	return anyPurpose && len(c.ConsentedVendors()) > 0
}

// SurveyResult aggregates an audit sweep.
type SurveyResult struct {
	// Audited is the number of TCF sites audited.
	Audited int
	// Counts per violation.
	Counts [numViolations]int
}

// Share returns the fraction of audited sites with the violation.
func (s *SurveyResult) Share(v Violation) float64 {
	if s.Audited == 0 {
		return 0
	}
	return float64(s.Counts[v]) / float64(s.Audited)
}

// Survey audits every domain in the list that runs a TCF CMP at the
// day and aggregates violation shares.
func (a *Auditor) Survey(domains []string, day simtime.Day) (*SurveyResult, error) {
	res := &SurveyResult{}
	for _, domain := range domains {
		r, err := a.AuditSite(domain, day)
		if err != nil {
			if _, unknown := err.(*webworld.ErrUnknownDomain); unknown {
				return nil, err
			}
			continue // unreachable site: skip, as a real audit would
		}
		if r == nil {
			continue
		}
		res.Audited++
		for _, v := range r.Found {
			res.Counts[v]++
		}
	}
	return res, nil
}
