package compliance

import (
	"testing"

	"repro/internal/cmps"
	"repro/internal/simtime"
	"repro/internal/tcf"
	"repro/internal/webworld"
)

func auditWorld(t *testing.T) *webworld.World {
	t.Helper()
	return webworld.New(webworld.Config{Seed: 1, Domains: 20_000})
}

func findTCFSite(w *webworld.World, day simtime.Day, pred func(*webworld.Domain) bool) *webworld.Domain {
	for _, d := range w.Domains() {
		cmp := d.CMPAt(day)
		if cmp != cmps.None && cmp.ImplementsTCF() && !d.Unreachable && d.RedirectTo == "" &&
			!d.Geo451 && pred(d) {
			return d
		}
	}
	return nil
}

func TestAuditNonTCFSiteIsNil(t *testing.T) {
	w := auditWorld(t)
	a := New(w)
	day := simtime.Table1Snapshot
	// A domain with no CMP must yield no report.
	for _, d := range w.Domains() {
		if d.CMPAt(day) == cmps.None && !d.Unreachable && d.RedirectTo == "" {
			r, err := a.AuditSite(d.Name, day)
			if err != nil {
				t.Fatal(err)
			}
			if r != nil {
				t.Fatal("non-CMP sites are not auditable")
			}
			return
		}
	}
}

func TestAuditUnknownDomain(t *testing.T) {
	a := New(auditWorld(t))
	if _, err := a.AuditSite("missing.example", 0); err == nil {
		t.Error("unknown domains must error")
	}
}

func TestConsentBeforeChoice(t *testing.T) {
	w := auditWorld(t)
	a := New(w)
	day := simtime.Table1Snapshot
	violating := findTCFSite(w, day, func(d *webworld.Domain) bool { return d.PreChoiceConsent && !d.AntiBot })
	clean := findTCFSite(w, day, func(d *webworld.Domain) bool { return !d.PreChoiceConsent && !d.AntiBot })
	if violating == nil || clean == nil {
		t.Skip("sample lacks required sites")
	}
	rv, err := a.AuditSite(violating.Name, day)
	if err != nil {
		t.Fatal(err)
	}
	if !rv.Has(ConsentBeforeChoice) {
		t.Error("pre-choice consent not detected")
	}
	rc, err := a.AuditSite(clean.Name, day)
	if err != nil {
		t.Fatal(err)
	}
	if rc.Has(ConsentBeforeChoice) {
		t.Error("false positive on clean site")
	}
}

func TestConsentAfterOptOut(t *testing.T) {
	w := auditWorld(t)
	a := New(w)
	day := simtime.Table1Snapshot
	violating := findTCFSite(w, day, func(d *webworld.Domain) bool { return d.IgnoresOptOut })
	honest := findTCFSite(w, day, func(d *webworld.Domain) bool { return !d.IgnoresOptOut })
	if violating == nil || honest == nil {
		t.Skip("sample lacks required sites")
	}
	rv, err := a.AuditSite(violating.Name, day)
	if err != nil {
		t.Fatal(err)
	}
	if !rv.Has(ConsentAfterOptOut) {
		t.Error("ignored opt-out not detected")
	}
	if rv.StoredAfterOptOut == "" {
		t.Fatal("stored string missing")
	}
	c, err := tcf.Decode(rv.StoredAfterOptOut)
	if err != nil {
		t.Fatal(err)
	}
	if len(c.ConsentedVendors()) == 0 {
		t.Error("violating site must have granted vendors")
	}
	rh, err := a.AuditSite(honest.Name, day)
	if err != nil {
		t.Fatal(err)
	}
	if rh.Has(ConsentAfterOptOut) {
		t.Error("false positive on honest site")
	}
	// Honest sites still store a (negative) decision.
	ch, err := tcf.Decode(rh.StoredAfterOptOut)
	if err != nil {
		t.Fatal(err)
	}
	if len(ch.ConsentedVendors()) != 0 {
		t.Error("honest opt-out must grant nothing")
	}
}

func TestSurveyShares(t *testing.T) {
	w := auditWorld(t)
	a := New(w)
	day := simtime.Table1Snapshot
	var domains []string
	for _, d := range w.Domains() {
		domains = append(domains, d.Name)
	}
	res, err := a.Survey(domains, day)
	if err != nil {
		t.Fatal(err)
	}
	if res.Audited < 100 {
		t.Fatalf("audited only %d sites", res.Audited)
	}
	// Matte et al.: 12% send the signal before the choice. Anti-bot
	// sites are still auditable (the auditor is not cloud-based).
	if share := res.Share(ConsentBeforeChoice); share < 0.07 || share > 0.18 {
		t.Errorf("consent-before-choice share = %.3f, want ≈0.12", share)
	}
	if share := res.Share(ConsentAfterOptOut); share < 0.02 || share > 0.10 {
		t.Errorf("consent-after-optout share = %.3f, want ≈0.05", share)
	}
	// Roughly half of sites lack a first-page reject (Nouwens et al.,
	// confirmed by the paper's Quantcast sample).
	if share := res.Share(NoDirectReject); share < 0.2 || share > 0.75 {
		t.Errorf("no-direct-reject share = %.3f", share)
	}
	if res.Share(NonAffirmativeWording) == 0 {
		t.Error("some sites use non-affirmative wording")
	}
}

func TestViolationNames(t *testing.T) {
	if len(Violations()) != numViolations {
		t.Fatal("Violations() incomplete")
	}
	for _, v := range Violations() {
		if v.String() == "unknown" || v.String() == "" {
			t.Errorf("violation %d unnamed", v)
		}
	}
}
