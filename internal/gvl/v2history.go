package gvl

import (
	"sort"

	"repro/internal/rng"
)

// The serving-side read path (internal/decision) answers legal-basis
// questions against the vendor list a consent string was written
// under, not against whatever list happens to be current. That needs
// the whole published v2 history in memory, addressable by version,
// with the per-vendor flexible-purpose declarations that publisher
// restrictions can flip. This file provides that history: the v1
// generator's 215 versions upgraded to the v2 schema, enriched with
// deterministic flexible-purpose declarations.

// V2UpgradeConfig parameterizes the v1→v2 history upgrade.
type V2UpgradeConfig struct {
	// FlexibleSeed roots the deterministic flexible-purpose draw.
	FlexibleSeed uint64
	// FlexibleProb is the probability that a vendor declares one of
	// its purposes as flexible (switchable between consent and
	// legitimate interest by publisher restriction). The draw is keyed
	// by (vendor, purpose), so a vendor's flexible declarations are
	// stable across every version it appears on — matching how real
	// GVL registrations persist between list publications.
	FlexibleProb float64
}

// DefaultV2UpgradeConfig mirrors the observed v2 GVL, where roughly a
// quarter of declared purposes are registered as flexible.
func DefaultV2UpgradeConfig() V2UpgradeConfig {
	return V2UpgradeConfig{FlexibleSeed: 1, FlexibleProb: 0.25}
}

// HistoryV2 is an ordered sequence of published v2 vendor lists,
// ascending by VendorListVersion.
type HistoryV2 struct {
	Versions []ListV2
}

// UpgradeHistory converts a v1 history to its v2 equivalent, version
// by version, and enriches each vendor with flexible-purpose
// declarations drawn deterministically from cfg.
func UpgradeHistory(h *History, cfg V2UpgradeConfig) *HistoryV2 {
	src := rng.New(cfg.FlexibleSeed).Derive("gvl-flexible")
	out := &HistoryV2{Versions: make([]ListV2, 0, len(h.Versions))}
	for i := range h.Versions {
		l2 := UpgradeList(&h.Versions[i])
		for j := range l2.Vendors {
			v := &l2.Vendors[j]
			v.FlexiblePurposes = flexiblePurposes(src, v, cfg.FlexibleProb)
		}
		out.Versions = append(out.Versions, *l2)
	}
	sort.Slice(out.Versions, func(i, j int) bool {
		return out.Versions[i].VendorListVersion < out.Versions[j].VendorListVersion
	})
	return out
}

// flexiblePurposes draws the flexible subset of a vendor's declared
// purposes. Only declared purposes are eligible: a flexible purpose is
// by definition one the vendor registered under some legal basis.
func flexiblePurposes(src *rng.Source, v *VendorV2, prob float64) []int {
	if prob <= 0 {
		return nil
	}
	var out []int
	add := func(ps []int) {
		for _, p := range ps {
			if src.Bool(prob, "flex", rng.Key(v.ID), rng.Key(p)) {
				out = append(out, p)
			}
		}
	}
	add(v.Purposes)
	add(v.LegIntPurposes)
	sort.Ints(out)
	return out
}

// At returns the list published exactly at the given version, or nil.
func (h *HistoryV2) At(version int) *ListV2 {
	i := sort.Search(len(h.Versions), func(i int) bool {
		return h.Versions[i].VendorListVersion >= version
	})
	if i < len(h.Versions) && h.Versions[i].VendorListVersion == version {
		return &h.Versions[i]
	}
	return nil
}

// AtOrBefore returns the newest list whose version is ≤ the given
// version — the list a consent string stamped with that version was
// written under, even if the exact version was never published (or the
// string post-dates the history). Returns nil when the version
// predates the first published list.
func (h *HistoryV2) AtOrBefore(version int) *ListV2 {
	i := sort.Search(len(h.Versions), func(i int) bool {
		return h.Versions[i].VendorListVersion > version
	})
	if i == 0 {
		return nil
	}
	return &h.Versions[i-1]
}

// MinVersion returns the first published version, or 0 if empty.
func (h *HistoryV2) MinVersion() int {
	if len(h.Versions) == 0 {
		return 0
	}
	return h.Versions[0].VendorListVersion
}

// MaxVersion returns the last published version, or 0 if empty.
func (h *HistoryV2) MaxVersion() int {
	if len(h.Versions) == 0 {
		return 0
	}
	return h.Versions[len(h.Versions)-1].VendorListVersion
}

// Vendor returns the vendor with the given ID on a v2 list, or nil —
// the per-version membership check the decision pre-resolver encodes
// into its presence bitsets.
func (l *ListV2) Vendor(id int) *VendorV2 {
	for i := range l.Vendors {
		if l.Vendors[i].ID == id {
			return &l.Vendors[i]
		}
	}
	return nil
}

// MaxVendorID returns the highest vendor ID on the v2 list.
func (l *ListV2) MaxVendorID() int {
	max := 0
	for i := range l.Vendors {
		if l.Vendors[i].ID > max {
			max = l.Vendors[i].ID
		}
	}
	return max
}

// DeclaresConsent reports whether the vendor registered the purpose
// under the consent legal basis.
func (v *VendorV2) DeclaresConsent(purpose int) bool { return containsInt(v.Purposes, purpose) }

// DeclaresLegInt reports whether the vendor registered the purpose
// under legitimate interest.
func (v *VendorV2) DeclaresLegInt(purpose int) bool { return containsInt(v.LegIntPurposes, purpose) }

// DeclaresFlexible reports whether the vendor registered the purpose
// as flexible (legal basis switchable by publisher restriction).
func (v *VendorV2) DeclaresFlexible(purpose int) bool {
	return containsInt(v.FlexiblePurposes, purpose)
}
