// Package gvl implements the IAB Transparency and Consent Framework's
// Global Vendor List (GVL): the master list of advertisers participating
// in the framework. Vendors declare the purposes for which they request
// consent, the purposes they claim under legitimate interest, and the
// features they rely on (Section 2.2).
//
// The package provides the vendor-list.json data model, a deterministic
// generator for the 215-version history the paper downloaded from
// vendorlist.consensu.org, and the longitudinal diff engine behind
// Figures 7 and 8.
package gvl

import (
	"encoding/json"
	"fmt"
	"sort"
	"time"

	"repro/internal/tcf"
)

// Vendor is one advertiser on the Global Vendor List.
type Vendor struct {
	ID   int    `json:"id"`
	Name string `json:"name"`
	// PolicyURL links to the advertiser's privacy policy.
	PolicyURL string `json:"policyUrl"`
	// PurposeIDs are purposes for which the vendor requests consent.
	PurposeIDs []int `json:"purposeIds"`
	// LegIntPurposeIDs are purposes the vendor claims under legitimate
	// interest, allowing processing without user consent (GDPR Art. 6.1b-f).
	LegIntPurposeIDs []int `json:"legIntPurposeIds"`
	// FeatureIDs are the features the vendor relies upon.
	FeatureIDs []int `json:"featureIds"`
}

// RequestsConsent reports whether the vendor requests consent for the
// purpose.
func (v *Vendor) RequestsConsent(purpose int) bool { return containsInt(v.PurposeIDs, purpose) }

// ClaimsLegitimateInterest reports whether the vendor claims the
// purpose as a legitimate interest.
func (v *Vendor) ClaimsLegitimateInterest(purpose int) bool {
	return containsInt(v.LegIntPurposeIDs, purpose)
}

func containsInt(xs []int, x int) bool {
	for _, v := range xs {
		if v == x {
			return true
		}
	}
	return false
}

// purposeJSON / featureJSON mirror the standardized definitions block
// of vendor-list.json.
type purposeJSON struct {
	ID          int    `json:"id"`
	Name        string `json:"name"`
	Description string `json:"description"`
}

// List is one published version of the Global Vendor List, matching the
// schema served at vendorlist.consensu.org/vXXX/vendor-list.json.
type List struct {
	VendorListVersion int       `json:"vendorListVersion"`
	LastUpdated       time.Time `json:"lastUpdated"`
	Vendors           []Vendor  `json:"vendors"`
}

// listJSON is the full wire schema including the static definitions.
type listJSON struct {
	VendorListVersion int           `json:"vendorListVersion"`
	LastUpdated       string        `json:"lastUpdated"`
	Purposes          []purposeJSON `json:"purposes"`
	Features          []purposeJSON `json:"features"`
	Vendors           []Vendor      `json:"vendors"`
}

// MarshalJSON serializes the list in the consensu.org wire format,
// embedding the standardized purpose and feature definitions.
func (l *List) MarshalJSON() ([]byte, error) {
	out := listJSON{
		VendorListVersion: l.VendorListVersion,
		LastUpdated:       l.LastUpdated.UTC().Format(time.RFC3339),
		Vendors:           l.Vendors,
	}
	for _, p := range tcf.Purposes() {
		out.Purposes = append(out.Purposes, purposeJSON{p.ID, p.Name, p.Definition})
	}
	for _, f := range tcf.Features() {
		out.Features = append(out.Features, purposeJSON{f.ID, f.Name, f.Definition})
	}
	return json.Marshal(out)
}

// UnmarshalJSON parses the consensu.org wire format.
func (l *List) UnmarshalJSON(data []byte) error {
	var in listJSON
	if err := json.Unmarshal(data, &in); err != nil {
		return err
	}
	t, err := time.Parse(time.RFC3339, in.LastUpdated)
	if err != nil {
		return fmt.Errorf("gvl: lastUpdated: %w", err)
	}
	l.VendorListVersion = in.VendorListVersion
	l.LastUpdated = t
	l.Vendors = in.Vendors
	return nil
}

// Vendor returns the vendor with the given ID, or nil.
func (l *List) Vendor(id int) *Vendor {
	for i := range l.Vendors {
		if l.Vendors[i].ID == id {
			return &l.Vendors[i]
		}
	}
	return nil
}

// MaxVendorID returns the highest vendor ID on the list (the TCF
// consent string's MaxVendorId field).
func (l *List) MaxVendorID() int {
	max := 0
	for i := range l.Vendors {
		if l.Vendors[i].ID > max {
			max = l.Vendors[i].ID
		}
	}
	return max
}

// PurposeCounts tallies, per purpose ID, how many vendors request
// consent and how many claim legitimate interest. This is the
// per-version datum behind Figure 7.
func (l *List) PurposeCounts() (consent, legInt map[int]int) {
	consent = make(map[int]int, tcf.NumPurposes)
	legInt = make(map[int]int, tcf.NumPurposes)
	for i := range l.Vendors {
		for _, p := range l.Vendors[i].PurposeIDs {
			consent[p]++
		}
		for _, p := range l.Vendors[i].LegIntPurposeIDs {
			legInt[p]++
		}
	}
	return consent, legInt
}

// sortVendor normalizes vendor slices for deterministic output.
func sortVendors(vs []Vendor) {
	sort.Slice(vs, func(i, j int) bool { return vs[i].ID < vs[j].ID })
	for i := range vs {
		sort.Ints(vs[i].PurposeIDs)
		sort.Ints(vs[i].LegIntPurposeIDs)
		sort.Ints(vs[i].FeatureIDs)
	}
}
