package gvl

import (
	"encoding/json"
	"strings"
	"testing"
	"time"
)

func TestUpgradeList(t *testing.T) {
	v1 := &List{
		VendorListVersion: 183,
		LastUpdated:       time.Date(2020, 4, 1, 0, 0, 0, 0, time.UTC),
		Vendors: []Vendor{
			// Consents to all v1 purposes, relies on geolocation.
			{ID: 1, Name: "A", PurposeIDs: []int{1, 2, 3, 4, 5}, FeatureIDs: []int{1, 3}},
			// Claims purposes 1 and 3 under legitimate interest.
			{ID: 2, Name: "B", LegIntPurposeIDs: []int{1, 3}},
			// Overlapping mapping targets must deduplicate.
			{ID: 3, Name: "C", PurposeIDs: []int{2}, LegIntPurposeIDs: []int{2}},
		},
	}
	v2 := UpgradeList(v1)
	if v2.VendorListVersion != 183 || v2.TCFPolicyVersion != 2 || v2.GVLSpecificationVersion != 2 {
		t.Fatalf("header: %+v", v2)
	}
	a := v2.Vendors[0]
	if got, want := len(a.Purposes), 8; got != want { // 1,2,3,4,5,6,7,8
		t.Errorf("vendor A purposes = %v", a.Purposes)
	}
	// v1 feature 3 (geolocation) becomes v2 special feature 1; v1
	// feature 1 stays a plain feature.
	if len(a.SpecialFeatures) != 1 || a.SpecialFeatures[0] != 1 || len(a.Features) != 1 {
		t.Errorf("vendor A features: %v / %v", a.Features, a.SpecialFeatures)
	}
	b := v2.Vendors[1]
	// v1 LI on purpose 1 must migrate to consent (LI on storage is
	// forbidden in v2); LI on v1 purpose 3 maps to v2 LI on 2 and 4.
	if !containsInt(b.Purposes, 1) {
		t.Errorf("vendor B purposes = %v, want storage under consent", b.Purposes)
	}
	if !containsInt(b.LegIntPurposes, 2) || !containsInt(b.LegIntPurposes, 4) {
		t.Errorf("vendor B LI = %v", b.LegIntPurposes)
	}
	if containsInt(b.LegIntPurposes, 1) {
		t.Error("LI on purpose 1 is forbidden in v2")
	}
	cv := v2.Vendors[2]
	// Consent takes precedence over LI for the same mapped purpose.
	for _, p := range cv.LegIntPurposes {
		if containsInt(cv.Purposes, p) {
			t.Errorf("vendor C declares %d under both bases", p)
		}
	}
}

func TestListV2JSONRoundTrip(t *testing.T) {
	v1 := GenerateHistory(HistoryConfig{Seed: 1, Versions: 3, InitialVendors: 25, PeakVendors: 40})
	v2 := UpgradeList(&v1.Versions[2])
	data, err := json.Marshal(v2)
	if err != nil {
		t.Fatal(err)
	}
	s := string(data)
	for _, frag := range []string{`"gvlSpecificationVersion":2`, `"purposes":{`, `"specialFeatures":{`,
		`"Store and/or access information on a device"`, `"vendors":{`} {
		if !strings.Contains(s, frag) {
			t.Errorf("v2 wire JSON missing %q", frag)
		}
	}
	var back ListV2
	if err := json.Unmarshal(data, &back); err != nil {
		t.Fatal(err)
	}
	if back.VendorListVersion != v2.VendorListVersion || len(back.Vendors) != len(v2.Vendors) {
		t.Fatalf("round trip: %d vendors vs %d", len(back.Vendors), len(v2.Vendors))
	}
	for i := range back.Vendors {
		if back.Vendors[i].ID != v2.Vendors[i].ID {
			t.Fatal("vendor ordering lost")
		}
	}
}

func TestPurposeCountsV2(t *testing.T) {
	l := &ListV2{Vendors: []VendorV2{
		{ID: 1, Purposes: []int{1, 3}, LegIntPurposes: []int{7}},
		{ID: 2, Purposes: []int{1}, LegIntPurposes: []int{7, 9}},
	}}
	c, li := l.PurposeCountsV2()
	if c[1] != 2 || c[3] != 1 || li[7] != 2 || li[9] != 1 {
		t.Errorf("counts: %v / %v", c, li)
	}
}

func TestUpgradePreservesPurposeOneDominance(t *testing.T) {
	h := GenerateHistory(DefaultHistoryConfig())
	v2 := UpgradeList(&h.Versions[len(h.Versions)-1])
	c, _ := v2.PurposeCountsV2()
	for p := 2; p <= 10; p++ {
		if c[p] > c[1] {
			t.Errorf("v2 purpose %d (%d) exceeds purpose 1 (%d)", p, c[p], c[1])
		}
	}
}
