package gvl

import (
	"reflect"
	"testing"
)

func smallHistory(t *testing.T) *History {
	t.Helper()
	return GenerateHistory(HistoryConfig{Seed: 7, Versions: 60, InitialVendors: 40, PeakVendors: 120})
}

// TestUpgradeHistoryVersionBoundaries covers the lookups the decision
// pre-resolver depends on: exact hits, the below-minimum hole, gaps,
// and strings stamped with versions newer than the history.
func TestUpgradeHistoryVersionBoundaries(t *testing.T) {
	h := UpgradeHistory(smallHistory(t), DefaultV2UpgradeConfig())
	if len(h.Versions) != 60 {
		t.Fatalf("got %d versions, want 60", len(h.Versions))
	}
	if h.MinVersion() != 1 || h.MaxVersion() != 60 {
		t.Fatalf("version range [%d,%d], want [1,60]", h.MinVersion(), h.MaxVersion())
	}
	for _, v := range []int{1, 2, 59, 60} {
		l := h.At(v)
		if l == nil || l.VendorListVersion != v {
			t.Fatalf("At(%d) = %v", v, l)
		}
		if ab := h.AtOrBefore(v); ab != l {
			t.Fatalf("AtOrBefore(%d) != At(%d) on an exact hit", v, v)
		}
	}
	// Below the first published version there is nothing to resolve
	// against: a v0 stamp predates the framework.
	if l := h.At(0); l != nil {
		t.Fatalf("At(0) = v%d, want nil", l.VendorListVersion)
	}
	if l := h.AtOrBefore(0); l != nil {
		t.Fatalf("AtOrBefore(0) = v%d, want nil", l.VendorListVersion)
	}
	// Past the end of the history the newest list applies (strings
	// written after our last download).
	if l := h.At(61); l != nil {
		t.Fatalf("At(61) = v%d, want nil", l.VendorListVersion)
	}
	if l := h.AtOrBefore(10_000); l == nil || l.VendorListVersion != 60 {
		t.Fatalf("AtOrBefore(10000) = %v, want v60", l)
	}

	// Gap semantics: drop versions 20–29 to simulate an incomplete
	// download; AtOrBefore must resolve mid-gap stamps to v19.
	var gapped HistoryV2
	for i := range h.Versions {
		v := h.Versions[i].VendorListVersion
		if v >= 20 && v <= 29 {
			continue
		}
		gapped.Versions = append(gapped.Versions, h.Versions[i])
	}
	if l := gapped.At(25); l != nil {
		t.Fatalf("At(25) over a gap = v%d, want nil", l.VendorListVersion)
	}
	if l := gapped.AtOrBefore(25); l == nil || l.VendorListVersion != 19 {
		t.Fatalf("AtOrBefore(25) over a gap = %v, want v19", l)
	}
	if l := gapped.AtOrBefore(30); l == nil || l.VendorListVersion != 30 {
		t.Fatalf("AtOrBefore(30) after a gap = %v, want v30", l)
	}
}

// TestUpgradeHistoryVendorDeletion verifies that vendors leaving the
// list between versions disappear from the upgraded history at exactly
// the version they left — the membership edge the resolver's presence
// bitsets encode (a deleted vendor must stop winning auctions under
// newer strings while still resolving under older ones).
func TestUpgradeHistoryVendorDeletion(t *testing.T) {
	h := UpgradeHistory(smallHistory(t), DefaultV2UpgradeConfig())
	deletions := 0
	for i := 1; i < len(h.Versions); i++ {
		prev, cur := &h.Versions[i-1], &h.Versions[i]
		for j := range prev.Vendors {
			id := prev.Vendors[j].ID
			if cur.Vendor(id) != nil {
				continue
			}
			deletions++
			// Once gone, the generator never reuses the ID.
			for k := i; k < len(h.Versions); k++ {
				if h.Versions[k].Vendor(id) != nil {
					t.Fatalf("vendor %d deleted at v%d reappears at v%d",
						id, cur.VendorListVersion, h.Versions[k].VendorListVersion)
				}
			}
			// The older list still resolves the vendor.
			if prev.Vendor(id) == nil {
				t.Fatalf("vendor %d lost from v%d", id, prev.VendorListVersion)
			}
		}
	}
	if deletions == 0 {
		t.Fatal("history has no vendor deletions; churn generator broken or seed too tame")
	}
}

// TestUpgradeHistoryFlexiblePurposes pins the flexible-purpose
// contract: flexible ⊆ declared, draws are deterministic in the seed,
// and a vendor's flexible declarations are stable across versions as
// long as the underlying purpose stays declared.
func TestUpgradeHistoryFlexiblePurposes(t *testing.T) {
	v1 := smallHistory(t)
	cfg := V2UpgradeConfig{FlexibleSeed: 3, FlexibleProb: 0.5}
	h := UpgradeHistory(v1, cfg)
	again := UpgradeHistory(smallHistory(t), cfg)

	flexTotal := 0
	for i := range h.Versions {
		l := &h.Versions[i]
		for j := range l.Vendors {
			v := &l.Vendors[j]
			for _, p := range v.FlexiblePurposes {
				flexTotal++
				if !v.DeclaresConsent(p) && !v.DeclaresLegInt(p) {
					t.Fatalf("v%d vendor %d: flexible purpose %d not declared under any basis",
						l.VendorListVersion, v.ID, p)
				}
			}
			if g := again.Versions[i].Vendor(v.ID); g == nil || !reflect.DeepEqual(g.FlexiblePurposes, v.FlexiblePurposes) {
				t.Fatalf("flexible purposes not deterministic for vendor %d at v%d", v.ID, l.VendorListVersion)
			}
		}
	}
	if flexTotal == 0 {
		t.Fatal("no flexible purposes drawn at prob 0.5")
	}

	// Cross-version stability: whether (vendor, purpose) is flexible
	// depends only on the (seed, vendor, purpose) key, never on the
	// version, so a declared purpose cannot flap between flexible and
	// fixed across publications.
	type key struct{ vendor, purpose int }
	flex := map[key]bool{}
	for i := range h.Versions {
		l := &h.Versions[i]
		for j := range l.Vendors {
			v := &l.Vendors[j]
			for _, p := range append(append([]int(nil), v.Purposes...), v.LegIntPurposes...) {
				k := key{v.ID, p}
				isFlex := v.DeclaresFlexible(p)
				if seen, ok := flex[k]; ok && seen != isFlex {
					t.Fatalf("vendor %d purpose %d flips flexibility at v%d", v.ID, p, l.VendorListVersion)
				}
				flex[k] = isFlex
			}
		}
	}

	// Prob 0 yields no flexible purposes at all.
	none := UpgradeHistory(v1, V2UpgradeConfig{FlexibleSeed: 3, FlexibleProb: 0})
	for i := range none.Versions {
		for j := range none.Versions[i].Vendors {
			if len(none.Versions[i].Vendors[j].FlexiblePurposes) != 0 {
				t.Fatal("FlexibleProb 0 produced flexible purposes")
			}
		}
	}
}
