package gvl

import (
	"encoding/json"
	"strings"
	"testing"
	"testing/quick"
	"time"

	"repro/internal/tcf"
)

func TestJSONRoundTrip(t *testing.T) {
	l := &List{
		VendorListVersion: 42,
		LastUpdated:       time.Date(2019, 6, 5, 0, 0, 0, 0, time.UTC),
		Vendors: []Vendor{
			{ID: 1, Name: "AdVendor 1 Ltd", PolicyURL: "https://vendor1.example/privacy",
				PurposeIDs: []int{1, 3}, LegIntPurposeIDs: []int{5}, FeatureIDs: []int{2}},
			{ID: 7, Name: "AdVendor 7 Ltd", PolicyURL: "https://vendor7.example/privacy",
				PurposeIDs: []int{1}},
		},
	}
	data, err := json.Marshal(l)
	if err != nil {
		t.Fatal(err)
	}
	s := string(data)
	// The wire format embeds the standardized definitions.
	for _, frag := range []string{`"vendorListVersion":42`, `"purposes":[`, `"features":[`,
		`"Information storage and access"`, `"legIntPurposeIds":[5]`, `"policyUrl"`} {
		if !strings.Contains(s, frag) {
			t.Errorf("wire JSON missing %q", frag)
		}
	}
	var back List
	if err := json.Unmarshal(data, &back); err != nil {
		t.Fatal(err)
	}
	if back.VendorListVersion != 42 || !back.LastUpdated.Equal(l.LastUpdated) || len(back.Vendors) != 2 {
		t.Errorf("round trip: %+v", back)
	}
	if v := back.Vendor(1); v == nil || !v.RequestsConsent(3) || !v.ClaimsLegitimateInterest(5) {
		t.Errorf("vendor 1 round trip: %+v", v)
	}
	if back.Vendor(999) != nil {
		t.Error("unknown vendor must be nil")
	}
	if back.MaxVendorID() != 7 {
		t.Errorf("MaxVendorID = %d", back.MaxVendorID())
	}
}

func TestUnmarshalBadDate(t *testing.T) {
	var l List
	if err := json.Unmarshal([]byte(`{"vendorListVersion":1,"lastUpdated":"noon"}`), &l); err == nil {
		t.Error("bad lastUpdated must fail")
	}
}

func TestPurposeCounts(t *testing.T) {
	l := &List{Vendors: []Vendor{
		{ID: 1, PurposeIDs: []int{1, 2}, LegIntPurposeIDs: []int{3}},
		{ID: 2, PurposeIDs: []int{1}, LegIntPurposeIDs: []int{3, 4}},
	}}
	c, li := l.PurposeCounts()
	if c[1] != 2 || c[2] != 1 || li[3] != 2 || li[4] != 1 {
		t.Errorf("counts: consent=%v legint=%v", c, li)
	}
}

func TestDiffTaxonomy(t *testing.T) {
	old := &List{VendorListVersion: 1, Vendors: []Vendor{
		{ID: 1, PurposeIDs: []int{1}},                       // will switch 1: consent -> LI
		{ID: 2, LegIntPurposeIDs: []int{2}},                 // will switch 2: LI -> consent
		{ID: 3, PurposeIDs: []int{1}},                       // will add purpose 4 consent
		{ID: 4, PurposeIDs: []int{1, 5}},                    // will stop purpose 5 consent
		{ID: 5, LegIntPurposeIDs: []int{3}},                 // will stop LI 3
		{ID: 6},                                             // will claim new LI 2
		{ID: 7, PurposeIDs: []int{1}},                       // will leave
		{ID: 9, PurposeIDs: []int{2}, FeatureIDs: []int{1}}, // unchanged
	}}
	new := &List{VendorListVersion: 2, LastUpdated: time.Date(2019, 1, 7, 0, 0, 0, 0, time.UTC), Vendors: []Vendor{
		{ID: 1, LegIntPurposeIDs: []int{1}},
		{ID: 2, PurposeIDs: []int{2}},
		{ID: 3, PurposeIDs: []int{1, 4}},
		{ID: 4, PurposeIDs: []int{1}},
		{ID: 5},
		{ID: 6, LegIntPurposeIDs: []int{2}},
		{ID: 8, PurposeIDs: []int{1}}, // joined
		{ID: 9, PurposeIDs: []int{2}, FeatureIDs: []int{1}},
	}}
	changes := Diff(old, new)
	got := map[string]int{}
	for _, c := range changes {
		got[c.Kind.String()]++
		if c.Version != 2 {
			t.Errorf("change version = %d", c.Version)
		}
	}
	want := map[string]int{
		"consent-to-legint": 1, "legint-to-consent": 1, "start-consent": 1,
		"stop-consent": 1, "stop-legint": 1, "start-legint": 1,
		"vendor-joined": 1, "vendor-left": 1,
	}
	for k, n := range want {
		if got[k] != n {
			t.Errorf("%s: got %d, want %d (all: %v)", k, got[k], n, got)
		}
	}
	if len(changes) != 8 {
		t.Errorf("total changes = %d, want 8", len(changes))
	}
}

func TestGenerateHistoryShape(t *testing.T) {
	h := GenerateHistory(DefaultHistoryConfig())
	if len(h.Versions) != 215 {
		t.Fatalf("want 215 versions (as downloaded by the paper), got %d", len(h.Versions))
	}
	for i := 1; i < len(h.Versions); i++ {
		if h.Versions[i].VendorListVersion != h.Versions[i-1].VendorListVersion+1 {
			t.Fatal("version numbers must be consecutive")
		}
		if !h.Versions[i].LastUpdated.After(h.Versions[i-1].LastUpdated) {
			t.Fatal("publication dates must increase")
		}
	}
	first, last := &h.Versions[0], &h.Versions[len(h.Versions)-1]
	if len(first.Vendors) < 100 || len(first.Vendors) > 250 {
		t.Errorf("initial vendor count = %d", len(first.Vendors))
	}
	if len(last.Vendors) < 550 {
		t.Errorf("final vendor count = %d, want growth to ≈650", len(last.Vendors))
	}

	// Figure 7 shape: purpose 1 is always the most requested purpose.
	for _, pt := range h.PurposeSeries() {
		for p := 2; p <= tcf.NumPurposes; p++ {
			if pt.Consent[p] > pt.Consent[1] {
				t.Fatalf("v%d: purpose %d (%d) exceeds purpose 1 (%d)",
					pt.Version, p, pt.Consent[p], pt.Consent[1])
			}
		}
	}

	// Section 5.2: for every purpose, at least a fifth of vendors
	// claim legitimate interest.
	c, li := last.PurposeCounts()
	_ = c
	for p := 1; p <= tcf.NumPurposes; p++ {
		share := float64(li[p]) / float64(len(last.Vendors))
		if share < 0.20 {
			t.Errorf("purpose %d LI share = %.2f, want ≥ 0.20", p, share)
		}
	}
}

func TestHistoryDeterminism(t *testing.T) {
	cfg := HistoryConfig{Seed: 5, Versions: 30, InitialVendors: 40, PeakVendors: 120}
	a := GenerateHistory(cfg)
	b := GenerateHistory(cfg)
	ja, _ := json.Marshal(a.Versions[len(a.Versions)-1])
	jb, _ := json.Marshal(b.Versions[len(b.Versions)-1])
	if string(ja) != string(jb) {
		t.Error("identical seeds must produce identical histories")
	}
}

func TestNetLegIntToConsentPositive(t *testing.T) {
	h := GenerateHistory(DefaultHistoryConfig())
	if net := h.NetLegIntToConsent(); net <= 0 {
		t.Errorf("net LI→consent = %d, want positive (Figure 8's headline)", net)
	}
}

func TestLegalBasisFlows(t *testing.T) {
	h := GenerateHistory(DefaultHistoryConfig())
	flows := h.LegalBasisFlows()
	if len(flows) < 20 {
		t.Fatalf("want a monthly series spanning ≈26 months, got %d", len(flows))
	}
	for i := 1; i < len(flows); i++ {
		if !flows[i].Month.After(flows[i-1].Month) {
			t.Fatal("months must increase")
		}
	}
	// Totals across months must equal the full diff counts.
	all := h.DiffAll()
	var fromFlows, fromDiff int
	for _, f := range flows {
		for k := 0; k < len(f.Counts); k++ {
			fromFlows += f.Counts[k]
		}
	}
	fromDiff = len(all)
	if fromFlows != fromDiff {
		t.Errorf("flow total %d != diff total %d", fromFlows, fromDiff)
	}
	// Change activity peaks around GDPR: May/June 2018 must exceed a
	// quiet month like March 2019.
	act := func(y int, m time.Month) int {
		for _, f := range flows {
			if f.Month.Year() == y && f.Month.Month() == m {
				total := 0
				for k := StartConsent; k <= LegIntToConsent; k++ {
					total += f.Count(k)
				}
				return total
			}
		}
		return -1
	}
	if act(2018, time.June) <= act(2019, time.March) {
		t.Errorf("GDPR-period activity (%d) should exceed quiet 2019 (%d)",
			act(2018, time.June), act(2019, time.March))
	}
}

// TestDiffInverse: diffing a list against itself yields no changes.
func TestDiffInverse(t *testing.T) {
	h := GenerateHistory(HistoryConfig{Seed: 2, Versions: 5, InitialVendors: 30, PeakVendors: 60})
	f := func(i uint8) bool {
		l := &h.Versions[int(i)%len(h.Versions)]
		return len(Diff(l, l)) == 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 10}); err != nil {
		t.Error(err)
	}
}
