package gvl

import (
	"encoding/json"
	"fmt"
	"sort"
	"time"

	"repro/internal/tcf"
)

// GVL v2: the vendor-list format of TCF v2, which the ecosystem
// migrated to at the very end of the paper's observation window. The
// v2 schema is richer than v1: ten purposes, special purposes that
// never require consent, special features requiring explicit opt-in,
// and per-vendor "flexible purposes" that may run under either legal
// basis depending on publisher restrictions.

// VendorV2 is one advertiser on a v2 Global Vendor List.
type VendorV2 struct {
	ID        int    `json:"id"`
	Name      string `json:"name"`
	PolicyURL string `json:"policyUrl"`
	// Purposes are consent-based purposes (1–10).
	Purposes []int `json:"purposes"`
	// LegIntPurposes are legitimate-interest purposes.
	LegIntPurposes []int `json:"legIntPurposes"`
	// FlexiblePurposes may use either legal basis, switchable by
	// publisher restriction.
	FlexiblePurposes []int `json:"flexiblePurposes"`
	// SpecialPurposes (security, delivery) need no consent and cannot
	// be objected to.
	SpecialPurposes []int `json:"specialPurposes"`
	Features        []int `json:"features"`
	// SpecialFeatures require explicit opt-in (precise geolocation,
	// device scanning).
	SpecialFeatures []int `json:"specialFeatures"`
}

// ListV2 is one published v2 vendor list.
type ListV2 struct {
	GVLSpecificationVersion int        `json:"gvlSpecificationVersion"`
	VendorListVersion       int        `json:"vendorListVersion"`
	TCFPolicyVersion        int        `json:"tcfPolicyVersion"`
	LastUpdated             time.Time  `json:"lastUpdated"`
	Vendors                 []VendorV2 `json:"-"`
}

// listV2JSON is the wire schema: vendors keyed by ID string, as the
// real v2 vendor-list.json is.
type listV2JSON struct {
	GVLSpecificationVersion int                    `json:"gvlSpecificationVersion"`
	VendorListVersion       int                    `json:"vendorListVersion"`
	TCFPolicyVersion        int                    `json:"tcfPolicyVersion"`
	LastUpdated             string                 `json:"lastUpdated"`
	Purposes                map[string]purposeJSON `json:"purposes"`
	SpecialFeatures         map[string]purposeJSON `json:"specialFeatures"`
	Vendors                 map[string]VendorV2    `json:"vendors"`
}

// MarshalJSON emits the v2 wire format.
func (l *ListV2) MarshalJSON() ([]byte, error) {
	out := listV2JSON{
		GVLSpecificationVersion: l.GVLSpecificationVersion,
		VendorListVersion:       l.VendorListVersion,
		TCFPolicyVersion:        l.TCFPolicyVersion,
		LastUpdated:             l.LastUpdated.UTC().Format(time.RFC3339),
		Purposes:                map[string]purposeJSON{},
		SpecialFeatures:         map[string]purposeJSON{},
		Vendors:                 map[string]VendorV2{},
	}
	for _, p := range tcf.PurposesV2() {
		out.Purposes[fmt.Sprint(p.ID)] = purposeJSON{p.ID, p.Name, p.Definition}
	}
	for _, f := range tcf.SpecialFeaturesV2() {
		out.SpecialFeatures[fmt.Sprint(f.ID)] = purposeJSON{f.ID, f.Name, f.Definition}
	}
	for _, v := range l.Vendors {
		out.Vendors[fmt.Sprint(v.ID)] = v
	}
	return json.Marshal(out)
}

// UnmarshalJSON parses the v2 wire format.
func (l *ListV2) UnmarshalJSON(data []byte) error {
	var in listV2JSON
	if err := json.Unmarshal(data, &in); err != nil {
		return err
	}
	t, err := time.Parse(time.RFC3339, in.LastUpdated)
	if err != nil {
		return fmt.Errorf("gvl: v2 lastUpdated: %w", err)
	}
	l.GVLSpecificationVersion = in.GVLSpecificationVersion
	l.VendorListVersion = in.VendorListVersion
	l.TCFPolicyVersion = in.TCFPolicyVersion
	l.LastUpdated = t
	l.Vendors = l.Vendors[:0]
	for _, v := range in.Vendors {
		l.Vendors = append(l.Vendors, v)
	}
	sort.Slice(l.Vendors, func(i, j int) bool { return l.Vendors[i].ID < l.Vendors[j].ID })
	return nil
}

// v1→v2 purpose mapping (the IAB's published migration guidance):
// storage/access → 1; personalisation → profiles (3, 5);
// ad selection → basic + personalised ads (2, 4); content selection →
// 6; measurement → 7, 8.
var purposeV1toV2 = map[int][]int{
	1: {1}, 2: {3, 5}, 3: {2, 4}, 4: {6}, 5: {7, 8},
}

// featureV1toSpecialFeatureV2 maps v1 features to v2 special features:
// precise geolocation (v1 feature 3 → v2 special feature 1); device
// linking becomes v2 purpose-adjacent device scanning only when
// declared alongside fingerprinting, which v1 cannot express — so only
// geolocation maps.
var featureV1toSpecialFeatureV2 = map[int]int{3: 1}

// UpgradeList converts a v1 list to its v2 equivalent, as the IAB did
// when seeding the v2 GVL from v1 registrations.
func UpgradeList(v1 *List) *ListV2 {
	out := &ListV2{
		GVLSpecificationVersion: 2,
		VendorListVersion:       v1.VendorListVersion,
		TCFPolicyVersion:        2,
		LastUpdated:             v1.LastUpdated,
	}
	for i := range v1.Vendors {
		ov := &v1.Vendors[i]
		nv := VendorV2{ID: ov.ID, Name: ov.Name, PolicyURL: ov.PolicyURL}
		seenC := map[int]bool{}
		for _, p1 := range ov.PurposeIDs {
			for _, p2 := range purposeV1toV2[p1] {
				if !seenC[p2] {
					seenC[p2] = true
					nv.Purposes = append(nv.Purposes, p2)
				}
			}
		}
		seenLI := map[int]bool{}
		for _, p1 := range ov.LegIntPurposeIDs {
			for _, p2 := range purposeV1toV2[p1] {
				// Purpose 1 cannot run under legitimate interest in
				// TCF v2; such declarations migrate to consent.
				if p2 == 1 {
					if !seenC[1] {
						seenC[1] = true
						nv.Purposes = append(nv.Purposes, 1)
					}
					continue
				}
				if !seenLI[p2] && !seenC[p2] {
					seenLI[p2] = true
					nv.LegIntPurposes = append(nv.LegIntPurposes, p2)
				}
			}
		}
		for _, f := range ov.FeatureIDs {
			if sf, ok := featureV1toSpecialFeatureV2[f]; ok {
				nv.SpecialFeatures = append(nv.SpecialFeatures, sf)
			} else {
				nv.Features = append(nv.Features, f)
			}
		}
		sort.Ints(nv.Purposes)
		sort.Ints(nv.LegIntPurposes)
		out.Vendors = append(out.Vendors, nv)
	}
	return out
}

// PurposeCountsV2 tallies per-purpose consent and LI declarations.
func (l *ListV2) PurposeCountsV2() (consent, legInt map[int]int) {
	consent = make(map[int]int, tcf.NumPurposesV2)
	legInt = make(map[int]int, tcf.NumPurposesV2)
	for i := range l.Vendors {
		for _, p := range l.Vendors[i].Purposes {
			consent[p]++
		}
		for _, p := range l.Vendors[i].LegIntPurposes {
			legInt[p]++
		}
	}
	return consent, legInt
}
