package gvl

import (
	"fmt"
	"math"
	"time"

	"repro/internal/rng"
	"repro/internal/simtime"
)

// The paper systematically downloaded all 215 previously published
// versions of the GVL (Section 3.4). This file generates a synthetic
// 215-version history with the dynamics the paper reports:
//
//   - vendor count grows over time with a sharp spike as GDPR came into
//     effect (Figure 7);
//   - purpose 1 ("Information storage and access") is always the most
//     declared purpose;
//   - at least a fifth of vendors claim legitimate interest for every
//     purpose (Section 5.2);
//   - on net, more vendors switch from legitimate interest to consent
//     than the other way round (Figure 8), with change activity peaking
//     around GDPR and again in March–April 2020.

// HistoryConfig parameterizes the generator.
type HistoryConfig struct {
	// Seed roots all randomness; identical seeds give identical
	// histories.
	Seed uint64
	// Versions is the number of list versions to publish. The paper
	// observed 215.
	Versions int
	// InitialVendors is the list size at the first version.
	InitialVendors int
	// PeakVendors caps the long-run vendor count.
	PeakVendors int
}

// DefaultHistoryConfig mirrors the observed GVL at the paper's scale.
func DefaultHistoryConfig() HistoryConfig {
	return HistoryConfig{
		Seed:           1,
		Versions:       215,
		InitialVendors: 150,
		PeakVendors:    650,
	}
}

// History is an ordered sequence of published GVL versions.
type History struct {
	Versions []List
}

// consentProb is the probability a new vendor requests consent for a
// purpose; legIntGivenNoConsent is the probability a vendor claims the
// purpose under legitimate interest instead, given it does not request
// consent. Purpose 1 is the most requested; every purpose ends with a
// ≥20% legitimate-interest share (Section 5.2).
var (
	consentProb          = map[int]float64{1: 0.78, 2: 0.62, 3: 0.66, 4: 0.50, 5: 0.58}
	legIntGivenNoConsent = map[int]float64{1: 0.95, 2: 0.70, 3: 0.88, 4: 0.55, 5: 0.80}
	featureProb          = map[int]float64{1: 0.35, 2: 0.45, 3: 0.25}
)

// targetVendorCount is the calibrated vendor-count curve: rapid growth
// into GDPR, a post-GDPR plateau, then slow growth (Figure 7's shape).
func targetVendorCount(cfg HistoryConfig, day simtime.Day) int {
	gdpr := float64(simtime.GDPREffective)
	d := float64(day)
	span := float64(cfg.PeakVendors - cfg.InitialVendors)
	// Logistic ramp centred shortly before GDPR plus a slow linear tail.
	ramp := 1 / (1 + math.Exp(-(d-(gdpr-10))/12))
	tail := math.Max(0, d-gdpr) * 0.09
	n := float64(cfg.InitialVendors) + span*0.85*ramp + tail
	if n > float64(cfg.PeakVendors) {
		n = float64(cfg.PeakVendors)
	}
	return int(n)
}

// changeActivity scales the per-version probability that an existing
// vendor alters its declarations. Peaks around GDPR and March–April
// 2020 ("possibly as vendors saw how GDPR was being enforced").
func changeActivity(day simtime.Day) float64 {
	base := 0.004
	base += bump(float64(day), float64(simtime.GDPREffective), 25, 0.045)
	base += bump(float64(day), float64(simtime.Date(2020, time.March, 20)), 30, 0.030)
	return base
}

// bump is a Gaussian activity bump of the given width and height.
func bump(x, center, width, height float64) float64 {
	d := (x - center) / width
	return height * math.Exp(-d*d/2)
}

// GenerateHistory produces the full version history.
func GenerateHistory(cfg HistoryConfig) *History {
	if cfg.Versions <= 0 {
		cfg.Versions = DefaultHistoryConfig().Versions
	}
	if cfg.InitialVendors <= 0 {
		cfg.InitialVendors = DefaultHistoryConfig().InitialVendors
	}
	if cfg.PeakVendors < cfg.InitialVendors {
		cfg.PeakVendors = cfg.InitialVendors
	}
	src := rng.New(cfg.Seed).Derive("gvl")

	h := &History{}
	nextID := 1
	var vendors []Vendor

	newVendor := func(version int) Vendor {
		id := nextID
		nextID++
		r := src.Stream("vendor", rng.Key(id))
		v := Vendor{
			ID:        id,
			Name:      fmt.Sprintf("AdVendor %d Ltd", id),
			PolicyURL: fmt.Sprintf("https://vendor%d.example/privacy", id),
		}
		for p := 1; p <= 5; p++ {
			if r.Float64() < consentProb[p] {
				v.PurposeIDs = append(v.PurposeIDs, p)
			} else if r.Float64() < legIntGivenNoConsent[p] {
				// Vendors that do not request consent for a purpose
				// often claim it under legitimate interest instead,
				// allowing processing without user consent.
				v.LegIntPurposeIDs = append(v.LegIntPurposeIDs, p)
			}
		}
		for f := 1; f <= 3; f++ {
			if r.Float64() < featureProb[f] {
				v.FeatureIDs = append(v.FeatureIDs, f)
			}
		}
		_ = version
		return v
	}

	// Seed the initial list.
	for len(vendors) < cfg.InitialVendors {
		vendors = append(vendors, newVendor(1))
	}

	// Publication cadence: the GVL moved to weekly updates; we publish
	// every 3–4 days early on, weekly later, totalling cfg.Versions
	// versions spanning April 2018 to roughly May 2020.
	day := simtime.Date(2018, time.April, 5)
	for version := 1; version <= cfg.Versions; version++ {
		// Vendor joins/leaves to track the target curve, plus churn.
		target := targetVendorCount(cfg, day)
		vr := src.Stream("version", rng.Key(version))

		// Churn: a small number of vendors leave each version.
		leaves := 0
		if len(vendors) > 20 {
			leaves = poissonish(vr.Float64(), 0.4)
		}
		for i := 0; i < leaves && len(vendors) > 1; i++ {
			idx := vr.Intn(len(vendors))
			vendors = append(vendors[:idx], vendors[idx+1:]...)
		}
		for len(vendors) < target {
			vendors = append(vendors, newVendor(version))
		}

		// Existing-member changes (Figure 8 flows).
		act := changeActivity(day)
		for i := range vendors {
			r := vr
			if r.Float64() >= act {
				continue
			}
			mutateVendor(&vendors[i], r.Float64(), r.Intn(5)+1)
		}

		list := List{
			VendorListVersion: version,
			LastUpdated:       day.Time(),
			Vendors:           append([]Vendor(nil), vendors...),
		}
		// Deep-copy purpose slices so later mutations don't alias.
		for i := range list.Vendors {
			list.Vendors[i].PurposeIDs = append([]int(nil), list.Vendors[i].PurposeIDs...)
			list.Vendors[i].LegIntPurposeIDs = append([]int(nil), list.Vendors[i].LegIntPurposeIDs...)
			list.Vendors[i].FeatureIDs = append([]int(nil), list.Vendors[i].FeatureIDs...)
		}
		sortVendors(list.Vendors)
		h.Versions = append(h.Versions, list)

		// Advance the publication date: a 3–4 day cadence places 215
		// versions between April 2018 and spring 2020, matching the
		// history the paper downloaded ("the organization managing the
		// GVL switched to weekly updates" only late in the window).
		day += simtime.Day(3 + version%2)
	}
	return h
}

// mutateVendor applies one declaration change. Each change kind picks
// its purpose among the eligible ones, so the mutation mix directly
// controls the flow rates; the mix is calibrated so LI→consent
// outnumbers consent→LI (Figure 8's headline result).
func mutateVendor(v *Vendor, u float64, purposeSeed int) {
	// pick selects a purpose from the eligible set, seeded by
	// purposeSeed for determinism.
	pick := func(eligible func(int) bool) (int, bool) {
		for off := 0; off < 5; off++ {
			p := (purposeSeed+off)%5 + 1
			if eligible(p) {
				return p, true
			}
		}
		return 0, false
	}
	switch {
	case u < 0.34: // switch legitimate interest -> consent
		if p, ok := pick(func(p int) bool { return v.ClaimsLegitimateInterest(p) && !v.RequestsConsent(p) }); ok {
			v.LegIntPurposeIDs = removeInt(v.LegIntPurposeIDs, p)
			v.PurposeIDs = append(v.PurposeIDs, p)
		}
	case u < 0.52: // switch consent -> legitimate interest
		if p, ok := pick(func(p int) bool { return v.RequestsConsent(p) && !v.ClaimsLegitimateInterest(p) }); ok {
			v.PurposeIDs = removeInt(v.PurposeIDs, p)
			v.LegIntPurposeIDs = append(v.LegIntPurposeIDs, p)
		}
	case u < 0.74: // begin requesting consent for a new purpose
		if p, ok := pick(func(p int) bool { return !v.RequestsConsent(p) }); ok {
			v.PurposeIDs = append(v.PurposeIDs, p)
		}
	case u < 0.86: // claim a new purpose under legitimate interest
		if p, ok := pick(func(p int) bool { return !v.ClaimsLegitimateInterest(p) && !v.RequestsConsent(p) }); ok {
			v.LegIntPurposeIDs = append(v.LegIntPurposeIDs, p)
		}
	case u < 0.93: // stop requesting consent
		if p, ok := pick(v.RequestsConsent); ok {
			v.PurposeIDs = removeInt(v.PurposeIDs, p)
		}
	default: // stop claiming legitimate interest
		if p, ok := pick(v.ClaimsLegitimateInterest); ok {
			v.LegIntPurposeIDs = removeInt(v.LegIntPurposeIDs, p)
		}
	}
}

func removeInt(xs []int, x int) []int {
	out := xs[:0]
	for _, v := range xs {
		if v != x {
			out = append(out, v)
		}
	}
	return out
}

// poissonish maps a uniform draw to a small non-negative count with the
// given mean; adequate for churn event counts.
func poissonish(u, mean float64) int {
	switch {
	case u < math.Exp(-mean):
		return 0
	case u < math.Exp(-mean)*(1+mean):
		return 1
	case u < 0.97:
		return 2
	default:
		return 3
	}
}
