package gvl

import (
	"time"

	"repro/internal/tcf"
)

// The paper measures "every instance when an Ad-tech vendor joins or
// leaves the GVL, claims a new purpose falls under legitimate interest,
// begins requesting consent for a new purpose, stops claiming either,
// or changes from collecting consent to claiming legitimate interest or
// the other way round" (Section 3.2). Diff implements exactly that
// taxonomy between two consecutive list versions.

// ChangeKind classifies one vendor-level change between versions.
type ChangeKind int

const (
	VendorJoined ChangeKind = iota
	VendorLeft
	StartConsent        // begins requesting consent for a new purpose
	StopConsent         // stops requesting consent for a purpose
	StartLegInt         // claims a new purpose under legitimate interest
	StopLegInt          // stops claiming legitimate interest
	ConsentToLegInt     // switches from collecting consent to claiming LI
	LegIntToConsent     // switches from claiming LI to collecting consent
	numChangeKinds  int = iota
)

var changeKindNames = [...]string{
	"vendor-joined", "vendor-left", "start-consent", "stop-consent",
	"start-legint", "stop-legint", "consent-to-legint", "legint-to-consent",
}

func (k ChangeKind) String() string {
	if int(k) < len(changeKindNames) {
		return changeKindNames[k]
	}
	return "unknown"
}

// Change is one observed change, attributed to the version (and its
// publication date) in which it first appears.
type Change struct {
	Kind     ChangeKind
	VendorID int
	Purpose  int // 0 for join/leave
	Version  int
	Date     time.Time
}

// Diff computes the change set from an older to a newer list version.
func Diff(old, new *List) []Change {
	var changes []Change
	add := func(kind ChangeKind, vendor, purpose int) {
		changes = append(changes, Change{
			Kind: kind, VendorID: vendor, Purpose: purpose,
			Version: new.VendorListVersion, Date: new.LastUpdated,
		})
	}

	oldByID := make(map[int]*Vendor, len(old.Vendors))
	for i := range old.Vendors {
		oldByID[old.Vendors[i].ID] = &old.Vendors[i]
	}
	newByID := make(map[int]*Vendor, len(new.Vendors))
	for i := range new.Vendors {
		newByID[new.Vendors[i].ID] = &new.Vendors[i]
	}

	for i := range new.Vendors {
		nv := &new.Vendors[i]
		ov, ok := oldByID[nv.ID]
		if !ok {
			add(VendorJoined, nv.ID, 0)
			continue
		}
		for p := 1; p <= tcf.NumPurposes; p++ {
			oc, ol := ov.RequestsConsent(p), ov.ClaimsLegitimateInterest(p)
			nc, nl := nv.RequestsConsent(p), nv.ClaimsLegitimateInterest(p)
			switch {
			case oc && !nc && !ol && nl:
				add(ConsentToLegInt, nv.ID, p)
			case !oc && nc && ol && !nl:
				add(LegIntToConsent, nv.ID, p)
			default:
				if !oc && nc {
					add(StartConsent, nv.ID, p)
				}
				if oc && !nc {
					add(StopConsent, nv.ID, p)
				}
				if !ol && nl {
					add(StartLegInt, nv.ID, p)
				}
				if ol && !nl {
					add(StopLegInt, nv.ID, p)
				}
			}
		}
	}
	for i := range old.Vendors {
		if _, ok := newByID[old.Vendors[i].ID]; !ok {
			add(VendorLeft, old.Vendors[i].ID, 0)
		}
	}
	return changes
}

// DiffAll computes the change sets across the full history.
func (h *History) DiffAll() []Change {
	var all []Change
	for i := 1; i < len(h.Versions); i++ {
		all = append(all, Diff(&h.Versions[i-1], &h.Versions[i])...)
	}
	return all
}

// PurposePoint is one Figure 7 datum: a version's vendor count and
// per-purpose declaration counts.
type PurposePoint struct {
	Version     int
	Date        time.Time
	VendorCount int
	// Consent[p] is the number of vendors requesting consent for
	// purpose p; LegInt[p] the number claiming legitimate interest.
	Consent map[int]int
	LegInt  map[int]int
}

// PurposeSeries computes the Figure 7 time series over the history.
func (h *History) PurposeSeries() []PurposePoint {
	points := make([]PurposePoint, 0, len(h.Versions))
	for i := range h.Versions {
		l := &h.Versions[i]
		c, li := l.PurposeCounts()
		points = append(points, PurposePoint{
			Version:     l.VendorListVersion,
			Date:        l.LastUpdated,
			VendorCount: len(l.Vendors),
			Consent:     c,
			LegInt:      li,
		})
	}
	return points
}

// FlowPoint is one Figure 8 datum: counts of each change kind in a
// calendar month.
type FlowPoint struct {
	Month  time.Time // first day of the month
	Counts [numChangeKinds]int
}

// Count returns the tally for one change kind.
func (p *FlowPoint) Count(k ChangeKind) int { return p.Counts[k] }

// LegalBasisFlows aggregates the history's changes into monthly flow
// counts (Figure 8). Months with no changes are included as zero points
// so the series has no gaps.
func (h *History) LegalBasisFlows() []FlowPoint {
	if len(h.Versions) == 0 {
		return nil
	}
	changes := h.DiffAll()
	first := monthOf(h.Versions[0].LastUpdated)
	last := monthOf(h.Versions[len(h.Versions)-1].LastUpdated)
	var months []time.Time
	for m := first; !m.After(last); m = m.AddDate(0, 1, 0) {
		months = append(months, m)
	}
	idx := make(map[time.Time]int, len(months))
	points := make([]FlowPoint, len(months))
	for i, m := range months {
		points[i].Month = m
		idx[m] = i
	}
	for _, c := range changes {
		if i, ok := idx[monthOf(c.Date)]; ok {
			points[i].Counts[c.Kind]++
		}
	}
	return points
}

// NetLegIntToConsent returns the net number of LI→consent switches over
// the whole history (positive means the paper's "surprising result"
// holds: vendors moved toward obtaining consent).
func (h *History) NetLegIntToConsent() int {
	net := 0
	for _, c := range h.DiffAll() {
		switch c.Kind {
		case LegIntToConsent:
			net++
		case ConsentToLegInt:
			net--
		}
	}
	return net
}

func monthOf(t time.Time) time.Time {
	return time.Date(t.Year(), t.Month(), 1, 0, 0, 0, 0, time.UTC)
}
