package psl

// snapshot is an embedded excerpt of the Public Suffix List sufficient
// for the reproduction: generic TLDs, the country-code TLDs used by the
// synthetic web (including multi-label registries like co.uk), the
// canonical wildcard/exception examples from the PSL spec, and the
// private-section entries the paper's example relies on (github.io).
//
// The full PSL is ~15k rules; the algorithm is rule-count agnostic, so
// an excerpt preserves behaviour for every domain the simulation emits.
const snapshot = `
// ===BEGIN ICANN DOMAINS===
com
org
net
edu
gov
int
mil
info
biz
io
co
me
tv
xyz
app
dev
online
site
news
blog
shop

// Country-code TLDs (simple)
at
be
bg
ca
ch
cn
cy
cz
de
dk
ee
es
eu
fi
fr
gr
hr
hu
ie
in
it
lt
lu
lv
mt
nl
no
pl
pt
ro
ru
se
si
sk
us

// Multi-label registries
uk
co.uk
org.uk
ac.uk
gov.uk
net.uk
jp
co.jp
ne.jp
or.jp
ac.jp
au
com.au
net.au
org.au
edu.au
br
com.br
net.br
org.br
nz
co.nz
org.nz
net.nz

// Wildcard and exception rules (canonical spec examples)
ck
*.ck
!www.ck
bd
*.bd
kawasaki.jp
*.kawasaki.jp
!city.kawasaki.jp

// ===END ICANN DOMAINS===
// ===BEGIN PRIVATE DOMAINS===
github.io
githubusercontent.com
blogspot.com
cloudfront.net
herokuapp.com
netlify.app
web.app
firebaseapp.com
azurewebsites.net
s3.amazonaws.com
// ===END PRIVATE DOMAINS===
`
