package psl

import (
	"errors"
	"strings"
	"testing"
	"testing/quick"
)

func TestPublicSuffix(t *testing.T) {
	tests := []struct {
		domain, want string
	}{
		{"example.com", "com"},
		{"www.example.com", "com"},
		{"example.co.uk", "co.uk"},
		{"a.b.example.co.uk", "co.uk"},
		{"example.github.io", "github.io"},
		{"foo.example.github.io", "github.io"},
		{"EXAMPLE.COM", "com"},
		{"example.com.", "com"},
		// Wildcard rule *.ck: every label under ck is a suffix.
		{"foo.ck", "foo.ck"},
		{"www.foo.ck", "foo.ck"},
		// Exception rule !www.ck.
		{"www.ck", "ck"},
		{"sub.www.ck", "ck"},
		// Unknown TLD falls back to the implicit * rule.
		{"example.zz", "zz"},
		{"a.b.example.zz", "zz"},
		// Multi-label Japanese registry with wildcard + exception.
		{"foo.kawasaki.jp", "foo.kawasaki.jp"},
		{"city.kawasaki.jp", "kawasaki.jp"},
	}
	for _, tt := range tests {
		if got := PublicSuffix(tt.domain); got != tt.want {
			t.Errorf("PublicSuffix(%q) = %q, want %q", tt.domain, got, tt.want)
		}
	}
}

func TestEffectiveTLDPlusOne(t *testing.T) {
	tests := []struct {
		domain, want string
	}{
		{"example.com", "example.com"},
		{"www.example.com", "example.com"},
		{"a.b.c.example.co.uk", "example.co.uk"},
		{"foo.example.github.io", "example.github.io"},
		{"WWW.Example.COM.", "example.com"},
		{"www.foo.ck", "www.foo.ck"},
		{"city.kawasaki.jp", "city.kawasaki.jp"},
	}
	for _, tt := range tests {
		got, err := EffectiveTLDPlusOne(tt.domain)
		if err != nil {
			t.Errorf("EffectiveTLDPlusOne(%q): %v", tt.domain, err)
			continue
		}
		if got != tt.want {
			t.Errorf("EffectiveTLDPlusOne(%q) = %q, want %q", tt.domain, got, tt.want)
		}
	}
}

func TestEffectiveTLDPlusOneErrors(t *testing.T) {
	for _, domain := range []string{"", "com", "co.uk", "github.io", ".", "..", ".com", "a..b.com"} {
		if _, err := EffectiveTLDPlusOne(domain); !errors.Is(err, ErrNotDomain) {
			t.Errorf("EffectiveTLDPlusOne(%q): want ErrNotDomain, got %v", domain, err)
		}
	}
}

func TestParseErrors(t *testing.T) {
	for _, text := range []string{".bad", "bad.", "!"} {
		if _, err := Parse(text); err == nil {
			t.Errorf("Parse(%q): want error", text)
		}
	}
}

func TestParseSections(t *testing.T) {
	l, err := Parse(`
// comment
com
// ===BEGIN PRIVATE DOMAINS===
example.com
// ===END PRIVATE DOMAINS===
`)
	if err != nil {
		t.Fatal(err)
	}
	if got := l.PublicSuffix("foo.example.com"); got != "example.com" {
		t.Errorf("private rule not applied: got %q", got)
	}
}

func TestIsEUUK(t *testing.T) {
	tests := []struct {
		domain string
		want   bool
	}{
		{"example.co.uk", true},
		{"example.de", true},
		{"example.eu", true},
		{"example.fr", true},
		{"example.com", false},
		{"example.ch", false}, // Switzerland is not EU/UK
		{"example.jp", false},
	}
	for _, tt := range tests {
		if got := IsEUUK(tt.domain); got != tt.want {
			t.Errorf("IsEUUK(%q) = %v, want %v", tt.domain, got, tt.want)
		}
	}
}

// TestETLDPlusOneIdempotent checks the property that normalization is
// idempotent: the eTLD+1 of an eTLD+1 is itself.
func TestETLDPlusOneIdempotent(t *testing.T) {
	labels := []string{"a", "bb", "news", "shop", "x1"}
	suffixes := []string{"com", "co.uk", "github.io", "de", "zz"}
	f := func(li, si uint, depth uint) bool {
		domain := labels[li%uint(len(labels))]
		for d := uint(0); d < depth%3; d++ {
			domain = labels[(li+d)%uint(len(labels))] + "." + domain
		}
		domain += "." + suffixes[si%uint(len(suffixes))]
		first, err := EffectiveTLDPlusOne(domain)
		if err != nil {
			return false
		}
		second, err := EffectiveTLDPlusOne(first)
		return err == nil && first == second && strings.HasSuffix(domain, first)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
