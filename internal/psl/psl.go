// Package psl implements the Public Suffix List algorithm
// (https://publicsuffix.org/list/) used by the paper to normalize a
// capture's final website address to its effective second-level domain:
// "We normalize this domain to the effective second-level domain using
// the Public Suffix List, which contains all suffixes under which
// internet users can directly register names."
//
// The package ships an embedded snapshot (see data.go) covering the
// ICANN section rules and the private-section entries relevant to the
// reproduction (e.g. github.io, so that foo.example.github.io normalizes
// to example.github.io exactly as in the paper's example). Custom lists
// can be parsed with Parse for tests and tooling.
package psl

import (
	"errors"
	"fmt"
	"strings"
	"sync"
)

// Rule is a single public-suffix rule. Labels are stored in reverse
// order (TLD first) for trie-free suffix matching.
type rule struct {
	labels    []string // reversed: ["uk","co"] for "co.uk"
	exception bool     // rule began with '!'
	private   bool     // rule came from the private section
}

// List is a parsed public suffix list.
type List struct {
	// rules indexed by their first (rightmost) label for fast lookup.
	rules map[string][]rule
}

// Parse reads rules in the canonical PSL text format: one rule per
// line, '//' comments, blank lines ignored, '*' wildcards and '!'
// exceptions supported. Section markers ("===BEGIN PRIVATE DOMAINS===")
// toggle the private flag.
func Parse(text string) (*List, error) {
	l := &List{rules: make(map[string][]rule)}
	private := false
	for ln, line := range strings.Split(text, "\n") {
		line = strings.TrimSpace(line)
		if line == "" {
			continue
		}
		if strings.HasPrefix(line, "//") {
			if strings.Contains(line, "BEGIN PRIVATE DOMAINS") {
				private = true
			}
			if strings.Contains(line, "END PRIVATE DOMAINS") {
				private = false
			}
			continue
		}
		// Rules are terminated by whitespace per the spec.
		if i := strings.IndexAny(line, " \t"); i >= 0 {
			line = line[:i]
		}
		r := rule{private: private}
		if strings.HasPrefix(line, "!") {
			r.exception = true
			line = line[1:]
		}
		if line == "" || strings.HasPrefix(line, ".") || strings.HasSuffix(line, ".") {
			return nil, fmt.Errorf("psl: malformed rule on line %d", ln+1)
		}
		labels := strings.Split(strings.ToLower(line), ".")
		for i, j := 0, len(labels)-1; i < j; i, j = i+1, j-1 {
			labels[i], labels[j] = labels[j], labels[i]
		}
		r.labels = labels
		key := labels[0]
		l.rules[key] = append(l.rules[key], r)
	}
	return l, nil
}

var (
	defaultOnce sync.Once
	defaultList *List
)

// Default returns the embedded snapshot list. Parsing happens once.
func Default() *List {
	defaultOnce.Do(func() {
		l, err := Parse(snapshot)
		if err != nil {
			panic("psl: embedded snapshot invalid: " + err.Error())
		}
		defaultList = l
	})
	return defaultList
}

// ErrNotDomain is returned for inputs that cannot carry a registrable
// domain (empty, single label equal to a public suffix, IPs are not
// handled specially and simply fail the suffix rules).
var ErrNotDomain = errors.New("psl: no registrable domain")

// match reports how many labels of the reversed domain labels a rule
// matches, or -1 if it does not match.
func (r rule) match(rev []string) int {
	if len(r.labels) > len(rev) {
		return -1
	}
	for i, l := range r.labels {
		if l != "*" && l != rev[i] {
			return -1
		}
	}
	return len(r.labels)
}

// PublicSuffix returns the public suffix of domain according to the
// list, using the canonical algorithm: the prevailing rule is the
// matching exception rule if any, else the matching rule with the most
// labels, else the implicit "*" rule.
func (l *List) PublicSuffix(domain string) string {
	domain = canonical(domain)
	if domain == "" {
		return ""
	}
	labels := strings.Split(domain, ".")
	rev := make([]string, len(labels))
	for i, lab := range labels {
		rev[len(labels)-1-i] = lab
	}
	best := 1 // implicit "*" rule: the TLD itself
	var bestException bool
	for _, r := range l.rules[rev[0]] {
		n := r.match(rev)
		if n < 0 {
			continue
		}
		if r.exception {
			// Exception rule prevails; its public suffix is the rule
			// minus its leftmost label.
			best = n - 1
			bestException = true
			break
		}
		if !bestException && n > best {
			best = n
		}
	}
	if best <= 0 {
		best = 1
	}
	if best > len(labels) {
		best = len(labels)
	}
	return strings.Join(labels[len(labels)-best:], ".")
}

// EffectiveTLDPlusOne returns the registrable domain: the public suffix
// plus one label. This is the unit by which the paper counts websites.
func (l *List) EffectiveTLDPlusOne(domain string) (string, error) {
	domain = canonical(domain)
	if domain == "" {
		return "", ErrNotDomain
	}
	suffix := l.PublicSuffix(domain)
	if len(suffix) == len(domain) {
		return "", fmt.Errorf("%w: %q is a public suffix", ErrNotDomain, domain)
	}
	if !strings.HasSuffix(domain, "."+suffix) {
		return "", fmt.Errorf("%w: suffix mismatch for %q", ErrNotDomain, domain)
	}
	rest := domain[:len(domain)-len(suffix)-1]
	if i := strings.LastIndexByte(rest, '.'); i >= 0 {
		rest = rest[i+1:]
	}
	if rest == "" {
		return "", fmt.Errorf("%w: %q", ErrNotDomain, domain)
	}
	return rest + "." + suffix, nil
}

// EffectiveTLDPlusOne applies the embedded default list.
func EffectiveTLDPlusOne(domain string) (string, error) {
	return Default().EffectiveTLDPlusOne(domain)
}

// PublicSuffix applies the embedded default list.
func PublicSuffix(domain string) string {
	return Default().PublicSuffix(domain)
}

// canonical lowercases and strips a single trailing dot.
func canonical(domain string) string {
	domain = strings.ToLower(strings.TrimSpace(domain))
	domain = strings.TrimSuffix(domain, ".")
	if domain == "" || strings.HasPrefix(domain, ".") || strings.Contains(domain, "..") {
		return ""
	}
	return domain
}

// IsEUUK reports whether the registrable domain's suffix indicates an
// EU or UK country-code TLD. The paper uses the share of EU+UK TLDs to
// contrast Quantcast (38.3%) with OneTrust (16.3%).
func IsEUUK(domain string) bool {
	suffix := PublicSuffix(domain)
	// Compare against the final label of the suffix (e.g. "co.uk"→"uk").
	tld := suffix
	if i := strings.LastIndexByte(suffix, '.'); i >= 0 {
		tld = suffix[i+1:]
	}
	_, ok := euUKTLDs[tld]
	return ok
}

var euUKTLDs = map[string]struct{}{
	"at": {}, "be": {}, "bg": {}, "cy": {}, "cz": {}, "de": {}, "dk": {},
	"ee": {}, "es": {}, "fi": {}, "fr": {}, "gr": {}, "hr": {}, "hu": {},
	"ie": {}, "it": {}, "lt": {}, "lu": {}, "lv": {}, "mt": {}, "nl": {},
	"pl": {}, "pt": {}, "ro": {}, "se": {}, "si": {}, "sk": {}, "uk": {},
	"eu": {},
}
