// Package rng provides deterministic, splittable randomness.
//
// Every stochastic component of the simulation draws from a stream keyed
// by (seed, textual key). Keyed streams make per-entity randomness stable
// under reordering: the properties of domain "example.com" are identical
// whether it is generated first or last, crawled once or a million times.
// This is what makes the whole reproduction bit-reproducible for a given
// top-level seed.
package rng

import (
	"encoding/binary"
	"hash/fnv"
	"math"
	"math/rand"
	"strconv"
)

// Source derives deterministic sub-streams from a root seed.
type Source struct {
	seed uint64
}

// New returns a Source rooted at seed.
func New(seed uint64) *Source {
	return &Source{seed: seed}
}

// Seed returns the root seed of the source.
func (s *Source) Seed() uint64 { return s.seed }

// hash mixes the root seed with the key parts into a 64-bit state.
// FNV-1a alone has weak avalanche in the high bits for short keys, so
// the digest is finalized with a splitmix64 mix.
func (s *Source) hash(parts ...string) uint64 {
	h := fnv.New64a()
	var buf [8]byte
	binary.LittleEndian.PutUint64(buf[:], s.seed)
	h.Write(buf[:])
	for _, p := range parts {
		h.Write([]byte{0x1f}) // separator: avoids ("ab","c") == ("a","bc")
		h.Write([]byte(p))
	}
	return mix64(h.Sum64())
}

// mix64 is the splitmix64 finalizer.
func mix64(z uint64) uint64 {
	z += 0x9e3779b97f4a7c15
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// Stream returns an independent *rand.Rand for the given key parts.
// Identical (seed, parts) always yield an identical stream.
func (s *Source) Stream(parts ...string) *rand.Rand {
	return rand.New(rand.NewSource(int64(s.hash(parts...))))
}

// Derive returns a child Source whose streams are independent from the
// parent's, for handing a component its own namespace.
func (s *Source) Derive(parts ...string) *Source {
	return &Source{seed: s.hash(parts...)}
}

// Float64 returns a uniform [0,1) draw for the key, without allocating
// a full rand.Rand. Useful for one-shot per-entity decisions.
func (s *Source) Float64(parts ...string) float64 {
	// Use the upper 53 bits for a uniform float, as math/rand does.
	return float64(s.hash(parts...)>>11) / (1 << 53)
}

// Uint64 returns a uniform 64-bit draw for the key.
func (s *Source) Uint64(parts ...string) uint64 {
	return s.hash(parts...)
}

// Intn returns a uniform draw from [0,n) for the key. It panics if
// n <= 0, mirroring math/rand.
func (s *Source) Intn(n int, parts ...string) int {
	if n <= 0 {
		panic("rng: Intn with non-positive n")
	}
	return int(s.hash(parts...) % uint64(n))
}

// Bool returns true with probability p for the key.
func (s *Source) Bool(p float64, parts ...string) bool {
	return s.Float64(parts...) < p
}

// Key formats an integer for use as a key part.
func Key(i int) string { return strconv.Itoa(i) }

// LogNormal draws from a log-normal distribution with the location mu
// and scale sigma of the underlying normal. Human interaction latencies
// (dialog read/decide times) are modelled as log-normal, following the
// heavy right skew the paper reports (it uses nonparametric tests for
// exactly this reason).
func LogNormal(r *rand.Rand, mu, sigma float64) float64 {
	return math.Exp(r.NormFloat64()*sigma + mu)
}

// Zipf draws ranks in [1,n] with P(rank) proportional to rank^-s.
// Social-media URL sharing frequency is Zipf-distributed over domain
// popularity ("our URL sample skews heavily towards popular URLs").
type Zipf struct {
	n   int
	cdf []float64
}

// NewZipf precomputes the CDF for a Zipf distribution over [1,n] with
// exponent s > 0.
func NewZipf(n int, s float64) *Zipf {
	z := &Zipf{n: n, cdf: make([]float64, n)}
	sum := 0.0
	for i := 1; i <= n; i++ {
		sum += math.Pow(float64(i), -s)
		z.cdf[i-1] = sum
	}
	for i := range z.cdf {
		z.cdf[i] /= sum
	}
	return z
}

// Rank draws a rank in [1,n].
func (z *Zipf) Rank(r *rand.Rand) int {
	u := r.Float64()
	// Binary search the CDF.
	lo, hi := 0, z.n-1
	for lo < hi {
		mid := (lo + hi) / 2
		if z.cdf[mid] < u {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo + 1
}

// N returns the support size of the distribution.
func (z *Zipf) N() int { return z.n }
