package rng

import (
	"math"
	"testing"
	"testing/quick"
)

func TestDeterminism(t *testing.T) {
	a := New(42)
	b := New(42)
	if a.Float64("x") != b.Float64("x") {
		t.Error("same seed and key must give the same draw")
	}
	if a.Uint64("k1", "k2") != b.Uint64("k1", "k2") {
		t.Error("multi-part keys must be deterministic")
	}
	s1 := a.Stream("s")
	s2 := b.Stream("s")
	for i := 0; i < 10; i++ {
		if s1.Float64() != s2.Float64() {
			t.Fatal("streams with identical keys must be identical")
		}
	}
}

func TestKeySeparation(t *testing.T) {
	s := New(1)
	// ("ab","c") and ("a","bc") must not collide.
	if s.Uint64("ab", "c") == s.Uint64("a", "bc") {
		t.Error("key parts must be separated")
	}
	if s.Float64("x") == s.Float64("y") {
		t.Error("different keys should give different draws")
	}
}

func TestDeriveIndependence(t *testing.T) {
	root := New(7)
	child := root.Derive("child")
	if root.Float64("k") == child.Float64("k") {
		t.Error("derived source must have independent streams")
	}
	if child.Seed() == root.Seed() {
		t.Error("derived source must have a different seed")
	}
}

func TestFloat64Range(t *testing.T) {
	s := New(3)
	f := func(key string) bool {
		v := s.Float64(key)
		return v >= 0 && v < 1
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestIntn(t *testing.T) {
	s := New(5)
	f := func(key string, n uint8) bool {
		m := int(n%100) + 1
		v := s.Intn(m, key)
		return v >= 0 && v < m
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
	defer func() {
		if recover() == nil {
			t.Error("Intn(0) must panic")
		}
	}()
	s.Intn(0, "x")
}

func TestBool(t *testing.T) {
	s := New(9)
	hits := 0
	const n = 10_000
	for i := 0; i < n; i++ {
		if s.Bool(0.3, "b", Key(i)) {
			hits++
		}
	}
	got := float64(hits) / n
	if got < 0.27 || got > 0.33 {
		t.Errorf("Bool(0.3) frequency = %.3f, want ≈0.3", got)
	}
}

func TestLogNormalMedian(t *testing.T) {
	r := New(11).Stream("ln")
	const n = 20_000
	below := 0
	mu := math.Log(3.2)
	for i := 0; i < n; i++ {
		if LogNormal(r, mu, 0.5) < 3.2 {
			below++
		}
	}
	frac := float64(below) / n
	if frac < 0.47 || frac > 0.53 {
		t.Errorf("log-normal median fraction = %.3f, want ≈0.5", frac)
	}
}

func TestZipf(t *testing.T) {
	z := NewZipf(1000, 1.0)
	if z.N() != 1000 {
		t.Fatalf("N = %d", z.N())
	}
	r := New(13).Stream("zipf")
	counts := make([]int, 1001)
	const n = 50_000
	for i := 0; i < n; i++ {
		rank := z.Rank(r)
		if rank < 1 || rank > 1000 {
			t.Fatalf("rank %d out of range", rank)
		}
		counts[rank]++
	}
	// Rank 1 must be drawn far more often than rank 100.
	if counts[1] < 5*counts[100] {
		t.Errorf("Zipf skew too weak: rank1=%d rank100=%d", counts[1], counts[100])
	}
	// The head must not absorb everything: the tail half still occurs.
	tail := 0
	for r := 501; r <= 1000; r++ {
		tail += counts[r]
	}
	if tail == 0 {
		t.Error("tail ranks never drawn")
	}
}

func TestZipfCDFMonotone(t *testing.T) {
	z := NewZipf(100, 0.9)
	for i := 1; i < len(z.cdf); i++ {
		if z.cdf[i] < z.cdf[i-1] {
			t.Fatalf("CDF not monotone at %d", i)
		}
	}
	if math.Abs(z.cdf[len(z.cdf)-1]-1) > 1e-12 {
		t.Errorf("CDF must end at 1, got %v", z.cdf[len(z.cdf)-1])
	}
}
