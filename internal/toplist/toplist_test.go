package toplist

import (
	"fmt"
	"testing"

	"repro/internal/rng"
	"repro/internal/simtime"
)

func trueOrder(n int) []string {
	out := make([]string, n)
	for i := range out {
		out[i] = fmt.Sprintf("site%d.com", i+1)
	}
	return out
}

func TestProviderListIsPermutation(t *testing.T) {
	src := rng.New(1)
	domains := trueOrder(500)
	for _, p := range Providers() {
		ranking := ProviderList(src, p, simtime.Day(10), domains, len(domains))
		if len(ranking) != len(domains) {
			t.Fatalf("%s: len %d", p, len(ranking))
		}
		seen := make(map[string]bool, len(ranking))
		for _, d := range ranking {
			if seen[d] {
				t.Fatalf("%s: duplicate %q", p, d)
			}
			seen[d] = true
		}
	}
}

func TestProviderListTruncation(t *testing.T) {
	src := rng.New(1)
	got := ProviderList(src, Alexa, 0, trueOrder(100), 10)
	if len(got) != 10 {
		t.Fatalf("len = %d", len(got))
	}
}

func TestProviderNoiseOrdering(t *testing.T) {
	// Providers disagree in the tail but broadly preserve the head:
	// the true #1 should stay in every provider's top 20.
	src := rng.New(7)
	domains := trueOrder(1000)
	for _, p := range Providers() {
		ranking := ProviderList(src, p, simtime.Day(3), domains, 20)
		found := false
		for _, d := range ranking {
			if d == "site1.com" {
				found = true
			}
		}
		if !found {
			t.Errorf("%s: true top domain fell out of the top 20", p)
		}
	}
}

func TestBuild(t *testing.T) {
	domains := trueOrder(2000)
	cfg := Config{Seed: 1, WindowDays: 30, Size: 500, SampleDays: 10}
	l := Build(cfg, simtime.TrancoListDate, domains)
	if l.Len() != 500 {
		t.Fatalf("Len = %d", l.Len())
	}
	if l.ID == "" || len(l.ID) != 4 {
		t.Errorf("list ID = %q, want 4-char citable reference", l.ID)
	}
	if l.Created != simtime.TrancoListDate {
		t.Error("creation day not recorded")
	}
	// Rank lookups are 1-based and consistent with Domains order.
	for i, d := range l.Top(50) {
		if l.Rank(d) != i+1 {
			t.Fatalf("Rank(%q) = %d, want %d", d, l.Rank(d), i+1)
		}
	}
	if l.Rank("not-on-list.com") != 0 {
		t.Error("unknown domain must rank 0")
	}
	// Aggregation keeps the head roughly in place.
	if l.Rank("site1.com") == 0 || l.Rank("site1.com") > 10 {
		t.Errorf("true #1 ranked %d", l.Rank("site1.com"))
	}
	head := 0
	for _, d := range l.Top(100) {
		var n int
		fmt.Sscanf(d, "site%d.com", &n)
		if n <= 200 {
			head++
		}
	}
	if head < 80 {
		t.Errorf("only %d/100 of the aggregated top 100 come from the true top 200", head)
	}
}

func TestBuildDeterminism(t *testing.T) {
	domains := trueOrder(300)
	cfg := Config{Seed: 9, Size: 100}
	a := Build(cfg, 100, domains)
	b := Build(cfg, 100, domains)
	if a.ID != b.ID {
		t.Error("IDs must be deterministic")
	}
	for i := range a.Domains {
		if a.Domains[i] != b.Domains[i] {
			t.Fatal("rankings must be deterministic")
		}
	}
	c := Build(Config{Seed: 10, Size: 100}, 100, domains)
	diff := 0
	for i := range a.Domains {
		if a.Domains[i] != c.Domains[i] {
			diff++
		}
	}
	if diff == 0 {
		t.Error("different seeds should perturb the ranking")
	}
}

func TestBuildDefaults(t *testing.T) {
	l := Build(Config{}, 50, trueOrder(50))
	if l.Len() != 50 {
		t.Errorf("default size should cover the input: %d", l.Len())
	}
}

func TestTopClamps(t *testing.T) {
	l := Build(Config{Seed: 1, Size: 10}, 50, trueOrder(20))
	if got := len(l.Top(100)); got != 10 {
		t.Errorf("Top(100) of a 10-list = %d", got)
	}
}
