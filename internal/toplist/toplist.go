// Package toplist implements a Tranco-style research toplist (Le Pochat
// et al., NDSS 2019) as used by the paper: ranks from several provider
// lists (Alexa, Cisco Umbrella, Majestic, Quantcast) are aggregated over
// a 30-day window into a manipulation-resistant, reproducible ranking.
// The paper uses the top 10k entries of the Tranco list created on
// 30 January 2020 (list K8JW).
//
// Provider lists are simulated: each provider observes the true
// popularity ordering of the domain universe through its own noisy,
// day-varying lens, mimicking the inter-provider disagreement and daily
// fluctuation documented by Scheitle et al. (IMC 2018).
package toplist

import (
	"math"
	"sort"

	"repro/internal/rng"
	"repro/internal/simtime"
)

// Provider identifies one upstream ranking provider.
type Provider string

// The four providers aggregated by Tranco.
const (
	Alexa     Provider = "alexa"
	Umbrella  Provider = "umbrella"
	Majestic  Provider = "majestic"
	Quantcast Provider = "quantcast"
)

// Providers returns the default provider set.
func Providers() []Provider {
	return []Provider{Alexa, Umbrella, Majestic, Quantcast}
}

// providerNoise is the per-provider rank-noise scale: each provider
// perturbs a domain's true log-rank by a provider-specific amount, so
// providers disagree more about the long tail than about the head.
var providerNoise = map[Provider]float64{
	Alexa:     0.10,
	Umbrella:  0.25, // DNS-based: noisiest, infrastructure-heavy
	Majestic:  0.18, // link-based: slow moving
	Quantcast: 0.15,
}

// ProviderList produces one provider's ranking for a given day, as a
// slice of domains in rank order (index 0 = rank 1). domains must be in
// true-popularity order. Only the top n entries are returned.
func ProviderList(src *rng.Source, p Provider, day simtime.Day, domains []string, n int) []string {
	noise := providerNoise[p]
	if noise == 0 {
		noise = 0.2
	}
	r := src.Stream("provider", string(p), day.String())
	type scored struct {
		domain string
		score  float64
	}
	scoredList := make([]scored, len(domains))
	for i, d := range domains {
		// Perturb the true log-rank; per-domain bias is stable across
		// days for a provider (providers systematically disagree), with
		// a smaller daily fluctuation component.
		bias := src.Float64("bias", string(p), d)*2 - 1
		daily := r.Float64()*2 - 1
		logRank := logf(i+1) * (1 + noise*bias + noise*0.3*daily)
		scoredList[i] = scored{d, logRank}
	}
	sort.SliceStable(scoredList, func(i, j int) bool { return scoredList[i].score < scoredList[j].score })
	if n > len(scoredList) {
		n = len(scoredList)
	}
	out := make([]string, n)
	for i := 0; i < n; i++ {
		out[i] = scoredList[i].domain
	}
	return out
}

func logf(x int) float64 { return math.Log(float64(x)) }

// List is an aggregated toplist.
type List struct {
	// ID is the permanent citable reference, e.g. "K8JW".
	ID string
	// Created is the list creation day.
	Created simtime.Day
	// Domains holds domains in rank order; Domains[0] has rank 1.
	Domains []string

	rank map[string]int
}

// Config parameterizes aggregation.
type Config struct {
	Seed uint64
	// WindowDays is the aggregation window (Tranco default: 30).
	WindowDays int
	// Size is the length of the output list.
	Size int
	// SampleDays subsamples the window for speed: provider lists are
	// generated every SampleDays-th day. 1 reproduces Tranco exactly;
	// larger values trade fidelity for speed. Default 7.
	SampleDays int
}

// Build aggregates provider lists over the window ending at `created`
// using the Borda count (Tranco's default): a domain receives
// (listSize - rank + 1) points per appearance, summed over all provider
// lists and days; ties break lexicographically for reproducibility.
func Build(cfg Config, created simtime.Day, trueOrder []string) *List {
	if cfg.WindowDays <= 0 {
		cfg.WindowDays = 30
	}
	if cfg.SampleDays <= 0 {
		cfg.SampleDays = 7
	}
	if cfg.Size <= 0 || cfg.Size > len(trueOrder) {
		cfg.Size = len(trueOrder)
	}
	src := rng.New(cfg.Seed).Derive("toplist")
	points := make(map[string]float64, len(trueOrder))
	listSize := len(trueOrder)
	for back := 0; back < cfg.WindowDays; back += cfg.SampleDays {
		day := created - simtime.Day(back)
		for _, p := range Providers() {
			ranking := ProviderList(src, p, day, trueOrder, listSize)
			for i, d := range ranking {
				points[d] += float64(listSize - i)
			}
		}
	}
	domains := make([]string, 0, len(points))
	for d := range points {
		domains = append(domains, d)
	}
	sort.Slice(domains, func(i, j int) bool {
		if points[domains[i]] != points[domains[j]] {
			return points[domains[i]] > points[domains[j]]
		}
		return domains[i] < domains[j]
	})
	if len(domains) > cfg.Size {
		domains = domains[:cfg.Size]
	}
	l := &List{
		ID:      listID(cfg.Seed, created),
		Created: created,
		Domains: domains,
	}
	l.buildIndex()
	return l
}

// buildIndex (re)builds the rank lookup map.
func (l *List) buildIndex() {
	l.rank = make(map[string]int, len(l.Domains))
	for i, d := range l.Domains {
		l.rank[d] = i + 1
	}
}

// Rank returns the 1-based rank of a domain, or 0 if it is not on the
// list.
func (l *List) Rank(domain string) int {
	if l.rank == nil {
		l.buildIndex()
	}
	return l.rank[domain]
}

// Top returns the first n domains (or fewer if the list is shorter).
func (l *List) Top(n int) []string {
	if n > len(l.Domains) {
		n = len(l.Domains)
	}
	return l.Domains[:n]
}

// Len returns the list length.
func (l *List) Len() int { return len(l.Domains) }

// listID derives a short, citable list identifier from the inputs,
// mimicking Tranco's permanent references (e.g. "K8JW").
func listID(seed uint64, created simtime.Day) string {
	const alphabet = "23456789ABCDEFGHJKLMNPQRSTUVWXYZ"
	h := seed*0x9e3779b97f4a7c15 + uint64(created)*0x853c49e6748fea9b
	var id [4]byte
	for i := range id {
		id[i] = alphabet[h%uint64(len(alphabet))]
		h /= uint64(len(alphabet))
	}
	return string(id[:])
}
