package obs

import (
	"bufio"
	"fmt"
	"sort"
	"strings"
	"sync"
	"testing"
)

// The retention ring only ever holds FINISHED spans: End hands the
// span to the tracer, so an unfinished parent cannot be evicted — it
// is not in the ring yet. This test hammers that boundary under
// -race: children finish concurrently while eviction pressure churns
// the ring, then the parents End late and must still export.
func TestTraceRingEvictionConcurrentFinish(t *testing.T) {
	const (
		cap     = 64
		parents = 8
		kids    = 200 // per parent; far beyond cap → heavy eviction
	)
	tr := NewTracer(TracerConfig{Cap: cap})

	roots := make([]*Span, parents)
	for i := range roots {
		roots[i] = tr.Start("parent", A("i", fmt.Sprint(i)))
	}
	var wg sync.WaitGroup
	for i, root := range roots {
		wg.Add(1)
		go func(i int, root *Span) {
			defer wg.Done()
			for k := 0; k < kids; k++ {
				c := root.Start("child", A("k", fmt.Sprint(k)))
				c.End()
			}
		}(i, root)
	}
	wg.Wait()
	// Every parent is still live — eviction must not have touched it.
	// Ending them now must retain all of them (they are the newest
	// finished spans).
	for _, root := range roots {
		root.End()
	}
	if got := tr.Len(); got != cap {
		t.Fatalf("retained %d spans, want cap %d", got, cap)
	}
	wantDropped := int64(parents*kids + parents - cap)
	if got := tr.Dropped(); got != wantDropped {
		t.Fatalf("dropped %d, want %d", got, wantDropped)
	}

	var buf strings.Builder
	if err := tr.WriteNDJSON(&buf); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimRight(buf.String(), "\n"), "\n")
	if len(lines) != cap {
		t.Fatalf("exported %d lines, want %d", len(lines), cap)
	}
	if !sort.StringsAreSorted(lines) {
		t.Fatal("export not sorted after eviction")
	}
	nParents := 0
	for _, l := range lines {
		if strings.Contains(l, `"name":"parent"`) {
			nParents++
		}
	}
	if nParents != parents {
		t.Fatalf("export has %d parents, want %d — a live parent was dropped", nParents, parents)
	}
}

// Concurrent End across goroutines with an over-capacity churn must
// leave the export sorted and exactly cap lines long.
func TestTraceRingExportSortedUnderChurn(t *testing.T) {
	const cap = 32
	tr := NewTracer(TracerConfig{Cap: cap})
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 100; i++ {
				sp := tr.Start("churn", A("g", fmt.Sprint(g)), A("i", fmt.Sprint(i)))
				sp.End()
			}
		}(g)
	}
	wg.Wait()
	var buf strings.Builder
	if err := tr.WriteNDJSON(&buf); err != nil {
		t.Fatal(err)
	}
	sc := bufio.NewScanner(strings.NewReader(buf.String()))
	var prev string
	n := 0
	for sc.Scan() {
		if sc.Text() < prev {
			t.Fatalf("line %d out of order", n)
		}
		prev = sc.Text()
		n++
	}
	if n != cap {
		t.Fatalf("exported %d lines, want %d", n, cap)
	}
}
