package obs

import (
	"math"
	"sort"
	"strconv"
	"sync/atomic"
)

// LatencyBuckets are the default upper bounds for latency histograms,
// in seconds. The substrate's simulated visits and in-process queries
// complete in microseconds, so the range starts far below Prometheus's
// defaults while still covering multi-second tails.
var LatencyBuckets = []float64{
	1e-6, 2.5e-6, 5e-6,
	1e-5, 2.5e-5, 5e-5,
	1e-4, 2.5e-4, 5e-4,
	1e-3, 2.5e-3, 5e-3,
	1e-2, 2.5e-2, 5e-2,
	0.1, 0.25, 0.5, 1, 2.5,
}

// ExponentialBuckets returns count upper bounds starting at start and
// multiplying by factor, e.g. ExponentialBuckets(1, 10, 8) →
// 1, 10, 100, … 1e7. It panics on invalid parameters.
func ExponentialBuckets(start, factor float64, count int) []float64 {
	if count < 1 || start <= 0 || factor <= 1 {
		panic("obs: ExponentialBuckets needs count >= 1, start > 0, factor > 1")
	}
	out := make([]float64, count)
	for i := range out {
		out[i] = start
		start *= factor
	}
	return out
}

// Histogram counts observations into fixed buckets by inclusive upper
// bound, plus an implicit +Inf bucket, and keeps the running sum. All
// methods are safe for concurrent use; a nil *Histogram is a no-op.
type Histogram struct {
	bounds  []float64      // sorted, strictly increasing; +Inf implicit
	counts  []atomic.Int64 // len(bounds)+1, per-bucket (non-cumulative)
	count   atomic.Int64
	sumBits atomic.Uint64
}

func newHistogram(bounds []float64) *Histogram {
	bs := append([]float64(nil), bounds...)
	sort.Float64s(bs)
	// Drop a trailing +Inf: the overflow bucket is always implicit.
	for len(bs) > 0 && math.IsInf(bs[len(bs)-1], 1) {
		bs = bs[:len(bs)-1]
	}
	return &Histogram{bounds: bs, counts: make([]atomic.Int64, len(bs)+1)}
}

// Observe records one value.
func (h *Histogram) Observe(v float64) {
	if h == nil {
		return
	}
	// First bucket whose upper bound is >= v ("le" semantics); beyond
	// the last bound, the +Inf bucket.
	i := sort.SearchFloat64s(h.bounds, v)
	h.counts[i].Add(1)
	h.count.Add(1)
	for {
		old := h.sumBits.Load()
		if h.sumBits.CompareAndSwap(old, math.Float64bits(math.Float64frombits(old)+v)) {
			return
		}
	}
}

// Bucket is one cumulative histogram bucket in a snapshot.
type Bucket struct {
	// LE is the inclusive upper bound; math.Inf(1) for the last bucket.
	LE float64 `json:"-"`
	// Label is LE in exposition form ("+Inf" for the last bucket).
	Label string `json:"le"`
	// Count is the cumulative count of observations <= LE.
	Count int64 `json:"count"`
}

// HistogramSnapshot is a point-in-time view of a histogram. Under
// concurrent observation the buckets, count and sum are each atomically
// read but not mutually consistent; the skew is at most the handful of
// observations in flight.
type HistogramSnapshot struct {
	Buckets []Bucket `json:"buckets"`
	Count   int64    `json:"count"`
	Sum     float64  `json:"sum"`
}

// Snapshot returns the cumulative bucket counts. A nil histogram
// yields a zero snapshot.
func (h *Histogram) Snapshot() HistogramSnapshot {
	var s HistogramSnapshot
	if h == nil {
		return s
	}
	s.Buckets = make([]Bucket, len(h.counts))
	var cum int64
	for i := range h.counts {
		cum += h.counts[i].Load()
		le, label := math.Inf(1), "+Inf"
		if i < len(h.bounds) {
			le = h.bounds[i]
			label = formatFloat(le)
		}
		s.Buckets[i] = Bucket{LE: le, Label: label, Count: cum}
	}
	s.Count = h.count.Load()
	s.Sum = math.Float64frombits(h.sumBits.Load())
	return s
}

// formatFloat renders a float the way the text exposition expects.
func formatFloat(v float64) string {
	switch {
	case math.IsInf(v, 1):
		return "+Inf"
	case math.IsInf(v, -1):
		return "-Inf"
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}
