package obs

import (
	"net/http"
	"net/http/pprof"
)

// Handler returns the debug surface for a registry and tracer:
//
//	GET /metrics        Prometheus text exposition
//	GET /metrics.json   the same registry as JSON
//	GET /debug/trace    finished spans as canonical NDJSON
//	                    (?name=visit&name=retry filters by span name)
//	GET /debug/pprof/*  the standard runtime profiles
//
// Mount it OUTSIDE any load-shedding limiter: scrapes and profiles are
// exactly what an operator needs while the service is saturated, so
// they must not be shed with the query traffic. Either argument may be
// nil; the corresponding endpoints serve empty documents.
func Handler(reg *Registry, tr *Tracer) http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		reg.WritePrometheus(w) //nolint:errcheck // client gone mid-scrape
	})
	mux.HandleFunc("/metrics.json", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		reg.WriteJSON(w) //nolint:errcheck
	})
	mux.HandleFunc("/debug/trace", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/x-ndjson")
		tr.WriteNDJSON(w, r.URL.Query()["name"]...) //nolint:errcheck
	})
	// net/http/pprof registers on DefaultServeMux via init; bind its
	// handlers to this private mux instead so the debug surface is
	// self-contained.
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return mux
}
