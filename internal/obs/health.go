package obs

import "time"

// TelemetrySummary is the capd-style /healthz digest of a live
// registry: uptime plus the slowest non-empty latency buckets, for
// health probes that don't want to parse a full /metrics exposition.
// capring and consentd serve the same shape (same JSON keys), so
// capstore.Client.Health round-trips it from any of the three.
type TelemetrySummary struct {
	// UptimeSeconds counts from handler construction.
	UptimeSeconds float64 `json:"uptime_seconds"`
	// SlowestQueryBuckets are the highest-latency non-empty buckets of
	// the service's primary latency histogram, slowest first.
	SlowestQueryBuckets []SummaryBucket `json:"slowest_query_buckets,omitempty"`
}

// SummaryBucket is one histogram bucket in the health summary.
type SummaryBucket struct {
	// LE is the bucket's inclusive upper bound in seconds ("+Inf" for
	// the overflow bucket).
	LE    string `json:"le"`
	Count int64  `json:"count"`
}

// Summarize builds the health digest from an uptime and a cumulative
// latency snapshot, keeping the n slowest non-empty buckets.
func Summarize(uptime time.Duration, snap HistogramSnapshot, n int) *TelemetrySummary {
	counts := make([]int64, len(snap.Buckets))
	var prev int64
	for i, b := range snap.Buckets {
		counts[i] = b.Count - prev
		prev = b.Count
	}
	out := &TelemetrySummary{UptimeSeconds: uptime.Seconds()}
	for i := len(counts) - 1; i >= 0 && len(out.SlowestQueryBuckets) < n; i-- {
		if counts[i] > 0 {
			out.SlowestQueryBuckets = append(out.SlowestQueryBuckets,
				SummaryBucket{LE: snap.Buckets[i].Label, Count: counts[i]})
		}
	}
	return out
}
