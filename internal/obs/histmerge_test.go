package obs

import (
	"math"
	"strings"
	"testing"
)

// snap builds a cumulative snapshot from (le, cumulative count) pairs;
// math.Inf(1) renders as "+Inf".
func snap(sum float64, pairs ...float64) HistogramSnapshot {
	s := HistogramSnapshot{Sum: sum}
	for i := 0; i+1 < len(pairs); i += 2 {
		le := pairs[i]
		s.Buckets = append(s.Buckets, Bucket{LE: le, Label: formatFloat(le), Count: int64(pairs[i+1])})
	}
	if n := len(s.Buckets); n > 0 {
		s.Count = s.Buckets[n-1].Count
	}
	return s
}

func TestMergeHistogramSnapshots(t *testing.T) {
	inf := math.Inf(1)
	for _, tc := range []struct {
		name string
		a, b HistogramSnapshot
		want HistogramSnapshot
	}{
		{
			name: "identical bounds sum per bucket",
			a:    snap(3, 0.1, 2, 1, 5, inf, 6),
			b:    snap(2, 0.1, 1, 1, 1, inf, 2),
			want: snap(5, 0.1, 3, 1, 6, inf, 8),
		},
		{
			name: "zero left returns right",
			a:    HistogramSnapshot{},
			b:    snap(1, 0.5, 4, inf, 4),
			want: snap(1, 0.5, 4, inf, 4),
		},
		{
			name: "zero right returns left",
			a:    snap(1, 0.5, 4, inf, 4),
			b:    HistogramSnapshot{},
			want: snap(1, 0.5, 4, inf, 4),
		},
		{
			name: "disjoint bounds union and stay cumulative",
			a:    snap(1, 0.1, 3, inf, 3),
			b:    snap(9, 1, 2, inf, 5),
			// a's 3 obs at le=0.1 precede b's 2 at le=1 and 3 overflow.
			want: snap(10, 0.1, 3, 1, 5, inf, 8),
		},
		{
			name: "missing overflow bucket is synthesized",
			a:    snap(1, 0.1, 2),
			b:    snap(2, 0.5, 3),
			want: snap(3, 0.1, 2, 0.5, 5, inf, 5),
		},
		{
			name: "both empty stays empty",
			a:    HistogramSnapshot{},
			b:    HistogramSnapshot{},
			want: HistogramSnapshot{},
		},
	} {
		t.Run(tc.name, func(t *testing.T) {
			got := MergeHistogramSnapshots(tc.a, tc.b)
			if got.Count != tc.want.Count || got.Sum != tc.want.Sum {
				t.Fatalf("count/sum = %d/%v, want %d/%v", got.Count, got.Sum, tc.want.Count, tc.want.Sum)
			}
			if len(got.Buckets) != len(tc.want.Buckets) {
				t.Fatalf("buckets = %+v, want %+v", got.Buckets, tc.want.Buckets)
			}
			for i, b := range got.Buckets {
				w := tc.want.Buckets[i]
				if b.LE != w.LE || b.Count != w.Count || b.Label != w.Label {
					t.Errorf("bucket %d = %+v, want %+v", i, b, w)
				}
			}
		})
	}
}

// Merging must commute: scrape order across nodes is arbitrary.
func TestMergeHistogramSnapshotsCommutes(t *testing.T) {
	inf := math.Inf(1)
	a := snap(1, 0.1, 3, 0.5, 4, inf, 6)
	b := snap(2, 0.25, 1, 1, 9, inf, 9)
	ab := MergeHistogramSnapshots(a, b)
	ba := MergeHistogramSnapshots(b, a)
	if len(ab.Buckets) != len(ba.Buckets) || ab.Count != ba.Count || ab.Sum != ba.Sum {
		t.Fatalf("merge not commutative: %+v vs %+v", ab, ba)
	}
	for i := range ab.Buckets {
		if ab.Buckets[i] != ba.Buckets[i] {
			t.Fatalf("bucket %d: %+v vs %+v", i, ab.Buckets[i], ba.Buckets[i])
		}
	}
}

func TestHistogramSnapshotQuantile(t *testing.T) {
	inf := math.Inf(1)
	for _, tc := range []struct {
		name string
		s    HistogramSnapshot
		q    float64
		want float64 // NaN for degenerate shapes
	}{
		{"empty snapshot", HistogramSnapshot{}, 0.99, math.NaN()},
		{"zero count", snap(0, 0.1, 0, inf, 0), 0.5, math.NaN()},
		{"only +Inf bucket", snap(0, inf, 7), 0.5, math.NaN()},
		{"single finite bucket interpolates from zero", snap(0, 1, 10, inf, 10), 0.5, 0.5},
		{"rank in overflow reports highest finite bound", snap(0, 1, 1, inf, 10), 0.99, 1},
		{"median interpolates within its bucket", snap(0, 1, 0, 2, 10, inf, 10), 0.5, 1.5},
		{"q clamps below zero", snap(0, 1, 10, inf, 10), -3, 0},
		{"q clamps above one", snap(0, 1, 10, inf, 10), 7, 1},
	} {
		t.Run(tc.name, func(t *testing.T) {
			got := tc.s.Quantile(tc.q)
			if math.IsNaN(tc.want) {
				if !math.IsNaN(got) {
					t.Fatalf("Quantile(%v) = %v, want NaN", tc.q, got)
				}
				return
			}
			if math.Abs(got-tc.want) > 1e-9 {
				t.Fatalf("Quantile(%v) = %v, want %v", tc.q, got, tc.want)
			}
		})
	}
}

// The JSON exposition must survive a scrape round-trip: histogram
// bucket bounds marshal only as their "le" labels, and obsd's rollup
// needs the numeric LE back to merge and take quantiles.
func TestParseJSONExpositionRoundTrip(t *testing.T) {
	reg := NewRegistry()
	h := NewHistogram(reg, "rt_seconds", "latency", []float64{0.1, 1})
	h.Observe(0.05)
	h.Observe(2)
	c := NewCounterVec(reg, "ops_total", "ops", "op")
	c.With("read").Inc()
	c.With("write").Add(3)
	var buf strings.Builder
	if err := reg.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	fams, err := ParseJSONExposition(strings.NewReader(buf.String()))
	if err != nil {
		t.Fatal(err)
	}
	byName := map[string]ExpositionFamily{}
	for _, f := range fams {
		byName[f.Name] = f
	}
	rt, ok := byName["rt_seconds"]
	if !ok || len(rt.Metrics) != 1 || rt.Metrics[0].Histogram == nil {
		t.Fatalf("rt_seconds did not round-trip: %+v", rt)
	}
	buckets := rt.Metrics[0].Histogram.Buckets
	last := buckets[len(buckets)-1]
	if !math.IsInf(last.LE, 1) {
		t.Fatalf("+Inf bound not re-parsed, got %v", last.LE)
	}
	if got := buckets[0].LE; got != 0.1 {
		t.Fatalf("first bound = %v, want 0.1", got)
	}
	ops, ok := byName["ops_total"]
	if !ok || len(ops.Metrics) != 2 {
		t.Fatalf("ops_total children did not round-trip: %+v", ops)
	}
	for _, m := range ops.Metrics {
		if m.Labels["op"] == "" || m.Value == nil {
			t.Fatalf("counter child lost labels or value: %+v", m)
		}
	}
}
