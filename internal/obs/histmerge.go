package obs

import (
	"math"
	"sort"
)

// Histogram snapshot algebra for cluster rollups. obsd merges the same
// family's snapshots from N nodes into one cluster histogram and reads
// quantiles off the merge; both operations are defined over the
// cumulative snapshot form so they work on scraped expositions, not
// just live histograms.

// MergeHistogramSnapshots merges two cumulative snapshots into one
// over the union of their bucket bounds. Observations keep the upper
// bound they were recorded under, so merging is exact when the bound
// sets agree and conservative (never re-bins downward) when they
// differ. Either side may be the zero snapshot.
func MergeHistogramSnapshots(a, b HistogramSnapshot) HistogramSnapshot {
	if len(a.Buckets) == 0 && a.Count == 0 {
		return cloneSnapshot(b)
	}
	if len(b.Buckets) == 0 && b.Count == 0 {
		return cloneSnapshot(a)
	}
	// De-cumulate each side into per-bound counts, then union.
	perLE := map[float64]int64{}
	addSide := func(s HistogramSnapshot) {
		var prev int64
		for _, bk := range s.Buckets {
			perLE[bk.LE] += bk.Count - prev
			prev = bk.Count
		}
	}
	addSide(a)
	addSide(b)
	bounds := make([]float64, 0, len(perLE)+1)
	for le := range perLE {
		if !math.IsInf(le, 1) {
			bounds = append(bounds, le)
		}
	}
	sort.Float64s(bounds)
	// Always close the merge with an overflow bucket so the result is a
	// well-formed snapshot even if neither input carried one.
	bounds = append(bounds, math.Inf(1))
	out := HistogramSnapshot{
		Buckets: make([]Bucket, len(bounds)),
		Count:   a.Count + b.Count,
		Sum:     a.Sum + b.Sum,
	}
	var cum int64
	for i, le := range bounds {
		cum += perLE[le]
		out.Buckets[i] = Bucket{LE: le, Label: formatFloat(le), Count: cum}
	}
	return out
}

func cloneSnapshot(s HistogramSnapshot) HistogramSnapshot {
	out := s
	out.Buckets = append([]Bucket(nil), s.Buckets...)
	for i := range out.Buckets {
		if out.Buckets[i].Label == "" {
			out.Buckets[i].Label = formatFloat(out.Buckets[i].LE)
		}
	}
	return out
}

// Quantile estimates the q-quantile (0 ≤ q ≤ 1) from the snapshot's
// cumulative buckets, interpolating linearly within the bucket the
// rank falls in (the first bucket interpolates from zero, so the
// estimate assumes non-negative observations — these are latency
// histograms). Following the Prometheus convention, a rank landing in
// the +Inf bucket reports the highest finite bound. Degenerate shapes
// answer NaN: an empty snapshot, a zero count, or a histogram whose
// only bucket is +Inf (there is no finite bound to estimate with).
func (s HistogramSnapshot) Quantile(q float64) float64 {
	if len(s.Buckets) == 0 {
		return math.NaN()
	}
	total := s.Buckets[len(s.Buckets)-1].Count
	if total <= 0 {
		return math.NaN()
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	rank := q * float64(total)
	// Highest finite bound, for overflow answers.
	finite := math.NaN()
	for i := len(s.Buckets) - 1; i >= 0; i-- {
		if !math.IsInf(s.Buckets[i].LE, 1) {
			finite = s.Buckets[i].LE
			break
		}
	}
	var prevCum int64
	var prevLE float64
	for _, b := range s.Buckets {
		if float64(b.Count) >= rank {
			if math.IsInf(b.LE, 1) {
				return finite // NaN when the +Inf bucket is the only one
			}
			in := b.Count - prevCum
			if in <= 0 {
				return b.LE
			}
			return prevLE + (b.LE-prevLE)*((rank-float64(prevCum))/float64(in))
		}
		prevCum = b.Count
		if !math.IsInf(b.LE, 1) {
			prevLE = b.LE
		}
	}
	return finite
}
