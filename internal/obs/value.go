package obs

import (
	"math"
	"sync/atomic"
)

// Counter is a monotonically increasing metric. The zero value is
// ready to use; a nil *Counter is the no-op recorder (every method
// returns immediately).
type Counter struct{ v atomic.Int64 }

// Inc adds one.
func (c *Counter) Inc() {
	if c != nil {
		c.v.Add(1)
	}
}

// Add adds n; negative deltas are a programming error but are not
// rejected (exposition would surface the bug).
func (c *Counter) Add(n int64) {
	if c != nil {
		c.v.Add(n)
	}
}

// Value returns the current count (0 on a nil counter).
func (c *Counter) Value() int64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Gauge is a metric that can go up and down, stored as atomic float64
// bits. The zero value is ready to use; a nil *Gauge is a no-op.
type Gauge struct{ bits atomic.Uint64 }

// Set replaces the value.
func (g *Gauge) Set(v float64) {
	if g != nil {
		g.bits.Store(math.Float64bits(v))
	}
}

// Add shifts the value by d.
func (g *Gauge) Add(d float64) {
	if g == nil {
		return
	}
	for {
		old := g.bits.Load()
		if g.bits.CompareAndSwap(old, math.Float64bits(math.Float64frombits(old)+d)) {
			return
		}
	}
}

// Value returns the current value (0 on a nil gauge).
func (g *Gauge) Value() float64 {
	if g == nil {
		return 0
	}
	return math.Float64frombits(g.bits.Load())
}
