package agg

import (
	"encoding/json"
	"net/http"
	"strings"
)

// Handler mounts the aggregator's cluster surface:
//
//	GET  /cluster/metrics       rollups, Prometheus text exposition
//	GET  /cluster/metrics.json  rollups as {"families":[…]}
//	GET  /cluster/traces        assembled trace summaries (JSON list)
//	GET  /cluster/traces/{id}   one assembled trace (deterministic text)
//	GET  /cluster/alerts        SLO rule states (JSON list)
//	GET  /cluster/healthz       scrape + alert health
//	POST /ingest/spans          NDJSON span export from an ephemeral
//	                            process (fleetd, crawl workers)
func Handler(a *Aggregator) http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/cluster/metrics", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		WritePrometheus(w, a.Rollup()) //nolint:errcheck // client gone mid-scrape
	})
	mux.HandleFunc("/cluster/metrics.json", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		json.NewEncoder(w).Encode(struct { //nolint:errcheck
			Families []RollupFamily `json:"families"`
		}{a.Rollup()})
	})
	mux.HandleFunc("/cluster/traces", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		json.NewEncoder(w).Encode(a.Traces()) //nolint:errcheck
	})
	mux.HandleFunc("/cluster/traces/", func(w http.ResponseWriter, r *http.Request) {
		tid := strings.TrimPrefix(r.URL.Path, "/cluster/traces/")
		if tid == "" {
			http.Error(w, "agg: want /cluster/traces/{trace-id}", http.StatusBadRequest)
			return
		}
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		ok, err := a.WriteTrace(w, tid)
		if err != nil {
			return // mid-body write error: client gone
		}
		if !ok {
			http.Error(w, "agg: unknown trace "+tid, http.StatusNotFound)
		}
	})
	mux.HandleFunc("/cluster/alerts", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		json.NewEncoder(w).Encode(a.Alerts()) //nolint:errcheck
	})
	mux.HandleFunc("/cluster/healthz", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		json.NewEncoder(w).Encode(a.Health()) //nolint:errcheck
	})
	mux.HandleFunc("/ingest/spans", func(w http.ResponseWriter, r *http.Request) {
		if r.Method != http.MethodPost {
			http.Error(w, "agg: /ingest/spans wants POST", http.StatusMethodNotAllowed)
			return
		}
		if err := a.IngestSpans(http.MaxBytesReader(w, r.Body, 64<<20)); err != nil {
			http.Error(w, err.Error(), http.StatusBadRequest)
			return
		}
		w.WriteHeader(http.StatusNoContent)
	})
	return mux
}
