package agg

import (
	"bufio"
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"

	"repro/internal/obs"
)

// Cluster rollups. Every scraped family folds into three derived
// families, named with the colon prefixes the Prometheus exposition
// grammar reserves for recording rules:
//
//	cluster:<name>        sum across all nodes (counters, gauges) or
//	                      the quantile-mergeable bucket union
//	                      (histograms), per label set
//	cluster:<name>:max    gauges additionally keep the per-node max —
//	                      a summed queue depth hides one saturated node
//	role:<name>           the same fold restricted to nodes sharing a
//	                      role, with a role label
//	node:<name>           the raw per-node children, with node and role
//	                      labels — the drill-down surface
//
// Vecs with disjoint label children across nodes merge by label set:
// a child seen on only one node contributes itself, unchanged, to the
// cluster fold.

// RollupFamily is one derived family in the cluster exposition.
type RollupFamily struct {
	Name    string                 `json:"name"`
	Kind    string                 `json:"kind"`
	Help    string                 `json:"help,omitempty"`
	Metrics []obs.ExpositionMetric `json:"metrics"`
}

// labelKey canonicalizes a label set for grouping.
func labelKey(labels map[string]string) string {
	if len(labels) == 0 {
		return ""
	}
	parts := make([]string, 0, len(labels))
	for k, v := range labels {
		parts = append(parts, k+"\x00"+v)
	}
	sort.Strings(parts)
	return strings.Join(parts, "\x01")
}

// foldChild accumulates one scraped metric into a group keyed by label
// set.
type foldChild struct {
	labels map[string]string
	sum    float64
	max    float64
	n      int
	hist   obs.HistogramSnapshot
}

type fold struct {
	kind     string
	help     string
	children map[string]*foldChild
}

func (f *fold) add(m obs.ExpositionMetric, extra map[string]string) {
	labels := make(map[string]string, len(m.Labels)+len(extra))
	for k, v := range m.Labels {
		labels[k] = v
	}
	for k, v := range extra {
		labels[k] = v
	}
	key := labelKey(labels)
	c := f.children[key]
	if c == nil {
		c = &foldChild{labels: labels}
		f.children[key] = c
	}
	if m.Histogram != nil {
		c.hist = obs.MergeHistogramSnapshots(c.hist, *m.Histogram)
	}
	if m.Value != nil {
		c.sum += *m.Value
		if c.n == 0 || *m.Value > c.max {
			c.max = *m.Value
		}
	}
	c.n++
}

func (f *fold) family(name string, value func(*foldChild) float64) RollupFamily {
	rf := RollupFamily{Name: name, Kind: f.kind, Help: f.help}
	for _, key := range sortedKeys(f.children) {
		c := f.children[key]
		m := obs.ExpositionMetric{}
		if len(c.labels) > 0 {
			m.Labels = c.labels
		}
		if f.kind == "histogram" {
			h := c.hist
			m.Histogram = &h
		} else {
			v := value(c)
			m.Value = &v
		}
		rf.Metrics = append(rf.Metrics, m)
	}
	return rf
}

// Rollup folds the latest scrape of every node into the derived
// cluster families, sorted by name.
func (a *Aggregator) Rollup() []RollupFamily {
	nodes := a.snapshotNodes()

	cluster := map[string]*fold{}
	role := map[string]*fold{}
	node := map[string]*fold{}
	ensure := func(m map[string]*fold, name, kind, help string) *fold {
		f := m[name]
		if f == nil {
			f = &fold{kind: kind, help: help, children: map[string]*foldChild{}}
			m[name] = f
		}
		return f
	}
	for _, ns := range nodes {
		for _, fam := range ns.families {
			for _, metric := range fam.Metrics {
				ensure(cluster, fam.Name, fam.Kind, fam.Help).add(metric, nil)
				ensure(role, fam.Name, fam.Kind, fam.Help).add(metric,
					map[string]string{"role": ns.target.Role})
				ensure(node, fam.Name, fam.Kind, fam.Help).add(metric,
					map[string]string{"node": ns.target.Name, "role": ns.target.Role})
			}
		}
	}

	sum := func(c *foldChild) float64 { return c.sum }
	max := func(c *foldChild) float64 { return c.max }
	var out []RollupFamily
	for _, name := range sortedKeys(cluster) {
		f := cluster[name]
		out = append(out, f.family("cluster:"+name, sum))
		if f.kind == "gauge" {
			mf := f.family("cluster:"+name+":max", max)
			mf.Kind = "gauge"
			mf.Help = "Per-node maximum of " + name + "."
			out = append(out, mf)
		}
	}
	for _, name := range sortedKeys(role) {
		out = append(out, role[name].family("role:"+name, sum))
	}
	for _, name := range sortedKeys(node) {
		out = append(out, node[name].family("node:"+name, sum))
	}
	return out
}

// WritePrometheus renders the rollup in the Prometheus text format —
// the /cluster/metrics body, valid under obs.ValidateExposition.
func WritePrometheus(w io.Writer, fams []RollupFamily) error {
	bw := bufio.NewWriter(w)
	for _, f := range fams {
		if f.Help != "" {
			fmt.Fprintf(bw, "# HELP %s %s\n", f.Name, strings.ReplaceAll(f.Help, "\n", `\n`))
		}
		fmt.Fprintf(bw, "# TYPE %s %s\n", f.Name, f.Kind)
		for _, m := range f.Metrics {
			labels := renderLabels(m.Labels, "", "")
			switch {
			case m.Histogram != nil:
				for _, b := range m.Histogram.Buckets {
					fmt.Fprintf(bw, "%s_bucket%s %d\n", f.Name, renderLabels(m.Labels, "le", b.Label), b.Count)
				}
				fmt.Fprintf(bw, "%s_sum%s %s\n", f.Name, labels, formatValue(m.Histogram.Sum))
				fmt.Fprintf(bw, "%s_count%s %d\n", f.Name, labels, m.Histogram.Count)
			case m.Value != nil:
				fmt.Fprintf(bw, "%s%s %s\n", f.Name, labels, formatValue(*m.Value))
			}
		}
	}
	return bw.Flush()
}

func renderLabels(labels map[string]string, extraK, extraV string) string {
	if len(labels) == 0 && extraK == "" {
		return ""
	}
	var b strings.Builder
	b.WriteByte('{')
	first := true
	for _, k := range sortedKeys(labels) {
		if !first {
			b.WriteByte(',')
		}
		first = false
		b.WriteString(k)
		b.WriteString(`="`)
		b.WriteString(escapeLabelValue(labels[k]))
		b.WriteString(`"`)
	}
	if extraK != "" {
		if !first {
			b.WriteByte(',')
		}
		b.WriteString(extraK)
		b.WriteString(`="`)
		b.WriteString(extraV)
		b.WriteString(`"`)
	}
	b.WriteByte('}')
	return b.String()
}

func escapeLabelValue(s string) string {
	s = strings.ReplaceAll(s, `\`, `\\`)
	s = strings.ReplaceAll(s, `"`, `\"`)
	return strings.ReplaceAll(s, "\n", `\n`)
}

func formatValue(v float64) string {
	return strconv.FormatFloat(v, 'g', -1, 64)
}
