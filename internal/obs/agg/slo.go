package agg

import (
	"fmt"
	"math"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"

	"repro/internal/obs"
)

// Declarative SLO rules with multi-window burn-rate alerting. A rule
// names a cluster-rollup family and an objective; after every scrape
// the evaluator computes the bad-event fraction over a fast and a
// slow trailing window and the alert fires while BOTH windows burn
// error budget faster than their thresholds — the standard
// multi-window construction: the fast window catches onset, the slow
// window keeps one spike from paging.
//
// Rule kinds:
//
//	latency  Metric is a histogram family; an observation above
//	         Threshold seconds is bad; Quantile sets the objective
//	         (0.99 → at most 1% of observations may be bad).
//	ratio    Metric and Denom are counter families; burn is
//	         (ΔMetric/ΔDenom)/Threshold, the allowed bad fraction.
//	rate     Metric is a counter family; burn is the per-second
//	         increase over Threshold events/sec.
//
// Windows shorter than the scrape history evaluate on what exists —
// a partial window burns against its actual span, so a freshly
// started obsd can still page on a hot failure.

// Rule is one SLO rule.
type Rule struct {
	Name string `json:"name"`
	Kind string `json:"kind"` // latency | ratio | rate
	// Metric is the scraped family name (without rollup prefix); the
	// rule evaluates the cluster: fold of it.
	Metric string `json:"metric"`
	// Denom is the ratio denominator family.
	Denom string `json:"denom,omitempty"`
	// Quantile is the latency objective (default 0.99).
	Quantile float64 `json:"quantile,omitempty"`
	// Threshold: latency → seconds; ratio → allowed bad fraction;
	// rate → allowed events/sec.
	Threshold float64 `json:"threshold"`
	// Fast/Slow windows (defaults 5m / 30m) and their burn-rate trip
	// points (defaults 14.4 / 6 — the SRE-workbook page thresholds).
	FastWindow time.Duration `json:"fast_window"`
	SlowWindow time.Duration `json:"slow_window"`
	FastBurn   float64       `json:"fast_burn"`
	SlowBurn   float64       `json:"slow_burn"`
}

func (r Rule) withDefaults() Rule {
	if r.Quantile <= 0 || r.Quantile >= 1 {
		r.Quantile = 0.99
	}
	if r.FastWindow <= 0 {
		r.FastWindow = 5 * time.Minute
	}
	if r.SlowWindow <= 0 {
		r.SlowWindow = 30 * time.Minute
	}
	if r.FastBurn <= 0 {
		r.FastBurn = 14.4
	}
	if r.SlowBurn <= 0 {
		r.SlowBurn = 6
	}
	return r
}

func (r Rule) validate() error {
	if r.Name == "" || r.Metric == "" {
		return fmt.Errorf("agg: rule needs name and metric: %+v", r)
	}
	switch r.Kind {
	case "latency", "rate":
	case "ratio":
		if r.Denom == "" {
			return fmt.Errorf("agg: ratio rule %s needs denom", r.Name)
		}
	default:
		return fmt.Errorf("agg: rule %s: unknown kind %q", r.Name, r.Kind)
	}
	if r.Threshold <= 0 {
		return fmt.Errorf("agg: rule %s needs a positive threshold", r.Name)
	}
	return nil
}

// ParseRule reads the cmd/obsd -slo flag syntax: comma-separated k=v
// pairs, e.g.
//
//	name=ingest-p99,kind=latency,metric=ingest_seconds,threshold=0.5,q=0.99,fast=5m,slow=30m,fastburn=14.4,slowburn=6
func ParseRule(s string) (Rule, error) {
	var r Rule
	for _, kv := range strings.Split(s, ",") {
		k, v, ok := strings.Cut(strings.TrimSpace(kv), "=")
		if !ok {
			return r, fmt.Errorf("agg: rule clause %q is not k=v", kv)
		}
		var err error
		switch k {
		case "name":
			r.Name = v
		case "kind":
			r.Kind = v
		case "metric":
			r.Metric = v
		case "denom":
			r.Denom = v
		case "q", "quantile":
			r.Quantile, err = strconv.ParseFloat(v, 64)
		case "threshold":
			r.Threshold, err = strconv.ParseFloat(v, 64)
		case "fast":
			r.FastWindow, err = time.ParseDuration(v)
		case "slow":
			r.SlowWindow, err = time.ParseDuration(v)
		case "fastburn":
			r.FastBurn, err = strconv.ParseFloat(v, 64)
		case "slowburn":
			r.SlowBurn, err = strconv.ParseFloat(v, 64)
		default:
			return r, fmt.Errorf("agg: rule clause %q: unknown key", kv)
		}
		if err != nil {
			return r, fmt.Errorf("agg: rule clause %q: %w", kv, err)
		}
	}
	r = r.withDefaults()
	return r, r.validate()
}

// sloSample is one scrape's view of a rule's inputs: cumulative
// totals, so a window delta is two samples subtracted.
type sloSample struct {
	at    time.Time
	hist  obs.HistogramSnapshot // latency rules
	num   float64               // ratio numerator / rate counter
	denom float64               // ratio denominator
}

// Alert is one rule's state in /cluster/alerts.
type Alert struct {
	Rule     Rule    `json:"rule"`
	State    string  `json:"state"` // "ok" | "firing"
	FastBurn float64 `json:"fast_burn"`
	SlowBurn float64 `json:"slow_burn"`
	// Current is the instantaneous measure: the latest window's bad
	// fraction (latency/ratio) or rate (rate rules).
	Current string    `json:"current,omitempty"`
	Since   time.Time `json:"since,omitempty"` // firing transition
}

type ruleState struct {
	rule    Rule
	samples []sloSample // time-ordered ring, bounded by slow window
	firing  bool
	since   time.Time
	fast    float64
	slow    float64
	current string
}

type sloState struct {
	mu    sync.Mutex
	rules []*ruleState
}

func newSLOState(rules []Rule) *sloState {
	s := &sloState{}
	for _, r := range rules {
		s.rules = append(s.rules, &ruleState{rule: r.withDefaults()})
	}
	return s
}

// observe folds one scrape's rollup into every rule and re-evaluates.
func (s *sloState) observe(now time.Time, rollup []RollupFamily) {
	byName := make(map[string]RollupFamily, len(rollup))
	for _, f := range rollup {
		byName[f.Name] = f
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	for _, rs := range s.rules {
		sample := sloSample{at: now}
		if f, ok := byName["cluster:"+rs.rule.Metric]; ok {
			for _, m := range f.Metrics {
				if m.Histogram != nil {
					sample.hist = obs.MergeHistogramSnapshots(sample.hist, *m.Histogram)
				}
				if m.Value != nil {
					sample.num += *m.Value
				}
			}
		}
		if rs.rule.Denom != "" {
			if f, ok := byName["cluster:"+rs.rule.Denom]; ok {
				for _, m := range f.Metrics {
					if m.Value != nil {
						sample.denom += *m.Value
					}
				}
			}
		}
		rs.samples = append(rs.samples, sample)
		// Keep one sample older than the slow window so a full-window
		// delta stays computable.
		cut := now.Add(-rs.rule.SlowWindow)
		drop := 0
		for drop < len(rs.samples)-1 && rs.samples[drop+1].at.Before(cut) {
			drop++
		}
		rs.samples = rs.samples[drop:]
		rs.evaluate(now)
	}
}

// windowStart picks the oldest retained sample inside (or at the edge
// of) the window — the partial-window rule: with less history than
// the window the delta spans what exists.
func (rs *ruleState) windowStart(now time.Time, w time.Duration) sloSample {
	cut := now.Add(-w)
	start := rs.samples[0]
	for _, sm := range rs.samples {
		if sm.at.After(cut) {
			break
		}
		start = sm
	}
	return start
}

func (rs *ruleState) evaluate(now time.Time) {
	latest := rs.samples[len(rs.samples)-1]
	burn := func(w time.Duration) (float64, string) {
		start := rs.windowStart(now, w)
		switch rs.rule.Kind {
		case "latency":
			total := float64(latest.hist.Count - start.hist.Count)
			if total <= 0 {
				return 0, "no observations"
			}
			bad := total - deltaGood(start.hist, latest.hist, rs.rule.Threshold)
			frac := bad / total
			return frac / (1 - rs.rule.Quantile), fmt.Sprintf("bad_frac=%.4f", frac)
		case "ratio":
			dd := latest.denom - start.denom
			if dd <= 0 {
				return 0, "no events"
			}
			frac := (latest.num - start.num) / dd
			return frac / rs.rule.Threshold, fmt.Sprintf("ratio=%.4f", frac)
		case "rate":
			secs := latest.at.Sub(start.at).Seconds()
			if secs <= 0 {
				return 0, "no elapsed time"
			}
			rate := (latest.num - start.num) / secs
			return rate / rs.rule.Threshold, fmt.Sprintf("rate=%.4f/s", rate)
		}
		return 0, ""
	}
	var cur string
	rs.fast, cur = burn(rs.rule.FastWindow)
	rs.slow, _ = burn(rs.rule.SlowWindow)
	rs.current = cur
	nowFiring := rs.fast >= rs.rule.FastBurn && rs.slow >= rs.rule.SlowBurn
	if nowFiring && !rs.firing {
		rs.since = now
	}
	rs.firing = nowFiring
}

// deltaGood counts the window's observations at or under the latency
// threshold, from the cumulative bucket delta. The threshold maps to
// the first bucket bound >= it (le semantics); a threshold beyond the
// last finite bound counts everything finite as good.
func deltaGood(start, end obs.HistogramSnapshot, threshold float64) float64 {
	goodAt := func(s obs.HistogramSnapshot) float64 {
		if len(s.Buckets) == 0 {
			return 0
		}
		i := sort.Search(len(s.Buckets), func(i int) bool { return s.Buckets[i].LE >= threshold })
		if i == len(s.Buckets) {
			i = len(s.Buckets) - 1
		}
		if math.IsInf(s.Buckets[i].LE, 1) && i > 0 {
			i-- // the +Inf bucket holds the over-threshold tail
		}
		return float64(s.Buckets[i].Count)
	}
	return goodAt(end) - goodAt(start)
}

// firing counts rules currently firing.
func (s *sloState) firing() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	n := 0
	for _, rs := range s.rules {
		if rs.firing {
			n++
		}
	}
	return n
}

// alerts snapshots every rule.
func (s *sloState) alerts() []Alert {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]Alert, 0, len(s.rules))
	for _, rs := range s.rules {
		a := Alert{Rule: rs.rule, State: "ok", FastBurn: rs.fast, SlowBurn: rs.slow, Current: rs.current}
		if rs.firing {
			a.State = "firing"
			a.Since = rs.since
		}
		out = append(out, a)
	}
	return out
}

// Alerts snapshots the SLO rule states.
func (a *Aggregator) Alerts() []Alert { return a.slo.alerts() }
