package agg

import (
	"testing"
	"time"

	"repro/internal/obs"
)

// sloHarness scrapes one synthetic node under a hand-advanced clock —
// the burn windows move only when the test says so.
type sloHarness struct {
	t   *testing.T
	a   *Aggregator
	now time.Time
}

func newSLOHarness(t *testing.T, reg *obs.Registry, rule Rule) *sloHarness {
	t.Helper()
	h := &sloHarness{t: t, now: time.Date(2026, 1, 1, 0, 0, 0, 0, time.UTC)}
	node := fakeNode(t, reg, nil)
	a, err := New(Config{
		Targets: []Target{{Name: "n1", Role: "capd", URL: node.URL}},
		Rules:   []Rule{rule},
		Clock:   func() time.Time { return h.now },
	})
	if err != nil {
		t.Fatal(err)
	}
	h.a = a
	return h
}

func (h *sloHarness) scrapeAfter(d time.Duration) Alert {
	h.t.Helper()
	h.now = h.now.Add(d)
	h.a.ScrapeOnce()
	alerts := h.a.Alerts()
	if len(alerts) != 1 {
		h.t.Fatalf("want one alert, got %+v", alerts)
	}
	return alerts[0]
}

// A rate rule fires when the counter climbs faster than the threshold
// over both windows, and clears once the windows go quiet again.
func TestSLORateBurn(t *testing.T) {
	reg := obs.NewRegistry()
	shed := obs.NewCounter(reg, "shed_total", "sheds")
	h := newSLOHarness(t, reg, Rule{
		Name: "shed", Kind: "rate", Metric: "shed_total",
		Threshold:  1, // events/sec
		FastWindow: 10 * time.Second, SlowWindow: 30 * time.Second,
		FastBurn: 1, SlowBurn: 1,
	})

	// First scrape: one sample, no elapsed window → cannot fire.
	if a := h.scrapeAfter(0); a.State != "ok" {
		t.Fatalf("fired on the first scrape: %+v", a)
	}
	shed.Add(100)
	a := h.scrapeAfter(5 * time.Second) // 20 events/sec over the window
	if a.State != "firing" {
		t.Fatalf("hot shed rate did not fire: %+v", a)
	}
	if a.FastBurn < 1 || a.SlowBurn < 1 {
		t.Fatalf("firing alert reports burns %v/%v", a.FastBurn, a.SlowBurn)
	}
	if a.Since.IsZero() {
		t.Fatal("firing alert has no since timestamp")
	}

	// Quiet scrapes walk the spike out of both windows.
	var last Alert
	for i := 0; i < 8; i++ {
		last = h.scrapeAfter(10 * time.Second)
	}
	if last.State != "ok" {
		t.Fatalf("alert did not clear after quiet windows: %+v", last)
	}
}

// A latency rule burns on the fraction of window observations above
// the threshold, against the quantile objective.
func TestSLOLatencyBurn(t *testing.T) {
	reg := obs.NewRegistry()
	hist := obs.NewHistogram(reg, "req_seconds", "latency", []float64{0.1, 1})
	for i := 0; i < 10; i++ {
		hist.Observe(0.05) // a healthy history, all under threshold
	}
	h := newSLOHarness(t, reg, Rule{
		Name: "p90", Kind: "latency", Metric: "req_seconds",
		Threshold: 0.1, Quantile: 0.9, // ≤10% of observations may exceed 100ms
		FastWindow: 10 * time.Second, SlowWindow: 30 * time.Second,
		FastBurn: 2, SlowBurn: 2,
	})

	// Baseline sample: zero delta → "no observations", not a fire.
	if a := h.scrapeAfter(0); a.State != "ok" {
		t.Fatalf("fired with no window delta: %+v", a)
	}
	// Window goes entirely bad: bad_frac=1, burn = 1/(1-0.9) = 10.
	for i := 0; i < 10; i++ {
		hist.Observe(0.5)
	}
	a := h.scrapeAfter(5 * time.Second)
	if a.State != "firing" {
		t.Fatalf("all-bad window did not fire: %+v", a)
	}
	if a.FastBurn < 9.9 || a.FastBurn > 10.1 {
		t.Fatalf("fast burn = %v, want ~10", a.FastBurn)
	}

	// A healthy window clears it.
	var last Alert
	for i := 0; i < 8; i++ {
		for j := 0; j < 10; j++ {
			hist.Observe(0.05)
		}
		last = h.scrapeAfter(10 * time.Second)
	}
	if last.State != "ok" {
		t.Fatalf("alert did not clear on a healthy window: %+v", last)
	}
}

// A ratio rule divides two counter deltas.
func TestSLORatioBurn(t *testing.T) {
	reg := obs.NewRegistry()
	bad := obs.NewCounter(reg, "dead_total", "dead-lettered")
	all := obs.NewCounter(reg, "pushed_total", "pushed")
	all.Add(100)
	h := newSLOHarness(t, reg, Rule{
		Name: "dead", Kind: "ratio", Metric: "dead_total", Denom: "pushed_total",
		Threshold:  0.01, // ≤1% may dead-letter
		FastWindow: 10 * time.Second, SlowWindow: 30 * time.Second,
		FastBurn: 1, SlowBurn: 1,
	})
	if a := h.scrapeAfter(0); a.State != "ok" {
		t.Fatalf("fired with no delta: %+v", a)
	}
	bad.Add(50)
	all.Add(100)
	if a := h.scrapeAfter(5 * time.Second); a.State != "firing" {
		t.Fatalf("50%% dead-letter ratio did not fire: %+v", a)
	}
}
