// Package agg is the fleet-wide observability aggregator behind
// cmd/obsd: it scrapes every node's /metrics.json and /debug/trace on
// an interval, folds the scrapes into cluster rollups (sum/max and
// quantile-mergeable histograms, with per-node and per-role
// breakdowns), assembles cross-process traces out of the exported
// span streams, and evaluates declarative SLO rules with fast/slow
// burn-rate windows.
//
// The aggregator is pull-based for long-lived nodes (capd, capring,
// consentd) and push-based for ephemeral ones: fleetd and crawl
// workers POST their span export to /ingest/spans right before they
// exit, because a scrape cadence would miss a process that lives for
// seconds. Both paths feed the same trace table, which dedups by
// canonical span line — the replica layer intentionally produces
// byte-identical ingest spans on every node of a placement, and the
// dedup collapses them back into one logical span.
package agg

import (
	"fmt"
	"io"
	"net/http"
	"sort"
	"sync"
	"time"

	"repro/internal/obs"
)

// Target names one scrape endpoint: a node identity, its role (the
// tracer Service it exports spans under), and the base URL of its obs
// debug surface.
type Target struct {
	Name string `json:"name"`
	Role string `json:"role"`
	URL  string `json:"url"`
}

// Config parameterizes the aggregator.
type Config struct {
	// Targets are the nodes to scrape.
	Targets []Target
	// Interval paces Run's scrape loop (default 5s).
	Interval time.Duration
	// Clock supplies scrape timestamps — injectable so SLO windows and
	// trace watermarks are testable without sleeping (default time.Now).
	Clock func() time.Time
	// HTTP overrides the scrape client (default 10s timeout).
	HTTP *http.Client
	// Rules are the SLO rules evaluated after every scrape.
	Rules []Rule
	// TraceCap bounds retained assembled traces; beyond it the
	// stalest traces (by watermark) are evicted (default 4096).
	TraceCap int
	// TraceTTL evicts a trace that saw no new span for this long —
	// the watermark that bounds how long orphaned spans wait for a
	// parent that will never arrive (default 10 minutes).
	TraceTTL time.Duration
	// Registry, when non-nil, receives the aggregator's own metrics
	// (scrape counts, span ingest counts, trace table state).
	Registry *obs.Registry
}

func (c Config) withDefaults() Config {
	if c.Interval <= 0 {
		c.Interval = 5 * time.Second
	}
	if c.Clock == nil {
		c.Clock = time.Now
	}
	if c.HTTP == nil {
		c.HTTP = &http.Client{Timeout: 10 * time.Second}
	}
	if c.TraceCap <= 0 {
		c.TraceCap = 4096
	}
	if c.TraceTTL <= 0 {
		c.TraceTTL = 10 * time.Minute
	}
	return c
}

// nodeScrape is the latest state of one target.
type nodeScrape struct {
	target   Target
	families []obs.ExpositionFamily
	up       bool
	lastErr  string
	lastAt   time.Time
}

// Aggregator is the obsd core. Safe for concurrent use: the scrape
// loop and the HTTP surface share it.
type Aggregator struct {
	cfg    Config
	mu     sync.Mutex
	nodes  map[string]*nodeScrape // by target name
	order  []string               // target names, config order
	traces *traceTable
	slo    *sloState

	scrapes       *obs.CounterVec
	scrapeFails   *obs.CounterVec
	spansIngested *obs.Counter
	spansDeduped  *obs.Counter
}

// New builds an aggregator.
func New(cfg Config) (*Aggregator, error) {
	cfg = cfg.withDefaults()
	a := &Aggregator{
		cfg:    cfg,
		nodes:  make(map[string]*nodeScrape, len(cfg.Targets)),
		traces: newTraceTable(cfg.TraceCap, cfg.TraceTTL),
		slo:    newSLOState(cfg.Rules),
	}
	for _, t := range cfg.Targets {
		if t.Name == "" || t.URL == "" {
			return nil, fmt.Errorf("agg: target needs name and url, got %+v", t)
		}
		if _, dup := a.nodes[t.Name]; dup {
			return nil, fmt.Errorf("agg: duplicate target name %q", t.Name)
		}
		a.nodes[t.Name] = &nodeScrape{target: t}
		a.order = append(a.order, t.Name)
	}
	reg := cfg.Registry
	a.scrapes = obs.NewCounterVec(reg, "obsd_scrapes_total", "Successful scrapes per node.", "node")
	a.scrapeFails = obs.NewCounterVec(reg, "obsd_scrape_failures_total", "Failed scrapes per node.", "node")
	a.spansIngested = obs.NewCounter(reg, "obsd_spans_ingested_total", "Span lines accepted into the trace table.")
	a.spansDeduped = obs.NewCounter(reg, "obsd_spans_deduped_total", "Span lines dropped as exact duplicates (re-scrapes and replica fan-out).")
	if reg != nil {
		obs.NewGaugeFunc(reg, "obsd_traces", "Assembled traces currently retained.",
			func() float64 { return float64(a.traces.len()) })
		obs.NewGaugeFunc(reg, "obsd_traces_evicted_total", "Traces evicted by cap or TTL watermark.",
			func() float64 { return float64(a.traces.evicted()) })
		obs.NewGaugeFunc(reg, "obsd_alerts_firing", "SLO rules currently firing.",
			func() float64 { return float64(a.slo.firing()) })
	}
	return a, nil
}

// ScrapeOnce scrapes every target once and re-evaluates the SLO
// rules — the unit the Run loop repeats, exported so tests drive the
// aggregator without a ticker.
func (a *Aggregator) ScrapeOnce() {
	now := a.cfg.Clock()
	for _, t := range a.cfg.Targets {
		fams, ferr := a.scrapeMetrics(t)
		serr := a.scrapeSpans(t, now)
		a.mu.Lock()
		ns := a.nodes[t.Name]
		ns.lastAt = now
		if ferr == nil && serr == nil {
			ns.families = fams
			ns.up = true
			ns.lastErr = ""
			a.mu.Unlock()
			a.scrapes.With(t.Name).Inc()
			continue
		}
		ns.up = false
		if ferr != nil {
			ns.lastErr = ferr.Error()
		} else {
			ns.lastErr = serr.Error()
		}
		a.mu.Unlock()
		a.scrapeFails.With(t.Name).Inc()
	}
	a.traces.sweep(now)
	a.slo.observe(now, a.Rollup())
}

// Run scrapes on the configured interval until stop is closed.
func (a *Aggregator) Run(stop <-chan struct{}) {
	ticker := time.NewTicker(a.cfg.Interval)
	defer ticker.Stop()
	a.ScrapeOnce()
	for {
		select {
		case <-stop:
			return
		case <-ticker.C:
			a.ScrapeOnce()
		}
	}
}

func (a *Aggregator) scrapeMetrics(t Target) ([]obs.ExpositionFamily, error) {
	resp, err := a.cfg.HTTP.Get(t.URL + "/metrics.json")
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		io.Copy(io.Discard, resp.Body) //nolint:errcheck
		return nil, fmt.Errorf("agg: %s /metrics.json: %s", t.Name, resp.Status)
	}
	return obs.ParseJSONExposition(resp.Body)
}

func (a *Aggregator) scrapeSpans(t Target, now time.Time) error {
	resp, err := a.cfg.HTTP.Get(t.URL + "/debug/trace")
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		io.Copy(io.Discard, resp.Body) //nolint:errcheck
		return fmt.Errorf("agg: %s /debug/trace: %s", t.Name, resp.Status)
	}
	return a.ingestSpans(resp.Body, now)
}

// IngestSpans accepts an NDJSON span export (the POST /ingest/spans
// body — how ephemeral fleetd and worker processes deliver their spans
// before exiting).
func (a *Aggregator) IngestSpans(r io.Reader) error {
	return a.ingestSpans(r, a.cfg.Clock())
}

func (a *Aggregator) ingestSpans(r io.Reader, now time.Time) error {
	added, deduped, err := a.traces.ingest(r, now)
	a.spansIngested.Add(int64(added))
	a.spansDeduped.Add(int64(deduped))
	return err
}

// NodeStatus is one target's scrape state in /cluster/healthz.
type NodeStatus struct {
	Name      string  `json:"name"`
	Role      string  `json:"role"`
	Up        bool    `json:"up"`
	LastError string  `json:"last_error,omitempty"`
	AgeSecs   float64 `json:"scrape_age_seconds"`
}

// Health is the /cluster/healthz document.
type Health struct {
	Status       string       `json:"status"` // "ok" or "degraded"
	Nodes        []NodeStatus `json:"nodes"`
	Traces       int          `json:"traces"`
	AlertsFiring int          `json:"alerts_firing"`
}

// Health snapshots the aggregator.
func (a *Aggregator) Health() Health {
	now := a.cfg.Clock()
	h := Health{Status: "ok", Traces: a.traces.len(), AlertsFiring: a.slo.firing()}
	a.mu.Lock()
	for _, name := range a.order {
		ns := a.nodes[name]
		st := NodeStatus{Name: ns.target.Name, Role: ns.target.Role, Up: ns.up, LastError: ns.lastErr}
		if !ns.lastAt.IsZero() {
			st.AgeSecs = now.Sub(ns.lastAt).Seconds()
		}
		if !ns.up {
			h.Status = "degraded"
		}
		h.Nodes = append(h.Nodes, st)
	}
	a.mu.Unlock()
	if h.AlertsFiring > 0 {
		h.Status = "degraded"
	}
	return h
}

// snapshotNodes copies the latest per-node scrape results in config
// order.
func (a *Aggregator) snapshotNodes() []*nodeScrape {
	a.mu.Lock()
	defer a.mu.Unlock()
	out := make([]*nodeScrape, 0, len(a.order))
	for _, name := range a.order {
		ns := a.nodes[name]
		out = append(out, &nodeScrape{target: ns.target, families: ns.families, up: ns.up})
	}
	return out
}

// sortedKeys is the deterministic map-iteration helper used across
// the rollup and trace renderers.
func sortedKeys[M ~map[string]V, V any](m M) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}
