package agg

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"strings"
	"sync"
	"time"

	"repro/internal/obs"
)

// Cross-process trace assembly. Span lines arrive from two directions
// — /debug/trace scrapes of long-lived nodes and /ingest/spans pushes
// from ephemeral ones — in no particular order: a capd's ingest span
// is usually scraped before the worker that caused it pushes the
// parent work span. The table therefore never demands a parent at
// ingest time; every span files under its trace id immediately, and
// orphan-ness is a property computed at read time (a span whose psid
// matches no sid in the trace *yet*). The TTL watermark bounds how
// long a trace waits for stragglers: a trace that saw no new span for
// TraceTTL is evicted, and with it any orphans whose parents never
// arrived.
//
// Dedup is by canonical line bytes. Re-scrapes re-deliver every
// retained span, and the replica layer fans identical ingest spans
// out to every node of a placement — both collapse to one span here,
// which is what makes the assembled tree byte-identical across worker
// counts and replica layouts.

// traceEntry is one assembled trace.
type traceEntry struct {
	tid   string
	lines map[string]obs.SpanRecord // canonical line → decoded span
	last  time.Time                 // watermark: last new span
}

type traceTable struct {
	mu      sync.Mutex
	cap     int
	ttl     time.Duration
	byTID   map[string]*traceEntry
	evictN  int64
	badLine int64
}

func newTraceTable(cap int, ttl time.Duration) *traceTable {
	return &traceTable{cap: cap, ttl: ttl, byTID: make(map[string]*traceEntry)}
}

// ingest reads an NDJSON span export, filing each line under its
// trace. Lines without a tid (spans recorded by a tracer that never
// saw a context — nothing to stitch) are skipped, not errors.
func (t *traceTable) ingest(r io.Reader, now time.Time) (added, deduped int, err error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 1<<20)
	t.mu.Lock()
	defer t.mu.Unlock()
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if line == "" {
			continue
		}
		var rec obs.SpanRecord
		if jerr := json.Unmarshal([]byte(line), &rec); jerr != nil {
			t.badLine++
			return added, deduped, fmt.Errorf("agg: bad span line %q: %w", line, jerr)
		}
		if rec.TID == "" {
			continue
		}
		e := t.byTID[rec.TID]
		if e == nil {
			e = &traceEntry{tid: rec.TID, lines: make(map[string]obs.SpanRecord)}
			t.byTID[rec.TID] = e
		}
		if _, dup := e.lines[line]; dup {
			deduped++
			continue
		}
		e.lines[line] = rec
		e.last = now
		added++
	}
	return added, deduped, sc.Err()
}

// sweep evicts traces beyond the TTL watermark, then — if still over
// cap — the stalest survivors.
func (t *traceTable) sweep(now time.Time) {
	t.mu.Lock()
	defer t.mu.Unlock()
	for tid, e := range t.byTID {
		if now.Sub(e.last) > t.ttl {
			delete(t.byTID, tid)
			t.evictN++
		}
	}
	if len(t.byTID) <= t.cap {
		return
	}
	type aged struct {
		tid  string
		last time.Time
	}
	all := make([]aged, 0, len(t.byTID))
	for tid, e := range t.byTID {
		all = append(all, aged{tid, e.last})
	}
	sort.Slice(all, func(i, j int) bool {
		if !all[i].last.Equal(all[j].last) {
			return all[i].last.Before(all[j].last)
		}
		return all[i].tid < all[j].tid
	})
	for _, v := range all[:len(t.byTID)-t.cap] {
		delete(t.byTID, v.tid)
		t.evictN++
	}
}

func (t *traceTable) len() int {
	t.mu.Lock()
	defer t.mu.Unlock()
	return len(t.byTID)
}

func (t *traceTable) evicted() int64 {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.evictN
}

// TraceSummary is one row of the /cluster/traces listing.
type TraceSummary struct {
	TID     string   `json:"tid"`
	Spans   int      `json:"spans"`
	Svcs    []string `json:"svcs"` // distinct services, sorted
	Orphans int      `json:"orphans"`
	Root    string   `json:"root,omitempty"` // root span id, when assembled
}

// summaries lists every retained trace, sorted by tid.
func (t *traceTable) summaries() []TraceSummary {
	t.mu.Lock()
	defer t.mu.Unlock()
	out := make([]TraceSummary, 0, len(t.byTID))
	for _, tid := range sortedKeys(t.byTID) {
		out = append(out, t.byTID[tid].summary())
	}
	return out
}

func (t *traceTable) get(tid string) (*traceEntry, bool) {
	t.mu.Lock()
	defer t.mu.Unlock()
	e, ok := t.byTID[tid]
	if !ok {
		return nil, false
	}
	// Shallow-copy under the lock; lines is append-only per trace so
	// the copy is a consistent snapshot.
	cp := &traceEntry{tid: e.tid, lines: make(map[string]obs.SpanRecord, len(e.lines)), last: e.last}
	for l, r := range e.lines {
		cp.lines[l] = r
	}
	return cp, true
}

func (e *traceEntry) summary() TraceSummary {
	s := TraceSummary{TID: e.tid, Spans: len(e.lines)}
	svcs := map[string]bool{}
	sids := map[string]bool{}
	for _, r := range e.lines {
		svcs[r.Svc] = true
		sids[r.SID] = true
	}
	s.Svcs = sortedKeys(svcs)
	for _, l := range sortedKeys(e.lines) {
		r := e.lines[l]
		switch {
		case r.PSID == "":
			if s.Root == "" {
				s.Root = r.ID
			}
		case !sids[r.PSID]:
			s.Orphans++
		}
	}
	return s
}

// WriteTrace renders one assembled trace. The body has two parts:
//
//	trace <tid> spans=<n> svcs=<a,b,c> orphans=<k>
//	<indented tree, children sorted by encoded line>
//
//	<the trace's span lines as sorted NDJSON>
//
// Both parts are deterministic functions of the span multiset, so two
// runs that did the same work under the same clocks render
// byte-identical bodies at any worker count.
func (e *traceEntry) WriteTrace(w io.Writer) error {
	bw := bufio.NewWriter(w)
	sum := e.summary()
	fmt.Fprintf(bw, "trace %s spans=%d svcs=%s orphans=%d\n",
		sum.TID, sum.Spans, strings.Join(sum.Svcs, ","), sum.Orphans)

	// Tree: group lines by parent sid; roots and orphans surface at
	// depth zero (orphans marked), children render under their parent
	// in canonical line order.
	lines := sortedKeys(e.lines)
	sids := map[string]bool{}
	for _, r := range e.lines {
		sids[r.SID] = true
	}
	children := map[string][]string{}
	var roots, orphans []string
	for _, l := range lines {
		r := e.lines[l]
		switch {
		case r.PSID == "":
			roots = append(roots, l)
		case !sids[r.PSID]:
			orphans = append(orphans, l)
		default:
			children[r.PSID] = append(children[r.PSID], l)
		}
	}
	visited := map[string]bool{} // guards against pathological psid cycles
	var render func(line string, depth int)
	render = func(line string, depth int) {
		if visited[line] {
			return
		}
		visited[line] = true
		r := e.lines[line]
		fmt.Fprintf(bw, "%s- [%s] %s dur_ns=%d\n", strings.Repeat("  ", depth), r.Svc, r.ID, r.DurNS)
		for _, c := range children[r.SID] {
			render(c, depth+1)
		}
	}
	for _, l := range roots {
		render(l, 0)
	}
	for _, l := range orphans {
		r := e.lines[l]
		fmt.Fprintf(bw, "- [%s] %s dur_ns=%d (orphan psid=%s)\n", r.Svc, r.ID, r.DurNS, r.PSID)
		for _, c := range children[r.SID] {
			render(c, 1)
		}
	}

	bw.WriteByte('\n') //nolint:errcheck
	for _, l := range lines {
		bw.WriteString(l)  //nolint:errcheck
		bw.WriteByte('\n') //nolint:errcheck
	}
	return bw.Flush()
}

// Traces lists the retained trace summaries.
func (a *Aggregator) Traces() []TraceSummary { return a.traces.summaries() }

// WriteTrace renders the trace by id; false when unknown.
func (a *Aggregator) WriteTrace(w io.Writer, tid string) (bool, error) {
	e, ok := a.traces.get(tid)
	if !ok {
		return false, nil
	}
	return true, e.WriteTrace(w)
}
