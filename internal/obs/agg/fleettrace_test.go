package agg_test

import (
	"context"
	"errors"
	"fmt"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"repro/internal/capstore"
	"repro/internal/fleet"
	"repro/internal/obs"
	"repro/internal/obs/agg"
	"repro/internal/socialfeed"
	"repro/internal/webworld"
)

// The acceptance test for cross-process propagation: a real in-process
// fleet — coordinator, workers, and a capd ingester behind actual HTTP
// servers — traced under fixed clocks, with every process's NDJSON
// export fed into an aggregator. One lease's trace must stitch spans
// from fleetd, worker, and capd with no orphans, and the full rendered
// trace set must be byte-identical between a 1-worker and a 3-worker
// run: which worker wins a lease is a scheduling accident the traces
// may not record.

const (
	ftSeed    = 11
	ftDomains = 300
	ftShares  = 40
)

func ftClock() func() time.Time {
	at := time.Date(2026, 1, 1, 0, 0, 0, 0, time.UTC)
	return func() time.Time { return at }
}

func runTracedFleet(t *testing.T, workers int) *agg.Aggregator {
	t.Helper()
	store, err := capstore.Create(t.TempDir(), 2)
	if err != nil {
		t.Fatal(err)
	}
	capdTracer := obs.NewTracer(obs.TracerConfig{Service: "capd", Clock: ftClock()})
	ing, err := capstore.NewIngester(store, capstore.IngestConfig{Tracer: capdTracer})
	if err != nil {
		t.Fatal(err)
	}
	capdSrv := httptest.NewServer(ing)
	defer capdSrv.Close()

	world := webworld.New(webworld.Config{Seed: ftSeed, Domains: ftDomains})
	feed := socialfeed.New(world, socialfeed.Config{Seed: ftSeed, SharesPerDay: ftShares})
	items := fleet.WorkFromFeed(feed, 0, 0)
	capCl := capstore.NewClient(capdSrv.URL)
	fleetdTracer := obs.NewTracer(obs.TracerConfig{Service: "fleetd", Clock: ftClock()})
	co, err := fleet.NewCoordinator(items, fleet.CoordinatorConfig{
		LeaseSize: 8,
		LeaseTTL:  10 * time.Second,
		IdleRetry: 10 * time.Millisecond,
		Skip: func(at, n int64) error {
			_, err := capCl.RecordBatchAt(at, n, nil)
			return err
		},
		Tracer: fleetdTracer,
	})
	if err != nil {
		t.Fatal(err)
	}
	coordSrv := httptest.NewServer(fleet.NewHandler(co, fleet.RunConfig{
		WorldSeed:     ftSeed,
		WorldDomains:  ftDomains,
		CrawlSeed:     ftSeed,
		RetryAttempts: 2,
		PolitenessMS:  1,
		IngestURL:     capdSrv.URL,
	}, fleet.ServerConfig{}))
	defer coordSrv.Close()

	rc, err := fleet.NewClient(coordSrv.URL).Config()
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()
	workerTracers := make([]*obs.Tracer, workers)
	done := make(chan error, workers)
	for i := 0; i < workers; i++ {
		tr := obs.NewTracer(obs.TracerConfig{Service: "worker", Clock: ftClock()})
		workerTracers[i] = tr
		w, err := fleet.NewWorker(fleet.WorkerConfig{
			ID:          fmt.Sprintf("worker-%d", i),
			Coordinator: fleet.NewClient(coordSrv.URL),
			Push:        fleet.IngestPush(capCl),
			World:       webworld.New(webworld.Config{Seed: ftSeed, Domains: ftDomains}),
			Run:         rc,
			Tracer:      tr,
		})
		if err != nil {
			t.Fatal(err)
		}
		go func() { done <- w.Run(ctx) }()
	}
	select {
	case <-co.Done():
	case <-ctx.Done():
		t.Fatalf("fleet did not drain: %+v", co.Status())
	}
	cancel() // release idle workers
	for i := 0; i < workers; i++ {
		if err := <-done; err != nil && !errors.Is(err, context.Canceled) {
			t.Errorf("worker: %v", err)
		}
	}
	if err := store.Close(); err != nil {
		t.Fatal(err)
	}

	// Assemble exactly as obsd would: capd scraped, ephemeral processes
	// pushed. Capd-first mimics the usual child-before-parent arrival.
	a, err := agg.New(agg.Config{Clock: ftClock()})
	if err != nil {
		t.Fatal(err)
	}
	ingest := func(tr *obs.Tracer) {
		var buf strings.Builder
		if err := tr.WriteNDJSON(&buf); err != nil {
			t.Fatal(err)
		}
		if err := a.IngestSpans(strings.NewReader(buf.String())); err != nil {
			t.Fatal(err)
		}
	}
	ingest(capdTracer)
	for _, tr := range workerTracers {
		ingest(tr)
	}
	ingest(fleetdTracer)
	return a
}

func renderAllTraces(t *testing.T, a *agg.Aggregator) string {
	t.Helper()
	var b strings.Builder
	for _, s := range a.Traces() {
		ok, err := a.WriteTrace(&b, s.TID)
		if !ok || err != nil {
			t.Fatalf("render %s: ok=%v err=%v", s.TID, ok, err)
		}
	}
	return b.String()
}

func TestFleetTraceByteIdentity(t *testing.T) {
	a1 := runTracedFleet(t, 1)
	sums := a1.Traces()
	if len(sums) == 0 {
		t.Fatal("fleet run produced no traces")
	}
	stitched := 0
	for _, s := range sums {
		if s.Orphans != 0 {
			t.Errorf("trace %s has %d orphans", s.TID, s.Orphans)
		}
		svcs := strings.Join(s.Svcs, ",")
		if strings.Contains(svcs, "fleetd") && strings.Contains(svcs, "worker") && strings.Contains(svcs, "capd") {
			stitched++
		}
	}
	if stitched == 0 {
		t.Fatalf("no trace stitched across fleetd, worker, and capd: %+v", sums)
	}

	r1 := renderAllTraces(t, a1)
	a3 := runTracedFleet(t, 3)
	r3 := renderAllTraces(t, a3)
	if r1 != r3 {
		l1 := strings.Split(r1, "\n")
		l3 := strings.Split(r3, "\n")
		for i := 0; i < len(l1) && i < len(l3); i++ {
			if l1[i] != l3[i] {
				t.Fatalf("trace render diverges at line %d:\n 1 worker: %s\n 3 workers: %s", i+1, l1[i], l3[i])
			}
		}
		t.Fatalf("trace renders differ in length: %d vs %d lines", len(l1), len(l3))
	}
}
