package agg

import (
	"strings"
	"testing"
	"time"

	"repro/internal/obs"
)

func fixedAt() time.Time { return time.Date(2026, 1, 1, 0, 0, 0, 0, time.UTC) }

func ingestTracer(t *testing.T, a *Aggregator, tr *obs.Tracer) {
	t.Helper()
	var buf strings.Builder
	if err := tr.WriteNDJSON(&buf); err != nil {
		t.Fatal(err)
	}
	if err := a.IngestSpans(strings.NewReader(buf.String())); err != nil {
		t.Fatal(err)
	}
}

// Spans arrive child-first (the capd scrape usually lands before the
// worker's push): the child is an orphan until the parent's export
// shows up, then the trace stitches. Re-ingesting an export — the
// normal re-scrape case — must dedup, not double the trace.
func TestTraceAssemblyOutOfOrder(t *testing.T) {
	a, err := New(Config{Clock: fixedAt})
	if err != nil {
		t.Fatal(err)
	}
	clock := func() time.Time { return fixedAt() }
	fleetd := obs.NewTracer(obs.TracerConfig{Service: "fleetd", Clock: clock})
	capd := obs.NewTracer(obs.TracerConfig{Service: "capd", Clock: clock})

	root := fleetd.Start("lease", obs.A("first", "0"), obs.A("attempt", "1"))
	child := capd.StartRemote("ingest", root.Context(), obs.A("at", "0"), obs.A("n", "8"))
	child.End()
	tid := root.Context().TraceID

	// Child first: one orphan.
	ingestTracer(t, a, capd)
	sums := a.Traces()
	if len(sums) != 1 || sums[0].TID != tid {
		t.Fatalf("traces = %+v, want one trace %s", sums, tid)
	}
	if sums[0].Orphans != 1 || sums[0].Root != "" {
		t.Fatalf("parentless child should read as orphan: %+v", sums[0])
	}
	var buf strings.Builder
	if ok, err := a.WriteTrace(&buf, tid); !ok || err != nil {
		t.Fatalf("WriteTrace: ok=%v err=%v", ok, err)
	}
	if !strings.Contains(buf.String(), "(orphan psid=") {
		t.Fatalf("orphan not flagged in render:\n%s", buf.String())
	}

	// Parent arrives: orphan resolves, tree assembles.
	root.End()
	ingestTracer(t, a, fleetd)
	sums = a.Traces()
	if sums[0].Orphans != 0 || sums[0].Spans != 2 {
		t.Fatalf("trace did not stitch: %+v", sums[0])
	}
	if want := "lease[attempt=1;first=0]"; sums[0].Root == "" || !strings.Contains(sums[0].Root, "lease") {
		t.Fatalf("root = %q, want the lease span (structural id like %q)", sums[0].Root, want)
	}
	buf.Reset()
	if _, err := a.WriteTrace(&buf, tid); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "svcs=capd,fleetd") || !strings.Contains(out, "orphans=0") || strings.Contains(out, "(orphan") {
		t.Fatalf("stitched render wrong:\n%s", out)
	}
	// The child renders indented under its parent.
	if !strings.Contains(out, "\n  - [capd] ingest") {
		t.Fatalf("child not nested under parent:\n%s", out)
	}

	// Re-scrape: identical lines dedup to the same trace.
	ingestTracer(t, a, fleetd)
	ingestTracer(t, a, capd)
	if sums = a.Traces(); sums[0].Spans != 2 {
		t.Fatalf("re-ingest doubled the trace: %+v", sums[0])
	}
}

// Spans exported without a trace id (a tracer that never saw a
// context) are skipped; a malformed line is an error.
func TestTraceIngestSkipsAndRejects(t *testing.T) {
	a, err := New(Config{Clock: fixedAt})
	if err != nil {
		t.Fatal(err)
	}
	if err := a.IngestSpans(strings.NewReader("\n\n")); err != nil {
		t.Fatalf("blank lines: %v", err)
	}
	if err := a.IngestSpans(strings.NewReader(`{"name":"x","id":"x[]","svc":"capd"}` + "\n")); err != nil {
		t.Fatalf("tid-less span line: %v", err)
	}
	if len(a.Traces()) != 0 {
		t.Fatalf("tid-less span created a trace: %+v", a.Traces())
	}
	if err := a.IngestSpans(strings.NewReader("{broken\n")); err == nil {
		t.Fatal("malformed line accepted")
	}
}

// TTL watermark and cap eviction: a trace that stops receiving spans
// ages out, and over cap the stalest traces go first.
func TestTraceEviction(t *testing.T) {
	now := fixedAt()
	a, err := New(Config{
		Clock:    func() time.Time { return now },
		TraceCap: 2,
		TraceTTL: time.Minute,
	})
	if err != nil {
		t.Fatal(err)
	}
	clock := fixedAt
	mkTrace := func(i string) string {
		tr := obs.NewTracer(obs.TracerConfig{Service: "fleetd", Clock: clock})
		sp := tr.Start("lease", obs.A("first", i), obs.A("attempt", "1"))
		tid := sp.Context().TraceID
		sp.End()
		ingestTracer(t, a, tr)
		return tid
	}

	tidA := mkTrace("0")
	now = now.Add(10 * time.Second)
	tidB := mkTrace("16")
	now = now.Add(10 * time.Second)
	tidC := mkTrace("32")

	a.ScrapeOnce() // no targets: just sweeps and re-evaluates
	tids := map[string]bool{}
	for _, s := range a.Traces() {
		tids[s.TID] = true
	}
	if len(tids) != 2 || tids[tidA] || !tids[tidB] || !tids[tidC] {
		t.Fatalf("cap eviction kept %v; want stalest (%s) gone", tids, tidA)
	}

	now = now.Add(2 * time.Minute) // beyond the TTL watermark
	a.ScrapeOnce()
	if got := a.Traces(); len(got) != 0 {
		t.Fatalf("TTL sweep left %+v", got)
	}
	if h := a.Health(); h.Traces != 0 {
		t.Fatalf("health still counts traces: %+v", h)
	}
}
