package agg

import (
	"encoding/json"
	"math"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"repro/internal/obs"
)

// fakeNode serves an obs debug surface for one synthetic registry —
// what a capd/capring/consentd node exposes under -metrics.
func fakeNode(t *testing.T, reg *obs.Registry, tr *obs.Tracer) *httptest.Server {
	t.Helper()
	srv := httptest.NewServer(obs.Handler(reg, tr))
	t.Cleanup(srv.Close)
	return srv
}

func famByName(fams []RollupFamily, name string) (RollupFamily, bool) {
	for _, f := range fams {
		if f.Name == name {
			return f, true
		}
	}
	return RollupFamily{}, false
}

func childValue(t *testing.T, f RollupFamily, labels map[string]string) float64 {
	t.Helper()
	for _, m := range f.Metrics {
		if labelKey(m.Labels) == labelKey(labels) {
			if m.Value == nil {
				t.Fatalf("%s%v has no value", f.Name, labels)
			}
			return *m.Value
		}
	}
	t.Fatalf("%s has no child %v (have %+v)", f.Name, labels, f.Metrics)
	return 0
}

// Two nodes with disjoint counter-vec children, different gauge values,
// and histograms with different bucket bounds must fold into one
// coherent cluster rollup.
func TestScrapeRollup(t *testing.T) {
	regA := obs.NewRegistry()
	obs.NewCounterVec(regA, "ops_total", "ops", "op").With("read").Add(2)
	obs.NewGaugeFunc(regA, "queue_depth", "depth", func() float64 { return 5 })
	hA := obs.NewHistogram(regA, "lat_seconds", "latency", []float64{0.1, 1})
	hA.Observe(0.05)
	hA.Observe(2)

	regB := obs.NewRegistry()
	obs.NewCounterVec(regB, "ops_total", "ops", "op").With("write").Add(3)
	obs.NewGaugeFunc(regB, "queue_depth", "depth", func() float64 { return 7 })
	hB := obs.NewHistogram(regB, "lat_seconds", "latency", []float64{0.5})
	hB.Observe(0.3)

	srvA := fakeNode(t, regA, nil)
	srvB := fakeNode(t, regB, nil)
	a, err := New(Config{Targets: []Target{
		{Name: "a", Role: "capd", URL: srvA.URL},
		{Name: "b", Role: "capring", URL: srvB.URL},
	}})
	if err != nil {
		t.Fatal(err)
	}
	a.ScrapeOnce()

	fams := a.Rollup()
	ops, ok := famByName(fams, "cluster:ops_total")
	if !ok || len(ops.Metrics) != 2 {
		t.Fatalf("cluster:ops_total should keep both disjoint children: %+v", ops)
	}
	if got := childValue(t, ops, map[string]string{"op": "read"}); got != 2 {
		t.Errorf("cluster read ops = %v, want 2", got)
	}
	if got := childValue(t, ops, map[string]string{"op": "write"}); got != 3 {
		t.Errorf("cluster write ops = %v, want 3", got)
	}

	depth, _ := famByName(fams, "cluster:queue_depth")
	if got := childValue(t, depth, nil); got != 12 {
		t.Errorf("cluster queue depth = %v, want 12", got)
	}
	depthMax, ok := famByName(fams, "cluster:queue_depth:max")
	if !ok {
		t.Fatal("gauge rollup lost its :max companion")
	}
	if got := childValue(t, depthMax, nil); got != 7 {
		t.Errorf("cluster queue depth max = %v, want 7", got)
	}

	roleDepth, _ := famByName(fams, "role:queue_depth")
	if got := childValue(t, roleDepth, map[string]string{"role": "capring"}); got != 7 {
		t.Errorf("capring role depth = %v, want 7", got)
	}
	nodeOps, _ := famByName(fams, "node:ops_total")
	if got := childValue(t, nodeOps, map[string]string{"node": "a", "role": "capd", "op": "read"}); got != 2 {
		t.Errorf("node a ops = %v, want 2", got)
	}

	lat, ok := famByName(fams, "cluster:lat_seconds")
	if !ok || len(lat.Metrics) != 1 || lat.Metrics[0].Histogram == nil {
		t.Fatalf("cluster:lat_seconds did not merge: %+v", lat)
	}
	h := lat.Metrics[0].Histogram
	if h.Count != 3 {
		t.Errorf("merged count = %d, want 3", h.Count)
	}
	if len(h.Buckets) != 4 || !math.IsInf(h.Buckets[len(h.Buckets)-1].LE, 1) {
		t.Errorf("merged buckets should union {0.1,0.5,1,+Inf}: %+v", h.Buckets)
	}

	// The full rollup must render as a valid exposition.
	var buf strings.Builder
	if err := WritePrometheus(&buf, fams); err != nil {
		t.Fatal(err)
	}
	if err := obs.ValidateExposition(strings.NewReader(buf.String())); err != nil {
		t.Fatalf("rollup exposition invalid: %v", err)
	}

	if h := a.Health(); h.Status != "ok" || len(h.Nodes) != 2 {
		t.Fatalf("healthy cluster reports %+v", h)
	}
	srvB.Close()
	a.ScrapeOnce()
	h2 := a.Health()
	if h2.Status != "degraded" {
		t.Fatalf("down node did not degrade health: %+v", h2)
	}
	for _, n := range h2.Nodes {
		if n.Name == "b" && (n.Up || n.LastError == "") {
			t.Fatalf("down node b reported %+v", n)
		}
	}
}

func TestNewRejectsBadTargets(t *testing.T) {
	if _, err := New(Config{Targets: []Target{{Name: "", URL: "http://x"}}}); err == nil {
		t.Error("unnamed target accepted")
	}
	if _, err := New(Config{Targets: []Target{
		{Name: "a", URL: "http://x"},
		{Name: "a", URL: "http://y"},
	}}); err == nil {
		t.Error("duplicate target name accepted")
	}
}

// The HTTP surface end to end: valid exposition, trace listing after a
// push, 404/400/405 paths.
func TestHandlerEndpoints(t *testing.T) {
	reg := obs.NewRegistry()
	obs.NewCounter(reg, "beats_total", "beats").Inc()
	node := fakeNode(t, reg, nil)
	a, err := New(Config{Targets: []Target{{Name: "n1", Role: "capd", URL: node.URL}}})
	if err != nil {
		t.Fatal(err)
	}
	a.ScrapeOnce()
	srv := httptest.NewServer(Handler(a))
	defer srv.Close()

	resp, err := http.Get(srv.URL + "/cluster/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if err := obs.ValidateExposition(resp.Body); err != nil {
		t.Fatalf("/cluster/metrics invalid: %v", err)
	}

	// An ephemeral process pushes its spans, then the trace is listed.
	tr := obs.NewTracer(obs.TracerConfig{Service: "fleetd"})
	sp := tr.Start("lease", obs.A("first", "0"), obs.A("attempt", "1"))
	tid := sp.Context().TraceID
	sp.End()
	if err := obs.PushSpans(srv.Client(), srv.URL+"/ingest/spans", tr); err != nil {
		t.Fatal(err)
	}
	var listed []TraceSummary
	lresp, err := http.Get(srv.URL + "/cluster/traces")
	if err != nil {
		t.Fatal(err)
	}
	defer lresp.Body.Close()
	if err := json.NewDecoder(lresp.Body).Decode(&listed); err != nil {
		t.Fatal(err)
	}
	if len(listed) != 1 || listed[0].TID != tid {
		t.Fatalf("trace listing = %+v, want one trace %s", listed, tid)
	}
	tresp, err := http.Get(srv.URL + "/cluster/traces/" + tid)
	if err != nil {
		t.Fatal(err)
	}
	tresp.Body.Close()
	if tresp.StatusCode != http.StatusOK {
		t.Fatalf("known trace returned %d", tresp.StatusCode)
	}

	for _, tc := range []struct {
		method, path, body string
		want               int
	}{
		{"GET", "/cluster/traces/deadbeef", "", http.StatusNotFound},
		{"POST", "/ingest/spans", "{not json", http.StatusBadRequest},
		{"GET", "/ingest/spans", "", http.StatusMethodNotAllowed},
		{"GET", "/cluster/alerts", "", http.StatusOK},
		{"GET", "/cluster/healthz", "", http.StatusOK},
	} {
		req, err := http.NewRequest(tc.method, srv.URL+tc.path, strings.NewReader(tc.body))
		if err != nil {
			t.Fatal(err)
		}
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != tc.want {
			t.Errorf("%s %s = %d, want %d", tc.method, tc.path, resp.StatusCode, tc.want)
		}
	}
}

func TestParseRule(t *testing.T) {
	r, err := ParseRule("name=shed,kind=rate,metric=repl_ingest_shed_total,threshold=0.5,fast=10s,slow=1m,fastburn=2,slowburn=1")
	if err != nil {
		t.Fatal(err)
	}
	if r.Name != "shed" || r.Kind != "rate" || r.Metric != "repl_ingest_shed_total" ||
		r.Threshold != 0.5 || r.FastWindow != 10*time.Second || r.SlowWindow != time.Minute ||
		r.FastBurn != 2 || r.SlowBurn != 1 {
		t.Fatalf("parsed rule %+v", r)
	}
	if r.Quantile != 0.99 {
		t.Fatalf("quantile default = %v, want 0.99", r.Quantile)
	}

	for _, bad := range []string{
		"not-a-clause",
		"name=x,kind=bogus,metric=m,threshold=1",
		"name=x,kind=ratio,metric=m,threshold=0.1",         // ratio without denom
		"name=x,kind=rate,metric=m",                        // threshold missing
		"name=x,kind=rate,metric=m,threshold=1,fast=abc",   // bad duration
		"name=x,kind=rate,metric=m,threshold=1,mystery=1",  // unknown key
		"kind=rate,metric=m,threshold=1",                   // name missing
		"name=x,kind=latency,metric=m,threshold=0",         // non-positive threshold
	} {
		if _, err := ParseRule(bad); err == nil {
			t.Errorf("ParseRule(%q) accepted", bad)
		}
	}
}
