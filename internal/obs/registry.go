// Package obs is the reproduction's telemetry substrate: a metrics
// registry (atomic counters, gauges, and fixed-bucket histograms, with
// optional labels) exported in the Prometheus text format and as JSON,
// span-based pipeline tracing with injectable clocks, and an HTTP debug
// surface (/metrics, /debug/trace, net/http/pprof). It depends only on
// the standard library.
//
// Everything is nil-safe by construction: the registration helpers
// accept a nil *Registry and return nil handles, and every method on a
// nil handle is a no-op. A nil registry therefore IS the disabled
// ("no-op") recorder — instrumented code carries no feature flags, and
// the disabled path costs one nil check per observation.
package obs

import (
	"fmt"
	"sort"
	"strings"
	"sync"
)

// Kind classifies a metric family for exposition.
type Kind int

const (
	KindCounter Kind = iota
	KindGauge
	KindHistogram
)

func (k Kind) String() string {
	switch k {
	case KindCounter:
		return "counter"
	case KindGauge:
		return "gauge"
	default:
		return "histogram"
	}
}

// Registry holds metric families in registration order. Create one
// with NewRegistry; the zero value is not usable.
type Registry struct {
	mu       sync.Mutex
	families []*family
	byName   map[string]*family
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{byName: make(map[string]*family)}
}

// family is one named metric family with zero or more label names and
// one child per distinct label-value tuple.
type family struct {
	name       string
	help       string
	kind       Kind
	labelNames []string

	mu       sync.Mutex
	children map[string]*child
	order    []string // child keys in creation order; exposition sorts
}

// child is one sample series: exactly one of the value fields is set.
type child struct {
	labelValues []string
	counter     *Counter
	gauge       *Gauge
	fn          func() float64
	hist        *Histogram
}

// childKey joins label values with a separator that cannot appear in
// well-formed UTF-8 label values.
func childKey(values []string) string { return strings.Join(values, "\xff") }

// family returns the named family, creating it on first registration.
// Registering the same name with a different kind or label set is a
// programming error and panics.
func (r *Registry) family(name, help string, kind Kind, labelNames ...string) *family {
	r.mu.Lock()
	defer r.mu.Unlock()
	if f, ok := r.byName[name]; ok {
		if f.kind != kind || !equalStrings(f.labelNames, labelNames) {
			panic(fmt.Sprintf("obs: conflicting registration of metric %q", name))
		}
		return f
	}
	f := &family{
		name:       name,
		help:       help,
		kind:       kind,
		labelNames: labelNames,
		children:   make(map[string]*child),
	}
	r.byName[name] = f
	r.families = append(r.families, f)
	return f
}

func equalStrings(a, b []string) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// getChild returns the child for the label values, creating it if
// needed.
func (f *family) getChild(values []string) *child {
	if len(values) != len(f.labelNames) {
		panic(fmt.Sprintf("obs: metric %q wants %d label value(s), got %d",
			f.name, len(f.labelNames), len(values)))
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	k := childKey(values)
	c := f.children[k]
	if c == nil {
		c = &child{labelValues: values}
		f.children[k] = c
		f.order = append(f.order, k)
	}
	return c
}

// sortedChildren snapshots the family's children sorted by label
// values, for deterministic exposition.
func (f *family) sortedChildren() []*child {
	f.mu.Lock()
	keys := append([]string(nil), f.order...)
	sort.Strings(keys)
	out := make([]*child, len(keys))
	for i, k := range keys {
		out[i] = f.children[k]
	}
	f.mu.Unlock()
	return out
}

// snapshotFamilies copies the family list in registration order.
func (r *Registry) snapshotFamilies() []*family {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	fams := append([]*family(nil), r.families...)
	r.mu.Unlock()
	return fams
}

// NewCounter registers (or finds) an unlabeled counter. Returns nil
// when r is nil.
func NewCounter(r *Registry, name, help string) *Counter {
	if r == nil {
		return nil
	}
	c := r.family(name, help, KindCounter).getChild(nil)
	if c.counter == nil {
		c.counter = new(Counter)
	}
	return c.counter
}

// NewCounterFunc registers a counter whose value is read from fn at
// exposition time — for publishing counters a subsystem already keeps
// in its own atomics. No-op when r or fn is nil.
func NewCounterFunc(r *Registry, name, help string, fn func() int64) {
	if r == nil || fn == nil {
		return
	}
	r.family(name, help, KindCounter).getChild(nil).fn = func() float64 { return float64(fn()) }
}

// NewGauge registers (or finds) an unlabeled gauge. Returns nil when r
// is nil.
func NewGauge(r *Registry, name, help string) *Gauge {
	if r == nil {
		return nil
	}
	c := r.family(name, help, KindGauge).getChild(nil)
	if c.gauge == nil {
		c.gauge = new(Gauge)
	}
	return c.gauge
}

// NewGaugeFunc registers a gauge whose value is read from fn at
// exposition time. No-op when r or fn is nil.
func NewGaugeFunc(r *Registry, name, help string, fn func() float64) {
	if r == nil || fn == nil {
		return
	}
	r.family(name, help, KindGauge).getChild(nil).fn = fn
}

// NewHistogram registers (or finds) an unlabeled histogram with the
// given bucket upper bounds (see LatencyBuckets, ExponentialBuckets).
// Returns nil when r is nil.
func NewHistogram(r *Registry, name, help string, buckets []float64) *Histogram {
	if r == nil {
		return nil
	}
	c := r.family(name, help, KindHistogram).getChild(nil)
	if c.hist == nil {
		c.hist = newHistogram(buckets)
	}
	return c.hist
}

// CounterVec is a counter family with labels. Resolve children once
// with With and keep the returned *Counter for map-free hot paths.
type CounterVec struct{ f *family }

// NewCounterVec registers a labeled counter family. Returns nil when r
// is nil.
func NewCounterVec(r *Registry, name, help string, labelNames ...string) *CounterVec {
	if r == nil {
		return nil
	}
	return &CounterVec{f: r.family(name, help, KindCounter, labelNames...)}
}

// With returns the child counter for the label values, creating it on
// first use. Nil-safe: a nil vec returns a nil (no-op) counter.
func (v *CounterVec) With(values ...string) *Counter {
	if v == nil {
		return nil
	}
	c := v.f.getChild(values)
	v.f.mu.Lock()
	if c.counter == nil {
		c.counter = new(Counter)
	}
	v.f.mu.Unlock()
	return c.counter
}

// GaugeVec is a gauge family with labels.
type GaugeVec struct{ f *family }

// NewGaugeVec registers a labeled gauge family. Returns nil when r is
// nil.
func NewGaugeVec(r *Registry, name, help string, labelNames ...string) *GaugeVec {
	if r == nil {
		return nil
	}
	return &GaugeVec{f: r.family(name, help, KindGauge, labelNames...)}
}

// With returns the child gauge for the label values. Nil-safe.
func (v *GaugeVec) With(values ...string) *Gauge {
	if v == nil {
		return nil
	}
	c := v.f.getChild(values)
	v.f.mu.Lock()
	if c.gauge == nil {
		c.gauge = new(Gauge)
	}
	v.f.mu.Unlock()
	return c.gauge
}

// HistogramVec is a histogram family with labels; every child shares
// the family's bucket layout.
type HistogramVec struct {
	f       *family
	buckets []float64
}

// NewHistogramVec registers a labeled histogram family with the given
// bucket upper bounds. Returns nil when r is nil.
func NewHistogramVec(r *Registry, name, help string, buckets []float64, labelNames ...string) *HistogramVec {
	if r == nil {
		return nil
	}
	return &HistogramVec{f: r.family(name, help, KindHistogram, labelNames...), buckets: buckets}
}

// With returns the child histogram for the label values. Nil-safe.
func (v *HistogramVec) With(values ...string) *Histogram {
	if v == nil {
		return nil
	}
	c := v.f.getChild(values)
	v.f.mu.Lock()
	if c.hist == nil {
		c.hist = newHistogram(v.buckets)
	}
	v.f.mu.Unlock()
	return c.hist
}
