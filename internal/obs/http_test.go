package obs

import (
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
)

func TestHandlerEndpoints(t *testing.T) {
	reg := NewRegistry()
	NewCounter(reg, "h_ops_total", "ops").Add(3)
	NewHistogram(reg, "h_seconds", "lat", LatencyBuckets).Observe(0.001)
	tr := NewTracer(TracerConfig{Clock: fixedClock()})
	tr.Start("visit", A("u", "x")).End()
	tr.Start("query", A("domain", "d")).End()

	srv := httptest.NewServer(Handler(reg, tr))
	defer srv.Close()

	get := func(path string) (int, string) {
		t.Helper()
		resp, err := http.Get(srv.URL + path)
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		defer resp.Body.Close()
		body, _ := io.ReadAll(resp.Body)
		return resp.StatusCode, string(body)
	}

	code, body := get("/metrics")
	if code != http.StatusOK {
		t.Fatalf("/metrics = %d", code)
	}
	if err := ValidateExposition(strings.NewReader(body)); err != nil {
		t.Errorf("/metrics exposition invalid: %v\n%s", err, body)
	}
	if !strings.Contains(body, "h_ops_total 3") {
		t.Errorf("/metrics missing counter:\n%s", body)
	}

	code, body = get("/metrics.json")
	if code != http.StatusOK || !strings.Contains(body, `"h_ops_total"`) {
		t.Errorf("/metrics.json = %d:\n%s", code, body)
	}

	code, body = get("/debug/trace")
	if code != http.StatusOK || strings.Count(body, "\n") != 2 {
		t.Errorf("/debug/trace = %d:\n%s", code, body)
	}
	code, body = get("/debug/trace?name=query")
	if code != http.StatusOK || strings.Count(body, "\n") != 1 || !strings.Contains(body, `"query"`) {
		t.Errorf("/debug/trace?name=query = %d:\n%s", code, body)
	}

	if code, _ = get("/debug/pprof/"); code != http.StatusOK {
		t.Errorf("/debug/pprof/ = %d", code)
	}
	if code, _ = get("/debug/pprof/cmdline"); code != http.StatusOK {
		t.Errorf("/debug/pprof/cmdline = %d", code)
	}
}

func TestHandlerNilBackends(t *testing.T) {
	srv := httptest.NewServer(Handler(nil, nil))
	defer srv.Close()
	for _, path := range []string{"/metrics", "/metrics.json", "/debug/trace"} {
		resp, err := http.Get(srv.URL + path)
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Errorf("%s with nil backends = %d", path, resp.StatusCode)
		}
	}
}
