package obs

import (
	"bytes"
	"encoding/json"
	"math"
	"strings"
	"sync"
	"testing"
)

func TestCounterGaugeValues(t *testing.T) {
	reg := NewRegistry()
	c := NewCounter(reg, "test_ops_total", "ops")
	c.Inc()
	c.Add(4)
	if got := c.Value(); got != 5 {
		t.Errorf("counter = %d, want 5", got)
	}
	if again := NewCounter(reg, "test_ops_total", "ops"); again != c {
		t.Error("re-registering the same counter should return the same handle")
	}

	g := NewGauge(reg, "test_depth", "depth")
	g.Set(3)
	g.Add(-1.5)
	if got := g.Value(); got != 1.5 {
		t.Errorf("gauge = %v, want 1.5", got)
	}

	v := NewCounterVec(reg, "test_by_reason_total", "by reason", "reason")
	a := v.With("a")
	a.Inc()
	v.With("b").Add(2)
	if a != v.With("a") {
		t.Error("With should return a stable child")
	}
	if got := v.With("b").Value(); got != 2 {
		t.Errorf("child b = %d, want 2", got)
	}
}

func TestHistogramBuckets(t *testing.T) {
	reg := NewRegistry()
	h := NewHistogram(reg, "test_seconds", "latency", []float64{0.1, 1, 10})
	for _, v := range []float64{0.05, 0.1, 0.5, 2, 100} {
		h.Observe(v)
	}
	snap := h.Snapshot()
	if snap.Count != 5 {
		t.Errorf("count = %d, want 5", snap.Count)
	}
	if want := 0.05 + 0.1 + 0.5 + 2 + 100; math.Abs(snap.Sum-want) > 1e-9 {
		t.Errorf("sum = %v, want %v", snap.Sum, want)
	}
	// Cumulative: le=0.1 → 2 (0.05 and the boundary value 0.1),
	// le=1 → 3, le=10 → 4, +Inf → 5.
	wantCum := []int64{2, 3, 4, 5}
	wantLabel := []string{"0.1", "1", "10", "+Inf"}
	if len(snap.Buckets) != len(wantCum) {
		t.Fatalf("buckets = %d, want %d", len(snap.Buckets), len(wantCum))
	}
	for i, b := range snap.Buckets {
		if b.Count != wantCum[i] || b.Label != wantLabel[i] {
			t.Errorf("bucket %d = {%s %d}, want {%s %d}", i, b.Label, b.Count, wantLabel[i], wantCum[i])
		}
	}
}

func TestExponentialBuckets(t *testing.T) {
	got := ExponentialBuckets(1, 10, 4)
	want := []float64{1, 10, 100, 1000}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("buckets = %v, want %v", got, want)
		}
	}
}

// A nil registry is the no-op recorder: every constructor returns a
// nil handle and every method on it must be safe.
func TestNilSafety(t *testing.T) {
	var reg *Registry
	c := NewCounter(reg, "x_total", "")
	c.Inc()
	c.Add(3)
	if c.Value() != 0 {
		t.Error("nil counter should read 0")
	}
	g := NewGauge(reg, "x", "")
	g.Set(1)
	g.Add(1)
	if g.Value() != 0 {
		t.Error("nil gauge should read 0")
	}
	NewGaugeFunc(reg, "x2", "", func() float64 { return 1 })
	NewCounterFunc(reg, "x3_total", "", func() int64 { return 1 })
	h := NewHistogram(reg, "x_seconds", "", LatencyBuckets)
	h.Observe(1)
	if s := h.Snapshot(); s.Count != 0 || s.Buckets != nil {
		t.Error("nil histogram should snapshot empty")
	}
	v := NewCounterVec(reg, "x_by_total", "", "k")
	v.With("a").Inc()
	gv := NewGaugeVec(reg, "x_by", "", "k")
	gv.With("a").Set(1)
	var buf bytes.Buffer
	if err := reg.WritePrometheus(&buf); err != nil || buf.Len() != 0 {
		t.Errorf("nil registry exposition = %q, %v", buf.String(), err)
	}

	var tr *Tracer
	sp := tr.Start("visit", A("url", "u"))
	sp.Attr("k", "v")
	sp.Start("child").End()
	sp.End()
	if err := tr.WriteNDJSON(&buf); err != nil {
		t.Errorf("nil tracer export: %v", err)
	}
}

func TestConflictingRegistrationPanics(t *testing.T) {
	reg := NewRegistry()
	NewCounter(reg, "dup_total", "")
	defer func() {
		if recover() == nil {
			t.Error("registering dup_total as a gauge should panic")
		}
	}()
	NewGauge(reg, "dup_total", "")
}

func TestWritePrometheusFormat(t *testing.T) {
	reg := NewRegistry()
	NewCounter(reg, "app_ops_total", "Operations.").Add(7)
	NewGauge(reg, "app_depth", "Queue depth.").Set(2.5)
	NewCounterVec(reg, "app_errs_total", "Errors by kind.", "kind").With(`qu"ote`).Add(1)
	NewHistogram(reg, "app_seconds", "Latency.", []float64{0.5}).Observe(0.25)
	NewGaugeFunc(reg, "app_live", "Live view.", func() float64 { return 4 })

	var buf bytes.Buffer
	if err := reg.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	text := buf.String()
	for _, want := range []string{
		"# HELP app_ops_total Operations.\n",
		"# TYPE app_ops_total counter\n",
		"app_ops_total 7\n",
		"app_depth 2.5\n",
		`app_errs_total{kind="qu\"ote"} 1` + "\n",
		`app_seconds_bucket{le="0.5"} 1` + "\n",
		`app_seconds_bucket{le="+Inf"} 1` + "\n",
		"app_seconds_sum 0.25\n",
		"app_seconds_count 1\n",
		"app_live 4\n",
	} {
		if !strings.Contains(text, want) {
			t.Errorf("exposition missing %q in:\n%s", want, text)
		}
	}
	// Our own exposition must pass our own validator.
	if err := ValidateExposition(strings.NewReader(text)); err != nil {
		t.Errorf("self exposition invalid: %v", err)
	}
}

func TestWriteJSON(t *testing.T) {
	reg := NewRegistry()
	NewCounter(reg, "j_total", "help").Add(3)
	NewHistogram(reg, "j_seconds", "", []float64{1}).Observe(0.5)
	var buf bytes.Buffer
	if err := reg.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		Families []struct {
			Name    string `json:"name"`
			Kind    string `json:"kind"`
			Metrics []struct {
				Value     *float64 `json:"value"`
				Histogram *struct {
					Count int64 `json:"count"`
				} `json:"histogram"`
			} `json:"metrics"`
		} `json:"families"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("decoding JSON exposition: %v", err)
	}
	if len(doc.Families) != 2 || doc.Families[0].Name != "j_total" || doc.Families[0].Kind != "counter" {
		t.Fatalf("unexpected families: %+v", doc.Families)
	}
	if v := doc.Families[0].Metrics[0].Value; v == nil || *v != 3 {
		t.Errorf("counter value = %v, want 3", v)
	}
	if h := doc.Families[1].Metrics[0].Histogram; h == nil || h.Count != 1 {
		t.Errorf("histogram = %+v, want count 1", h)
	}
}

func TestConcurrentObservation(t *testing.T) {
	reg := NewRegistry()
	c := NewCounter(reg, "conc_total", "")
	h := NewHistogram(reg, "conc_seconds", "", LatencyBuckets)
	v := NewCounterVec(reg, "conc_by_total", "", "k")
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 1000; j++ {
				c.Inc()
				h.Observe(0.001)
				v.With("a").Inc()
			}
		}()
	}
	wg.Wait()
	if c.Value() != 8000 {
		t.Errorf("counter = %d, want 8000", c.Value())
	}
	if s := h.Snapshot(); s.Count != 8000 || math.Abs(s.Sum-8) > 1e-6 {
		t.Errorf("histogram count=%d sum=%v, want 8000/8", s.Count, s.Sum)
	}
	if v.With("a").Value() != 8000 {
		t.Errorf("vec = %d, want 8000", v.With("a").Value())
	}
}

func TestValidateExpositionRejects(t *testing.T) {
	bad := []string{
		"1bad_name 3\n",
		"ok_total\n",   // no value
		"ok_total x\n", // bad value
		`ok_total{k="unterminated 3` + "\n",
		`ok_total{9k="v"} 3` + "\n",     // bad label name
		"# TYPE ok_total frobnicator\n", // unknown type
		"# TYPE ok_total counter\n# TYPE ok_total counter\nok_total 1\n", // dup TYPE
	}
	for _, in := range bad {
		if err := ValidateExposition(strings.NewReader(in)); err == nil {
			t.Errorf("ValidateExposition(%q) should fail", in)
		}
	}
	good := "# HELP a_total h\n# TYPE a_total counter\na_total 1\n" +
		`a_bucket{le="+Inf"} 2` + "\n" + "b_thing 1.5e-7 1700000000\n\n"
	if err := ValidateExposition(strings.NewReader(good)); err != nil {
		t.Errorf("ValidateExposition(good) = %v", err)
	}
}
