package obs

import (
	"bytes"
	"encoding/json"
	"strconv"
	"strings"
	"sync"
	"testing"
	"time"
)

// fixedClock returns a constant instant, the deterministic-trace
// configuration: every span gets the same timestamp and zero duration.
func fixedClock() func() time.Time {
	at := time.Date(2020, 5, 1, 0, 0, 0, 0, time.UTC)
	return func() time.Time { return at }
}

func TestSpanTreeExport(t *testing.T) {
	tr := NewTracer(TracerConfig{Clock: fixedClock()})
	visit := tr.Start("visit", A("url", "https://example.com/"), A("day", "12"))
	retry := visit.Start("retry", A("n", "2"))
	retry.End()
	visit.Attr("outcome", "success")
	visit.End()

	var buf bytes.Buffer
	if err := tr.WriteNDJSON(&buf); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != 2 {
		t.Fatalf("lines = %d, want 2:\n%s", len(lines), buf.String())
	}
	var got struct {
		Name   string `json:"name"`
		ID     string `json:"id"`
		Parent string `json:"parent"`
		Start  string `json:"start"`
		DurNS  int64  `json:"dur_ns"`
		Attrs  []Attr `json:"attrs"`
	}
	// Lexicographic order puts the retry line first.
	if err := json.Unmarshal([]byte(lines[0]), &got); err != nil {
		t.Fatal(err)
	}
	if got.Name != "retry" || got.ID != "retry[n=2]" || got.Parent != "visit[url=https://example.com/;day=12]" {
		t.Errorf("retry span = %+v", got)
	}
	got = struct {
		Name   string `json:"name"`
		ID     string `json:"id"`
		Parent string `json:"parent"`
		Start  string `json:"start"`
		DurNS  int64  `json:"dur_ns"`
		Attrs  []Attr `json:"attrs"`
	}{}
	if err := json.Unmarshal([]byte(lines[1]), &got); err != nil {
		t.Fatal(err)
	}
	if got.Name != "visit" || got.Parent != "" || got.DurNS != 0 {
		t.Errorf("visit span = %+v", got)
	}
	if len(got.Attrs) != 3 || got.Attrs[2] != A("outcome", "success") {
		t.Errorf("visit attrs = %+v", got.Attrs)
	}
	if got.Start != "2020-05-01T00:00:00Z" {
		t.Errorf("start = %q", got.Start)
	}
}

// The canonical export must be byte-identical regardless of the order
// spans finished in — that is what makes multi-worker traces
// comparable.
func TestExportCanonicalOrder(t *testing.T) {
	export := func(order []int) string {
		tr := NewTracer(TracerConfig{Clock: fixedClock()})
		spans := make([]*Span, 10)
		for i := range spans {
			spans[i] = tr.Start("visit", A("url", "u"+strconv.Itoa(i)))
		}
		for _, i := range order {
			spans[i].End()
		}
		var buf bytes.Buffer
		if err := tr.WriteNDJSON(&buf); err != nil {
			t.Fatal(err)
		}
		return buf.String()
	}
	asc := export([]int{0, 1, 2, 3, 4, 5, 6, 7, 8, 9})
	shuffled := export([]int{7, 2, 9, 0, 5, 4, 8, 1, 3, 6})
	if asc != shuffled {
		t.Error("export depends on span completion order")
	}
}

func TestExportNameFilter(t *testing.T) {
	tr := NewTracer(TracerConfig{Clock: fixedClock()})
	tr.Start("visit", A("u", "1")).End()
	tr.Start("shard", A("w", "0")).End()
	tr.Start("retry", A("n", "2")).End()
	var buf bytes.Buffer
	if err := tr.WriteNDJSON(&buf, "visit", "retry"); err != nil {
		t.Fatal(err)
	}
	if strings.Contains(buf.String(), `"shard"`) {
		t.Errorf("filter leaked shard spans:\n%s", buf.String())
	}
	if n := strings.Count(buf.String(), "\n"); n != 2 {
		t.Errorf("filtered lines = %d, want 2", n)
	}
}

func TestTracerCapDropsOldest(t *testing.T) {
	tr := NewTracer(TracerConfig{Clock: fixedClock(), Cap: 4})
	for i := 0; i < 10; i++ {
		tr.Start("s", A("i", strconv.Itoa(i))).End()
	}
	if tr.Len() != 4 {
		t.Errorf("retained = %d, want 4", tr.Len())
	}
	if tr.Dropped() != 6 {
		t.Errorf("dropped = %d, want 6", tr.Dropped())
	}
	var buf bytes.Buffer
	if err := tr.WriteNDJSON(&buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "s[i=9]") || strings.Contains(buf.String(), "s[i=0]") {
		t.Errorf("cap should drop the oldest spans:\n%s", buf.String())
	}
}

func TestDoubleEndRecordsOnce(t *testing.T) {
	tr := NewTracer(TracerConfig{Clock: fixedClock()})
	s := tr.Start("once")
	s.End()
	s.End()
	if tr.Len() != 1 {
		t.Errorf("retained = %d, want 1", tr.Len())
	}
}

func TestTracerConcurrent(t *testing.T) {
	tr := NewTracer(TracerConfig{Clock: fixedClock(), Cap: 128})
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 100; i++ {
				sp := tr.Start("visit", A("w", strconv.Itoa(w)), A("i", strconv.Itoa(i)))
				sp.Start("store").End()
				sp.Attr("outcome", "ok")
				sp.End()
			}
		}(w)
	}
	wg.Wait()
	if got := tr.Len() + int(tr.Dropped()); got != 1600 {
		t.Errorf("retained+dropped = %d, want 1600", got)
	}
	var buf bytes.Buffer
	if err := tr.WriteNDJSON(&buf); err != nil {
		t.Fatal(err)
	}
}

func TestRealClockDuration(t *testing.T) {
	tr := NewTracer(TracerConfig{})
	s := tr.Start("timed")
	time.Sleep(time.Millisecond)
	s.End()
	var buf bytes.Buffer
	if err := tr.WriteNDJSON(&buf); err != nil {
		t.Fatal(err)
	}
	var got struct {
		DurNS int64 `json:"dur_ns"`
	}
	if err := json.Unmarshal(bytes.TrimSpace(buf.Bytes()), &got); err != nil {
		t.Fatal(err)
	}
	if got.DurNS <= 0 {
		t.Errorf("dur_ns = %d, want > 0 under the real clock", got.DurNS)
	}
}
