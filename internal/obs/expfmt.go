package obs

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"math"
	"regexp"
	"strconv"
	"strings"
)

// WritePrometheus renders every family in the Prometheus text
// exposition format (version 0.0.4): # HELP and # TYPE comments, then
// one line per sample, with histogram buckets cumulative under the
// canonical _bucket/_sum/_count suffixes. Families appear in
// registration order, children sorted by label values. A nil registry
// writes nothing.
func (r *Registry) WritePrometheus(w io.Writer) error {
	bw := bufio.NewWriter(w)
	for _, f := range r.snapshotFamilies() {
		if f.help != "" {
			fmt.Fprintf(bw, "# HELP %s %s\n", f.name, escapeHelp(f.help))
		}
		fmt.Fprintf(bw, "# TYPE %s %s\n", f.name, f.kind)
		for _, c := range f.sortedChildren() {
			labels := formatLabels(f.labelNames, c.labelValues)
			switch {
			case c.hist != nil:
				snap := c.hist.Snapshot()
				for _, b := range snap.Buckets {
					fmt.Fprintf(bw, "%s_bucket%s %d\n",
						f.name, formatLabelsExtra(f.labelNames, c.labelValues, "le", b.Label), b.Count)
				}
				fmt.Fprintf(bw, "%s_sum%s %s\n", f.name, labels, formatFloat(snap.Sum))
				fmt.Fprintf(bw, "%s_count%s %d\n", f.name, labels, snap.Count)
			case c.fn != nil:
				fmt.Fprintf(bw, "%s%s %s\n", f.name, labels, formatFloat(c.fn()))
			case c.counter != nil:
				fmt.Fprintf(bw, "%s%s %d\n", f.name, labels, c.counter.Value())
			case c.gauge != nil:
				fmt.Fprintf(bw, "%s%s %s\n", f.name, labels, formatFloat(c.gauge.Value()))
			}
		}
	}
	return bw.Flush()
}

func escapeHelp(s string) string {
	s = strings.ReplaceAll(s, `\`, `\\`)
	return strings.ReplaceAll(s, "\n", `\n`)
}

func escapeLabel(s string) string {
	s = strings.ReplaceAll(s, `\`, `\\`)
	s = strings.ReplaceAll(s, `"`, `\"`)
	return strings.ReplaceAll(s, "\n", `\n`)
}

// formatLabels renders {k="v",…}, or "" when there are no labels.
func formatLabels(names, values []string) string {
	return formatLabelsExtra(names, values, "", "")
}

// formatLabelsExtra appends one extra pair (used for histogram le=).
func formatLabelsExtra(names, values []string, extraK, extraV string) string {
	if len(names) == 0 && extraK == "" {
		return ""
	}
	var b strings.Builder
	b.WriteByte('{')
	for i, n := range names {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(n)
		b.WriteString(`="`)
		b.WriteString(escapeLabel(values[i]))
		b.WriteString(`"`)
	}
	if extraK != "" {
		if len(names) > 0 {
			b.WriteByte(',')
		}
		b.WriteString(extraK)
		b.WriteString(`="`)
		b.WriteString(extraV)
		b.WriteString(`"`)
	}
	b.WriteByte('}')
	return b.String()
}

// ExpositionMetric and ExpositionFamily shape the JSON exposition —
// exported so scrapers (obsd) can decode /metrics.json without
// re-declaring the document.
type ExpositionMetric struct {
	Labels    map[string]string  `json:"labels,omitempty"`
	Value     *float64           `json:"value,omitempty"`
	Histogram *HistogramSnapshot `json:"histogram,omitempty"`
}

type ExpositionFamily struct {
	Name    string             `json:"name"`
	Kind    string             `json:"kind"`
	Help    string             `json:"help,omitempty"`
	Metrics []ExpositionMetric `json:"metrics"`
}

// ParseJSONExposition decodes a /metrics.json document. Histogram
// bucket bounds (which marshal only as their "le" labels) are
// re-parsed into LE so merged rollups and quantiles work on scraped
// snapshots.
func ParseJSONExposition(r io.Reader) ([]ExpositionFamily, error) {
	var doc struct {
		Families []ExpositionFamily `json:"families"`
	}
	if err := json.NewDecoder(r).Decode(&doc); err != nil {
		return nil, fmt.Errorf("obs: decoding exposition: %w", err)
	}
	for _, f := range doc.Families {
		for _, m := range f.Metrics {
			if m.Histogram == nil {
				continue
			}
			for i := range m.Histogram.Buckets {
				b := &m.Histogram.Buckets[i]
				if b.Label == "+Inf" {
					b.LE = math.Inf(1)
					continue
				}
				le, err := strconv.ParseFloat(b.Label, 64)
				if err != nil {
					return nil, fmt.Errorf("obs: family %s: bad bucket bound %q", f.Name, b.Label)
				}
				b.LE = le
			}
		}
	}
	return doc.Families, nil
}

// WriteJSON renders the registry as a JSON document mirroring the text
// exposition: {"families":[{name, kind, help, metrics:[…]}]}. A nil
// registry writes an empty family list.
func (r *Registry) WriteJSON(w io.Writer) error {
	fams := []ExpositionFamily{}
	for _, f := range r.snapshotFamilies() {
		jf := ExpositionFamily{Name: f.name, Kind: f.kind.String(), Help: f.help, Metrics: []ExpositionMetric{}}
		for _, c := range f.sortedChildren() {
			m := ExpositionMetric{}
			if len(f.labelNames) > 0 {
				m.Labels = make(map[string]string, len(f.labelNames))
				for i, n := range f.labelNames {
					m.Labels[n] = c.labelValues[i]
				}
			}
			switch {
			case c.hist != nil:
				snap := c.hist.Snapshot()
				m.Histogram = &snap
			case c.fn != nil:
				v := c.fn()
				m.Value = &v
			case c.counter != nil:
				v := float64(c.counter.Value())
				m.Value = &v
			case c.gauge != nil:
				v := c.gauge.Value()
				m.Value = &v
			}
			jf.Metrics = append(jf.Metrics, m)
		}
		fams = append(fams, jf)
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(struct {
		Families []ExpositionFamily `json:"families"`
	}{fams})
}

var (
	metricNameRe = regexp.MustCompile(`^[a-zA-Z_:][a-zA-Z0-9_:]*$`)
	labelNameRe  = regexp.MustCompile(`^[a-zA-Z_][a-zA-Z0-9_]*$`)
)

// ValidateExposition parses a Prometheus text exposition and returns
// an error naming the first malformed line. It is the check behind
// `make obs-smoke` and the package's own round-trip tests: metric and
// label names must be legal, label values must be properly quoted and
// escaped, sample values must parse as floats, and # TYPE comments
// must declare a known type at most once per family.
func ValidateExposition(r io.Reader) error {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 1<<20)
	typed := map[string]bool{}
	n := 0
	for sc.Scan() {
		n++
		line := sc.Text()
		if strings.TrimSpace(line) == "" {
			continue
		}
		if strings.HasPrefix(line, "#") {
			if err := validateComment(line, typed); err != nil {
				return fmt.Errorf("line %d: %w", n, err)
			}
			continue
		}
		if err := validateSample(line); err != nil {
			return fmt.Errorf("line %d: %w", n, err)
		}
	}
	if err := sc.Err(); err != nil {
		return fmt.Errorf("reading exposition: %w", err)
	}
	return nil
}

func validateComment(line string, typed map[string]bool) error {
	fields := strings.Fields(line)
	if len(fields) < 2 {
		return nil // bare comment, allowed
	}
	switch fields[1] {
	case "HELP":
		if len(fields) < 3 || !metricNameRe.MatchString(fields[2]) {
			return fmt.Errorf("malformed HELP comment %q", line)
		}
	case "TYPE":
		if len(fields) != 4 || !metricNameRe.MatchString(fields[2]) {
			return fmt.Errorf("malformed TYPE comment %q", line)
		}
		switch fields[3] {
		case "counter", "gauge", "histogram", "summary", "untyped":
		default:
			return fmt.Errorf("unknown metric type %q", fields[3])
		}
		if typed[fields[2]] {
			return fmt.Errorf("duplicate TYPE for %q", fields[2])
		}
		typed[fields[2]] = true
	}
	return nil
}

func validateSample(line string) error {
	rest := line
	// Metric name runs up to '{' or whitespace.
	end := strings.IndexAny(rest, "{ \t")
	if end < 0 {
		return fmt.Errorf("sample %q has no value", line)
	}
	name := rest[:end]
	if !metricNameRe.MatchString(name) {
		return fmt.Errorf("bad metric name %q", name)
	}
	rest = rest[end:]
	if strings.HasPrefix(rest, "{") {
		after, err := validateLabels(rest)
		if err != nil {
			return fmt.Errorf("sample %q: %w", line, err)
		}
		rest = after
	}
	fields := strings.Fields(rest)
	if len(fields) < 1 || len(fields) > 2 {
		return fmt.Errorf("sample %q: want value [timestamp], got %q", line, rest)
	}
	if _, err := strconv.ParseFloat(fields[0], 64); err != nil {
		return fmt.Errorf("sample %q: bad value %q", line, fields[0])
	}
	if len(fields) == 2 {
		if _, err := strconv.ParseInt(fields[1], 10, 64); err != nil {
			return fmt.Errorf("sample %q: bad timestamp %q", line, fields[1])
		}
	}
	return nil
}

// validateLabels consumes a {k="v",…} block and returns what follows.
func validateLabels(s string) (rest string, err error) {
	i := 1 // past '{'
	for {
		// Label name.
		j := i
		for j < len(s) && s[j] != '=' {
			j++
		}
		if j == len(s) {
			return "", fmt.Errorf("unterminated label block")
		}
		if !labelNameRe.MatchString(s[i:j]) {
			return "", fmt.Errorf("bad label name %q", s[i:j])
		}
		// Quoted value with escapes.
		i = j + 1
		if i >= len(s) || s[i] != '"' {
			return "", fmt.Errorf("label value not quoted")
		}
		i++
		for i < len(s) && s[i] != '"' {
			if s[i] == '\\' {
				i++
			}
			i++
		}
		if i >= len(s) {
			return "", fmt.Errorf("unterminated label value")
		}
		i++ // past closing quote
		if i < len(s) && s[i] == ',' {
			i++
			continue
		}
		if i < len(s) && s[i] == '}' {
			return s[i+1:], nil
		}
		return "", fmt.Errorf("malformed label block")
	}
}
