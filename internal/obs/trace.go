package obs

import (
	"bufio"
	"encoding/json"
	"io"
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// Pipeline tracing. A Tracer collects spans — named, attributed,
// clocked intervals forming a tree: campaign → shard → visit → retry,
// with store and detect spans recording where a capture's bytes and
// classification happened. Spans are exported as NDJSON in a canonical
// order (lexicographic by encoded line), so two runs that performed
// the same work under the same clock produce byte-identical output
// regardless of goroutine scheduling or worker count.
//
// Identity is structural, not sequential: a span's id is its name plus
// the attributes passed to Start, and children reference the parent's
// id string. Sequence numbers would differ between interleavings;
// structural ids do not.

// Attr is one key/value span attribute.
type Attr struct {
	K string `json:"k"`
	V string `json:"v"`
}

// A is shorthand for Attr{k, v}.
func A(k, v string) Attr { return Attr{K: k, V: v} }

// TracerConfig parameterizes a Tracer.
type TracerConfig struct {
	// Clock supplies span timestamps; injectable so traces are
	// deterministic under simulated time (default time.Now). With a
	// fixed clock every duration is zero and timestamps are constant —
	// exactly what byte-identical trace tests want.
	Clock func() time.Time
	// Cap bounds retained finished spans (default 16384); beyond it the
	// oldest are dropped and counted in Dropped.
	Cap int
	// Service names the role this tracer records for ("fleetd",
	// "worker", "capd", …) and is stamped on every exported span line.
	// It must be a role, never a per-process identity: per-process
	// names would break byte-identical exports across worker counts.
	Service string
}

// DefaultTraceCap is the default retained-span bound.
const DefaultTraceCap = 16384

// Tracer collects finished spans up to a cap. A nil *Tracer is the
// disabled recorder: Start returns a nil span and every span method is
// a no-op.
type Tracer struct {
	clock   func() time.Time
	cap     int
	service string
	mu      sync.Mutex
	// spans is a ring once it reaches cap: head indexes the oldest
	// retained span, so eviction is one pointer store instead of a
	// slice copy on every End past the cap.
	spans   []*Span
	head    int
	dropped atomic.Int64
}

// NewTracer returns a tracer for the config.
func NewTracer(cfg TracerConfig) *Tracer {
	if cfg.Clock == nil {
		cfg.Clock = time.Now
	}
	if cfg.Cap <= 0 {
		cfg.Cap = DefaultTraceCap
	}
	return &Tracer{clock: cfg.Clock, cap: cfg.Cap, service: cfg.Service}
}

// Span is one traced interval. Create with Tracer.Start or Span.Start;
// finish with End. Nil-safe throughout.
type Span struct {
	tr     *Tracer
	name   string
	id     string
	parent string
	// ctx is the span's propagation identity (trace id + own span id);
	// psid is the parent's span id within that trace. Both are derived
	// from structural identity — see tracecontext.go.
	ctx   SpanContext
	psid  string
	start time.Time
	mu    sync.Mutex
	end   time.Time
	attrs []Attr
	ended bool
}

// Start begins a root span. The attrs given here are part of the
// span's identity (its id is "name[k=v;…]"); attach purely descriptive
// attributes afterwards with Span.Attr.
func (t *Tracer) Start(name string, attrs ...Attr) *Span {
	return t.start(name, "", SpanContext{}, attrs)
}

// StartRemote begins a span as the child of a parent span in another
// process, identified by a propagated context (typically parsed from a
// traceparent header or wire frame). An invalid context degrades to a
// root span. Nil-safe.
func (t *Tracer) StartRemote(name string, parent SpanContext, attrs ...Attr) *Span {
	return t.start(name, "", parent, attrs)
}

func (t *Tracer) start(name, parent string, pctx SpanContext, attrs []Attr) *Span {
	if t == nil {
		return nil
	}
	id := name + "["
	for i, a := range attrs {
		if i > 0 {
			id += ";"
		}
		id += a.K + "=" + a.V
	}
	id += "]"
	var ctx SpanContext
	var psid string
	if pctx.Valid() {
		ctx = SpanContext{TraceID: pctx.TraceID, SpanID: spanIDFor(pctx.SpanID, id)}
		psid = pctx.SpanID
	} else {
		ctx = SpanContext{TraceID: traceIDFor(id), SpanID: spanIDFor("", id)}
	}
	return &Span{
		tr:     t,
		name:   name,
		id:     id,
		parent: parent,
		ctx:    ctx,
		psid:   psid,
		start:  t.clock(),
		attrs:  append([]Attr(nil), attrs...),
	}
}

// Start begins a child span. Nil-safe: a child of a nil span is nil.
func (s *Span) Start(name string, attrs ...Attr) *Span {
	if s == nil {
		return nil
	}
	return s.tr.start(name, s.id, s.ctx, attrs)
}

// Context returns the span's propagation identity for handing to
// another process. Nil-safe: a nil span yields the invalid context.
func (s *Span) Context() SpanContext {
	if s == nil {
		return SpanContext{}
	}
	return s.ctx
}

// Attr attaches a descriptive attribute after Start; it appears in the
// export but not in the span's id.
func (s *Span) Attr(k, v string) {
	if s == nil {
		return
	}
	s.mu.Lock()
	s.attrs = append(s.attrs, Attr{K: k, V: v})
	s.mu.Unlock()
}

// End finishes the span and hands it to the tracer. Calling End twice
// records the span once.
func (s *Span) End() {
	if s == nil {
		return
	}
	s.mu.Lock()
	if s.ended {
		s.mu.Unlock()
		return
	}
	s.ended = true
	s.end = s.tr.clock()
	s.mu.Unlock()
	t := s.tr
	t.mu.Lock()
	if len(t.spans) < t.cap {
		t.spans = append(t.spans, s)
	} else {
		t.spans[t.head] = s
		t.head = (t.head + 1) % t.cap
		t.dropped.Add(1)
	}
	t.mu.Unlock()
}

// Len returns the number of retained finished spans.
func (t *Tracer) Len() int {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return len(t.spans)
}

// Dropped returns how many finished spans the cap evicted.
func (t *Tracer) Dropped() int64 {
	if t == nil {
		return 0
	}
	return t.dropped.Load()
}

// Reset discards all retained spans (the dropped counter is kept).
func (t *Tracer) Reset() {
	if t == nil {
		return
	}
	t.mu.Lock()
	t.spans = nil
	t.head = 0
	t.mu.Unlock()
}

// RegisterMetrics publishes the tracer's retention state on reg.
func (t *Tracer) RegisterMetrics(reg *Registry) {
	if t == nil || reg == nil {
		return
	}
	NewGaugeFunc(reg, "obs_trace_spans", "Finished spans currently retained by the tracer.",
		func() float64 { return float64(t.Len()) })
	NewCounterFunc(reg, "obs_trace_spans_dropped_total", "Finished spans evicted by the retention cap.",
		t.Dropped)
}

// SpanRecord is the NDJSON wire form of one finished span. TID/SID/
// PSID carry the cross-process identity (tracecontext.go); Svc is the
// recording tracer's role. Parent is the in-process structural parent
// id; for a span adopted via StartRemote it is empty and PSID alone
// links the tree.
type SpanRecord struct {
	Name   string `json:"name"`
	ID     string `json:"id"`
	Parent string `json:"parent,omitempty"`
	Start  string `json:"start"`
	DurNS  int64  `json:"dur_ns"`
	Attrs  []Attr `json:"attrs,omitempty"`
	TID    string `json:"tid,omitempty"`
	SID    string `json:"sid,omitempty"`
	PSID   string `json:"psid,omitempty"`
	Svc    string `json:"svc,omitempty"`
}

// WriteNDJSON exports the retained finished spans, one JSON object per
// line, restricted to the given span names when any are passed. Lines
// are sorted lexicographically — a total order over the span multiset —
// so runs that did the same work under the same clock export
// byte-identical bytes at any worker count. A nil tracer writes
// nothing.
func (t *Tracer) WriteNDJSON(w io.Writer, names ...string) error {
	if t == nil {
		return nil
	}
	want := map[string]bool{}
	for _, n := range names {
		want[n] = true
	}
	t.mu.Lock()
	spans := append([]*Span(nil), t.spans...)
	t.mu.Unlock()

	lines := make([]string, 0, len(spans))
	for _, s := range spans {
		if len(want) > 0 && !want[s.name] {
			continue
		}
		s.mu.Lock()
		line := SpanRecord{
			Name:   s.name,
			ID:     s.id,
			Parent: s.parent,
			Start:  s.start.UTC().Format(time.RFC3339Nano),
			DurNS:  s.durNS(),
			Attrs:  append([]Attr(nil), s.attrs...),
			TID:    s.ctx.TraceID,
			SID:    s.ctx.SpanID,
			PSID:   s.psid,
			Svc:    t.service,
		}
		s.mu.Unlock()
		b, err := json.Marshal(line)
		if err != nil {
			return err
		}
		lines = append(lines, string(b))
	}
	sort.Strings(lines)
	bw := bufio.NewWriter(w)
	for _, l := range lines {
		bw.WriteString(l)  //nolint:errcheck // flushed below
		bw.WriteByte('\n') //nolint:errcheck
	}
	return bw.Flush()
}

// durNS is the span duration in nanoseconds; callers hold s.mu.
func (s *Span) durNS() int64 {
	if s.end.IsZero() {
		return 0
	}
	return s.end.Sub(s.start).Nanoseconds()
}
