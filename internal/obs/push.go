package obs

import (
	"bytes"
	"fmt"
	"io"
	"net/http"
)

// PushSpans exports the tracer's retained spans as NDJSON and POSTs
// them to url (obsd's /ingest/spans). Scraping /debug/trace covers
// long-lived nodes; pushing covers ephemeral processes — fleet workers
// and a draining fleetd — whose tracers vanish before the next scrape
// tick. Pushing the same spans twice is harmless: the aggregator
// dedups on the canonical line bytes. A nil tracer pushes nothing.
func PushSpans(client *http.Client, url string, t *Tracer) error {
	if t == nil {
		return nil
	}
	var buf bytes.Buffer
	if err := t.WriteNDJSON(&buf); err != nil {
		return err
	}
	if buf.Len() == 0 {
		return nil
	}
	if client == nil {
		client = http.DefaultClient
	}
	resp, err := client.Post(url, "application/x-ndjson", &buf)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	io.Copy(io.Discard, io.LimitReader(resp.Body, 4096)) //nolint:errcheck
	if resp.StatusCode < 200 || resp.StatusCode > 299 {
		return fmt.Errorf("obs: pushing spans to %s: %s", url, resp.Status)
	}
	return nil
}
