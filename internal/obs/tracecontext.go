package obs

import (
	"fmt"
	"strings"
)

// Cross-process trace context. A SpanContext names one span inside one
// trace so a downstream process can attach its own spans as children:
// fleetd starts a lease span, the grant carries the context to the
// worker, the worker's push carries it to capring, the fan-out carries
// it to each capd — and an aggregator stitches the NDJSON exports back
// into a single tree.
//
// Ids are derived, not drawn: the trace id is a hash of the root
// span's structural id, and each span id is a hash of the parent's
// span id plus the span's own structural id. No randomness, no
// counters, no host names — two fleets doing the same work at any
// worker count mint byte-identical ids, which is what keeps
// cross-process traces inside the repo's byte-reproducibility
// discipline (DESIGN.md §13). The cost is that identical structural
// siblings collapse to one id; replica fan-out exploits this so N
// copies of one delivery dedup to a single span at assembly.

// SpanContext identifies a span within a trace for cross-process
// propagation. The zero value is "no context".
type SpanContext struct {
	// TraceID is 32 lowercase hex characters, constant across every
	// span of one trace.
	TraceID string
	// SpanID is 16 lowercase hex characters naming one span; children
	// record it as their parent.
	SpanID string
}

// Valid reports whether the context carries a usable trace identity.
func (sc SpanContext) Valid() bool {
	return len(sc.TraceID) == 32 && len(sc.SpanID) == 16
}

// TraceparentHeader is the HTTP header the context travels in,
// following the W3C trace-context convention.
const TraceparentHeader = "Traceparent"

// Traceparent renders the context in W3C traceparent form:
// "00-<trace id>-<span id>-01". An invalid context renders "".
func (sc SpanContext) Traceparent() string {
	if !sc.Valid() {
		return ""
	}
	return "00-" + sc.TraceID + "-" + sc.SpanID + "-01"
}

// ParseTraceparent parses a traceparent string. An empty string is not
// an error: it returns the zero (invalid) context, so callers can pass
// an absent header straight through.
func ParseTraceparent(s string) (SpanContext, error) {
	if s == "" {
		return SpanContext{}, nil
	}
	parts := strings.Split(s, "-")
	if len(parts) != 4 || len(parts[0]) != 2 || len(parts[1]) != 32 || len(parts[2]) != 16 || len(parts[3]) != 2 {
		return SpanContext{}, fmt.Errorf("obs: malformed traceparent %q", s)
	}
	for _, p := range parts {
		for i := 0; i < len(p); i++ {
			c := p[i]
			if (c < '0' || c > '9') && (c < 'a' || c > 'f') {
				return SpanContext{}, fmt.Errorf("obs: traceparent %q has non-hex field", s)
			}
		}
	}
	sc := SpanContext{TraceID: parts[1], SpanID: parts[2]}
	if strings.Count(sc.TraceID, "0") == 32 || strings.Count(sc.SpanID, "0") == 16 {
		return SpanContext{}, fmt.Errorf("obs: traceparent %q has all-zero id", s)
	}
	return sc, nil
}

// FNV-64a, inlined so the id derivation allocates nothing beyond the
// two hex strings.
const (
	fnvOffset64 = 14695981039346656037
	fnvPrime64  = 1099511628211
)

func fnv64a(seed uint64, s string) uint64 {
	h := seed
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= fnvPrime64
	}
	return h
}

const hexDigits = "0123456789abcdef"

func hex64(v uint64) string {
	var b [16]byte
	for i := 15; i >= 0; i-- {
		b[i] = hexDigits[v&0xf]
		v >>= 4
	}
	return string(b[:])
}

// nonZero64 keeps ids out of the all-zero form traceparent reserves
// for "absent".
func nonZero64(v uint64) uint64 {
	if v == 0 {
		return 1
	}
	return v
}

// traceIDFor derives the 128-bit trace id for a trace rooted at the
// span with the given structural id: two chained FNV-64a passes over
// the id, hex-concatenated.
func traceIDFor(structuralID string) string {
	hi := nonZero64(fnv64a(fnvOffset64, structuralID))
	lo := nonZero64(fnv64a(hi, structuralID))
	return hex64(hi) + hex64(lo)
}

// spanIDFor derives a span id from the parent's span id (empty for a
// root) and the span's own structural id. Chaining through the parent
// id keeps structurally-identical spans distinct when they sit under
// different parents (the same "visit" under two lease attempts).
func spanIDFor(parentSpanID, structuralID string) string {
	return hex64(nonZero64(fnv64a(fnv64a(fnvOffset64, parentSpanID), "\x1f"+structuralID)))
}
