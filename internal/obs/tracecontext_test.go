package obs

import (
	"strings"
	"testing"
	"time"
)

func TestTraceparentRoundTrip(t *testing.T) {
	tr := NewTracer(TracerConfig{Service: "fleetd"})
	sp := tr.Start("lease", A("first", "0"), A("attempt", "1"))
	tp := sp.Context().Traceparent()
	if !strings.HasPrefix(tp, "00-") || !strings.HasSuffix(tp, "-01") {
		t.Fatalf("traceparent %q not in 00-…-01 form", tp)
	}
	ctx, err := ParseTraceparent(tp)
	if err != nil {
		t.Fatal(err)
	}
	if ctx != sp.Context() {
		t.Fatalf("round-trip: %+v != %+v", ctx, sp.Context())
	}
}

func TestParseTraceparentRejects(t *testing.T) {
	for _, bad := range []string{
		"00-short-0123456789abcdef-01",
		"00-0123456789abcdef0123456789abcdef-short-01",
		"xx-0123456789abcdef0123456789abcdef-0123456789abcdef-01",
		"00-0123456789abcdef0123456789abcdef-0123456789abcdef",
		"00-00000000000000000000000000000000-0123456789abcdef-01", // all-zero trace id
		"00-0123456789abcdef0123456789abcdef-0000000000000000-01", // all-zero span id
		"00-0123456789abcdeg0123456789abcdef-0123456789abcdef-01", // non-hex
	} {
		if _, err := ParseTraceparent(bad); err == nil {
			t.Errorf("ParseTraceparent(%q) accepted", bad)
		}
	}
	ctx, err := ParseTraceparent("")
	if err != nil || ctx.Valid() {
		t.Fatalf("empty header: ctx=%+v err=%v, want zero ctx and nil error", ctx, err)
	}
}

// Ids are derived from structural identity: the same span tree started
// on different tracers — or in different processes — gets the same
// trace and span ids. This is the invariant that makes assembled
// traces byte-identical across worker counts.
func TestTraceContextDeterministic(t *testing.T) {
	build := func() (root, child, remote SpanContext) {
		tr := NewTracer(TracerConfig{Service: "fleetd"})
		sp := tr.Start("lease", A("first", "0"), A("attempt", "1"))
		ch := sp.Start("push", A("first", "0"))
		// Another process adopts the root's context.
		tr2 := NewTracer(TracerConfig{Service: "worker"})
		ad := tr2.StartRemote("work", sp.Context(), A("first", "0"))
		return sp.Context(), ch.Context(), ad.Context()
	}
	r1, c1, a1 := build()
	r2, c2, a2 := build()
	if r1 != r2 || c1 != c2 || a1 != a2 {
		t.Fatalf("contexts differ across identical builds:\n%v %v %v\n%v %v %v", r1, c1, a1, r2, c2, a2)
	}
	if c1.TraceID != r1.TraceID || a1.TraceID != r1.TraceID {
		t.Fatalf("children left the trace: root=%v child=%v adopted=%v", r1, c1, a1)
	}
	if c1.SpanID == r1.SpanID || a1.SpanID == r1.SpanID || c1.SpanID == a1.SpanID {
		t.Fatal("span ids collide across distinct spans")
	}
	// Different structural identity → different trace.
	tr := NewTracer(TracerConfig{})
	other := tr.Start("lease", A("first", "16"), A("attempt", "1"))
	if other.Context().TraceID == r1.TraceID {
		t.Fatal("distinct roots share a trace id")
	}
}

// An invalid propagated context degrades to a root span rather than
// dropping the span.
func TestStartRemoteInvalidContext(t *testing.T) {
	tr := NewTracer(TracerConfig{})
	sp := tr.StartRemote("work", SpanContext{}, A("first", "0"))
	if !sp.Context().Valid() {
		t.Fatal("degraded span has no identity")
	}
	root := tr.Start("work", A("first", "0"))
	if sp.Context() != root.Context() {
		t.Fatalf("degraded root %+v differs from plain root %+v", sp.Context(), root.Context())
	}
}

// NDJSON export carries the propagation fields and stays sorted.
func TestWriteNDJSONCarriesContext(t *testing.T) {
	clock := time.Date(2026, 1, 1, 0, 0, 0, 0, time.UTC)
	tr := NewTracer(TracerConfig{Service: "capd", Clock: func() time.Time { return clock }})
	sp := tr.StartRemote("ingest", SpanContext{TraceID: strings.Repeat("ab", 16), SpanID: strings.Repeat("cd", 8)},
		A("at", "0"))
	sp.End()
	var buf strings.Builder
	if err := tr.WriteNDJSON(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{`"svc":"capd"`, `"tid":"` + strings.Repeat("ab", 16) + `"`, `"psid":"` + strings.Repeat("cd", 8) + `"`, `"sid":"`} {
		if !strings.Contains(out, want) {
			t.Errorf("export missing %s:\n%s", want, out)
		}
	}
}
