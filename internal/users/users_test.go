package users

import "testing"

func TestPopulationDeterminism(t *testing.T) {
	p1 := NewPopulation(Config{Seed: 7, EUShare: 0.4, RejectShare: 0.2, AbandonShare: 0.1})
	p2 := NewPopulation(Config{Seed: 7, EUShare: 0.4, RejectShare: 0.2, AbandonShare: 0.1})
	for i := 0; i < 100; i++ {
		if p1.Visitor(i) != p2.Visitor(i) {
			t.Fatalf("visitor %d differs", i)
		}
	}
}

func TestPopulationShares(t *testing.T) {
	cfg := DefaultConfig()
	p := NewPopulation(cfg)
	const n = 20_000
	var eu, repeat, reject, abandon int
	for i := 0; i < n; i++ {
		v := p.Visitor(i)
		if v.EU {
			eu++
		}
		if v.HasConsentCookie {
			repeat++
		}
		switch v.Pref {
		case PrefReject:
			reject++
		case PrefAbandon:
			abandon++
		}
		if v.Speed <= 0 {
			t.Fatal("speed must be positive")
		}
		if v.Persistence < 0 || v.Persistence >= 1 {
			t.Fatal("persistence out of range")
		}
		if v.ID == "" {
			t.Fatal("missing visitor ID")
		}
	}
	within := func(got int, want, tol float64) bool {
		g := float64(got) / n
		return g > want-tol && g < want+tol
	}
	if !within(eu, cfg.EUShare, 0.02) {
		t.Errorf("EU share = %d/%d", eu, n)
	}
	if !within(repeat, cfg.RepeatShare, 0.02) {
		t.Errorf("repeat share = %d/%d", repeat, n)
	}
	if !within(reject, cfg.RejectShare, 0.02) {
		t.Errorf("reject share = %d/%d", reject, n)
	}
	if !within(abandon, cfg.AbandonShare, 0.02) {
		t.Errorf("abandon share = %d/%d", abandon, n)
	}
}

func TestPreferenceString(t *testing.T) {
	if PrefAccept.String() != "accept" || PrefReject.String() != "reject" || PrefAbandon.String() != "abandon" {
		t.Error("preference names")
	}
}

func TestSessionStream(t *testing.T) {
	p := NewPopulation(DefaultConfig())
	v := p.Visitor(0)
	a, b := p.Stream(v), p.Stream(v)
	if a.Float64() != b.Float64() {
		t.Error("session streams must be reproducible per visitor")
	}
}
