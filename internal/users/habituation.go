package users

import "math"

// Habituation: "Herding may also strengthen the widely documented
// habituation effect in both privacy and security notices"
// (Section 5.2, citing Böhme & Köpsell's "Trained to Accept?" field
// experiment). As users see ever more near-identical consent dialogs,
// they respond faster and accept more — CMP standardization makes the
// dialogs near-identical across the web.

// Habituation models a visitor's exposure to standardized dialogs.
type Habituation struct {
	// Exposures is the number of consent dialogs the user has already
	// dismissed.
	Exposures int
	// SpeedFloor bounds how much faster a habituated user can get
	// (fraction of the unhabituated interaction time, default 0.55).
	SpeedFloor float64
	// AcceptShift bounds the maximum increase in accept propensity
	// (default 0.10, reached asymptotically).
	AcceptShift float64
	// HalfLife is the exposure count at which half the effect is
	// reached (default 12).
	HalfLife float64
}

// DefaultHabituation returns the calibrated effect strengths.
func DefaultHabituation(exposures int) Habituation {
	return Habituation{
		Exposures:   exposures,
		SpeedFloor:  0.55,
		AcceptShift: 0.10,
		HalfLife:    12,
	}
}

// saturation maps exposures to effect saturation in [0,1).
func (h Habituation) saturation() float64 {
	if h.Exposures <= 0 {
		return 0
	}
	hl := h.HalfLife
	if hl <= 0 {
		hl = 12
	}
	x := float64(h.Exposures)
	return x / (x + hl)
}

// TimeFactor scales a dialog interaction time: 1.0 for a fresh user,
// approaching SpeedFloor for a heavily habituated one.
func (h Habituation) TimeFactor() float64 {
	floor := h.SpeedFloor
	if floor <= 0 || floor > 1 {
		floor = 0.55
	}
	return 1 - (1-floor)*h.saturation()
}

// AcceptBoost is the additive increase in accept probability caused by
// habituation ("trained to accept").
func (h Habituation) AcceptBoost() float64 {
	shift := h.AcceptShift
	if shift < 0 {
		shift = 0
	}
	return shift * h.saturation()
}

// Apply returns the visitor with habituation folded into their speed
// and preference: interaction latencies shrink and a slice of
// intrinsic rejectors flips to accepting. The draw uses the visitor's
// Persistence as the tie-breaking uniform, keeping Apply deterministic
// per visitor.
func (h Habituation) Apply(v Visitor) Visitor {
	v.Speed *= h.TimeFactor()
	if v.Pref == PrefReject && v.Persistence < h.AcceptBoost()*2 {
		// Low-persistence rejectors are the first to be trained into
		// accepting; the factor 2 converts the population-level boost
		// into the conditional flip rate at the default reject share.
		v.Pref = PrefAccept
	}
	return v
}

// ExpectedAcceptRate returns the population accept share (among
// deciders) after habituation, given the unhabituated rates.
func ExpectedAcceptRate(baseAccept float64, h Habituation) float64 {
	r := baseAccept + h.AcceptBoost()
	return math.Min(1, r)
}
