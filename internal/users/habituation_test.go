package users

import (
	"math"
	"testing"
	"testing/quick"
)

func TestHabituationMonotone(t *testing.T) {
	prevTime, prevBoost := 1.0, 0.0
	for _, exp := range []int{0, 1, 5, 12, 50, 500} {
		h := DefaultHabituation(exp)
		tf, ab := h.TimeFactor(), h.AcceptBoost()
		if tf > prevTime {
			t.Errorf("time factor must shrink with exposure: %v after %v", tf, prevTime)
		}
		if ab < prevBoost {
			t.Errorf("accept boost must grow with exposure: %v after %v", ab, prevBoost)
		}
		prevTime, prevBoost = tf, ab
	}
	fresh := DefaultHabituation(0)
	if fresh.TimeFactor() != 1 || fresh.AcceptBoost() != 0 {
		t.Error("fresh users are unaffected")
	}
}

func TestHabituationBounds(t *testing.T) {
	f := func(exposures uint16) bool {
		h := DefaultHabituation(int(exposures))
		tf, ab := h.TimeFactor(), h.AcceptBoost()
		return tf > 0.54 && tf <= 1 && ab >= 0 && ab < 0.10
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestHabituationHalfLife(t *testing.T) {
	h := DefaultHabituation(12) // exactly the half-life
	if got := h.AcceptBoost(); math.Abs(got-0.05) > 1e-9 {
		t.Errorf("boost at half-life = %v, want 0.05", got)
	}
	if got := h.TimeFactor(); math.Abs(got-(1-0.45/2)) > 1e-9 {
		t.Errorf("time factor at half-life = %v", got)
	}
}

func TestHabituationApply(t *testing.T) {
	pop := NewPopulation(DefaultConfig())
	h := DefaultHabituation(100)
	flipped, rejectors := 0, 0
	for i := 0; i < 5_000; i++ {
		v := pop.Visitor(i)
		if v.Pref != PrefReject {
			continue
		}
		rejectors++
		after := h.Apply(v)
		if after.Speed >= v.Speed {
			t.Fatal("habituated visitors must be faster")
		}
		if after.Pref == PrefAccept {
			flipped++
		}
	}
	if rejectors == 0 {
		t.Fatal("no rejectors sampled")
	}
	if flipped == 0 || flipped == rejectors {
		t.Errorf("flipped %d of %d rejectors; want a proper fraction", flipped, rejectors)
	}
}

func TestExpectedAcceptRate(t *testing.T) {
	h := DefaultHabituation(1_000_000) // near saturation
	if got := ExpectedAcceptRate(0.83, h); got < 0.92 || got > 0.94 {
		t.Errorf("saturated rate = %v, want ≈0.93", got)
	}
	if got := ExpectedAcceptRate(0.99, DefaultHabituation(1_000_000)); got > 1 {
		t.Error("rate must cap at 1")
	}
}
