// Package users models the visitor population of the paper's field
// experiment (Sections 3.2–3.4): real visitors of mitmproxy.org — "a
// very technical and privacy-conscious audience" — who were shown
// Quantcast's consent dialog in one of two randomized configurations.
//
// Visitors differ in their privacy preference (accept, reject, or
// abandon), their interaction speed, whether they arrive from the EU
// (only EU visitors are shown the dialog under Quantcast's default
// configuration), and whether a previous visit already stored a global
// consensu.org consent cookie (repeat visitors see no dialog).
package users

import (
	"fmt"
	"math/rand"

	"repro/internal/rng"
)

// Preference is a visitor's intrinsic privacy preference.
type Preference int

const (
	// PrefAccept visitors intend to give consent.
	PrefAccept Preference = iota
	// PrefReject visitors intend to deny consent.
	PrefReject
	// PrefAbandon visitors make no decision (excluded from the
	// paper's analysis after three minutes).
	PrefAbandon
)

func (p Preference) String() string {
	switch p {
	case PrefAccept:
		return "accept"
	case PrefReject:
		return "reject"
	default:
		return "abandon"
	}
}

// Visitor is one page visitor of the experiment.
type Visitor struct {
	// ID is the random non-persistent identifier generated on page
	// load (the only linkage the paper's ethics design permits).
	ID string
	// EU reports whether the visitor appears to be in the EU.
	EU bool
	// HasConsentCookie marks repeat visitors whose earlier decision is
	// stored in the global Quantcast TCF cookie (checked via the
	// CookieAccess endpoint); they are not shown a dialog again.
	HasConsentCookie bool
	// Pref is the intrinsic privacy preference.
	Pref Preference
	// Speed scales all interaction latencies (1.0 = median visitor).
	Speed float64
	// Persistence is the visitor's tolerance for extra opt-out
	// effort in [0,1): low-persistence privacy-aware visitors give up
	// and accept when rejecting requires extra navigation — the
	// mechanism behind the 83% → 90% consent-rate shift.
	Persistence float64
}

// Config parameterizes the population.
type Config struct {
	Seed uint64
	// EUShare is the fraction of visitors from the EU.
	EUShare float64
	// RepeatShare is the fraction with an existing consent cookie.
	RepeatShare float64
	// RejectShare / AbandonShare are the intrinsic preference shares
	// (the rest accept). mitmproxy.org's privacy-conscious audience
	// rejects more than the average web population.
	RejectShare  float64
	AbandonShare float64
}

// DefaultConfig is calibrated so the experiment reproduces the
// Figure 10 sample sizes and consent rates (83% accept under config A).
func DefaultConfig() Config {
	return Config{
		Seed:         1,
		EUShare:      0.42,
		RepeatShare:  0.18,
		RejectShare:  0.175,
		AbandonShare: 0.09,
	}
}

// Population deterministically generates visitors.
type Population struct {
	cfg Config
	src *rng.Source
}

// NewPopulation returns a population for the config.
func NewPopulation(cfg Config) *Population {
	return &Population{cfg: cfg, src: rng.New(cfg.Seed).Derive("users")}
}

// Visitor returns the i-th visitor. Identical (config, i) yield an
// identical visitor.
func (p *Population) Visitor(i int) Visitor {
	r := p.src.Stream("visitor", rng.Key(i))
	v := Visitor{
		ID:               fmt.Sprintf("v-%08x", r.Uint32()),
		EU:               r.Float64() < p.cfg.EUShare,
		HasConsentCookie: r.Float64() < p.cfg.RepeatShare,
		Speed:            rng.LogNormal(r, 0, 0.35),
		Persistence:      r.Float64(),
	}
	u := r.Float64()
	switch {
	case u < p.cfg.RejectShare:
		v.Pref = PrefReject
	case u < p.cfg.RejectShare+p.cfg.AbandonShare:
		v.Pref = PrefAbandon
	default:
		v.Pref = PrefAccept
	}
	return v
}

// Stream returns the latency randomness for a visitor's session.
func (p *Population) Stream(v Visitor) *rand.Rand {
	return p.src.Stream("session", v.ID)
}
