// Package consentlab implements the measurement collection service of
// the paper's field experiment (Sections 3.2–3.3): a script embedded
// next to Quantcast's dialog on mitmproxy.org logged the page load
// time, the time the dialog appeared (__cmp('ping')), the time it was
// closed, and the decision (__cmp('getConsentData')), posting them to
// a collection endpoint.
//
// The ethics design is enforced in code: beacons carry only a random
// non-persistent session id generated on page load, the dialog
// configuration, event names and timestamps — no cookies, no user
// agent, no address. Beacons with unexpected fields are rejected
// (data minimization by construction).
package consentlab

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"sync"

	"repro/internal/consent"
)

func jsonReader(data []byte) io.Reader { return bytes.NewReader(data) }

// Event names the instrumented lifecycle points.
type Event string

const (
	// EventDOMContentLoaded is the page load timestamp.
	EventDOMContentLoaded Event = "dcl"
	// EventDialogShown is the __cmp('ping') success timestamp.
	EventDialogShown Event = "shown"
	// EventClosed is the dialog close timestamp; its beacon carries
	// the decision.
	EventClosed Event = "closed"
)

// Beacon is one POSTed measurement. The field set is exhaustive.
type Beacon struct {
	// ID is the random non-persistent id generated on page load.
	ID string `json:"id"`
	// Config is the dialog configuration ("direct-reject" or
	// "more-options").
	Config string `json:"config"`
	Event  Event  `json:"event"`
	// TimeMS is the event time relative to navigation start.
	TimeMS float64 `json:"t"`
	// Decision accompanies EventClosed ("accept" or "reject").
	Decision string `json:"decision,omitempty"`
}

// Collector is the HTTP collection service.
type Collector struct {
	mu       sync.Mutex
	sessions map[string]*consent.Session
	beacons  int64
	rejected int64
}

// NewCollector returns an empty collection service.
func NewCollector() *Collector {
	return &Collector{sessions: make(map[string]*consent.Session)}
}

// ServeHTTP implements the collection endpoint: POST /beacon ingests
// one measurement; GET /stats reports counters.
func (c *Collector) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	switch {
	case r.Method == http.MethodPost && r.URL.Path == "/beacon":
		c.handleBeacon(w, r)
	case r.Method == http.MethodGet && r.URL.Path == "/stats":
		c.handleStats(w)
	default:
		http.NotFound(w, r)
	}
}

func (c *Collector) handleBeacon(w http.ResponseWriter, r *http.Request) {
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, 4<<10))
	// Data minimization: unknown fields are a protocol violation, not
	// data to keep.
	dec.DisallowUnknownFields()
	var b Beacon
	if err := dec.Decode(&b); err != nil {
		c.reject(w, "malformed beacon: "+err.Error())
		return
	}
	if b.ID == "" || b.Event == "" {
		c.reject(w, "missing id or event")
		return
	}
	switch b.Event {
	case EventDOMContentLoaded, EventDialogShown, EventClosed:
	default:
		c.reject(w, "unknown event")
		return
	}

	c.mu.Lock()
	defer c.mu.Unlock()
	c.beacons++
	s := c.sessions[b.ID]
	if s == nil {
		s = &consent.Session{VisitorID: b.ID}
		if b.Config == consent.ConfigMoreOptions.String() {
			s.Config = consent.ConfigMoreOptions
		}
		c.sessions[b.ID] = s
	}
	switch b.Event {
	case EventDOMContentLoaded:
		s.DOMContentLoadedMS = b.TimeMS
	case EventDialogShown:
		s.DialogShownMS = b.TimeMS
	case EventClosed:
		s.ClosedMS = b.TimeMS
		switch b.Decision {
		case "accept":
			s.Decision = consent.DecisionAccept
		case "reject":
			s.Decision = consent.DecisionReject
		}
	}
	w.WriteHeader(http.StatusNoContent)
}

func (c *Collector) reject(w http.ResponseWriter, msg string) {
	c.mu.Lock()
	c.rejected++
	c.mu.Unlock()
	http.Error(w, msg, http.StatusBadRequest)
}

func (c *Collector) handleStats(w http.ResponseWriter) {
	c.mu.Lock()
	defer c.mu.Unlock()
	w.Header().Set("Content-Type", "application/json")
	fmt.Fprintf(w, `{"sessions":%d,"beacons":%d,"rejected":%d}`,
		len(c.sessions), c.beacons, c.rejected)
}

// Sessions returns the assembled sessions for analysis.
func (c *Collector) Sessions() []*consent.Session {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make([]*consent.Session, 0, len(c.sessions))
	for _, s := range c.sessions {
		out = append(out, s)
	}
	return out
}

// Beacons returns the total accepted beacon count ("We logged about
// 120,000 timestamps").
func (c *Collector) Beacons() int64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.beacons
}

// PostSession emits a session's lifecycle as individual beacons to the
// collection endpoint, as the embedded script does.
func PostSession(client *http.Client, baseURL string, s *consent.Session) error {
	post := func(b Beacon) error {
		data, err := json.Marshal(b)
		if err != nil {
			return err
		}
		resp, err := client.Post(baseURL+"/beacon", "application/json", jsonReader(data))
		if err != nil {
			return err
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusNoContent {
			return fmt.Errorf("consentlab: beacon rejected with status %d", resp.StatusCode)
		}
		return nil
	}
	cfg := s.Config.String()
	if err := post(Beacon{ID: s.VisitorID, Config: cfg, Event: EventDOMContentLoaded, TimeMS: s.DOMContentLoadedMS}); err != nil {
		return err
	}
	if s.DialogShownMS > 0 {
		if err := post(Beacon{ID: s.VisitorID, Config: cfg, Event: EventDialogShown, TimeMS: s.DialogShownMS}); err != nil {
			return err
		}
	}
	if s.Decision != consent.DecisionNone {
		if err := post(Beacon{
			ID: s.VisitorID, Config: cfg, Event: EventClosed,
			TimeMS: s.ClosedMS, Decision: s.Decision.String(),
		}); err != nil {
			return err
		}
	}
	return nil
}
