package consentlab

import (
	"math"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"

	"repro/internal/consent"
	"repro/internal/gvl"
)

func smallGVL() *gvl.List {
	h := gvl.GenerateHistory(gvl.HistoryConfig{Seed: 1, Versions: 3, InitialVendors: 40, PeakVendors: 60})
	return &h.Versions[len(h.Versions)-1]
}

// TestEndToEndCollection runs the field experiment, ships every
// session over HTTP as beacons (concurrently, as real visitors would),
// reassembles them server-side, and checks the analysis matches the
// direct path.
func TestEndToEndCollection(t *testing.T) {
	exp := consent.NewFieldExperiment(1, smallGVL())
	exp.Visitors = 2_500
	sessions := exp.Run()
	direct, err := consent.Analyze(sessions)
	if err != nil {
		t.Fatal(err)
	}

	collector := NewCollector()
	ts := httptest.NewServer(collector)
	defer ts.Close()

	var wg sync.WaitGroup
	sem := make(chan struct{}, 16)
	errs := make(chan error, len(sessions))
	for _, s := range sessions {
		wg.Add(1)
		sem <- struct{}{}
		go func(s *consent.Session) {
			defer wg.Done()
			defer func() { <-sem }()
			if err := PostSession(http.DefaultClient, ts.URL, s); err != nil {
				errs <- err
			}
		}(s)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}

	collected, err := consent.Analyze(collector.Sessions())
	if err != nil {
		t.Fatal(err)
	}
	if collected.TotalShown != direct.TotalShown {
		t.Errorf("shown: collected %d vs direct %d", collected.TotalShown, direct.TotalShown)
	}
	if math.Abs(collected.DirectReject.MedianAcceptSec-direct.DirectReject.MedianAcceptSec) > 1e-9 {
		t.Errorf("medians diverge: %v vs %v",
			collected.DirectReject.MedianAcceptSec, direct.DirectReject.MedianAcceptSec)
	}
	if collected.DirectReject.ConsentRate != direct.DirectReject.ConsentRate {
		t.Error("consent rates diverge")
	}
	if collector.Beacons() < int64(len(sessions)) {
		t.Errorf("beacons = %d, want ≥ one per session", collector.Beacons())
	}
}

func TestDataMinimizationEnforced(t *testing.T) {
	collector := NewCollector()
	ts := httptest.NewServer(collector)
	defer ts.Close()

	post := func(body string) int {
		resp, err := http.Post(ts.URL+"/beacon", "application/json", strings.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		return resp.StatusCode
	}
	// Well-formed beacon.
	if got := post(`{"id":"v-1","config":"direct-reject","event":"dcl","t":812}`); got != http.StatusNoContent {
		t.Errorf("valid beacon: status %d", got)
	}
	// A beacon smuggling extra data (a user agent) must be rejected:
	// the collection endpoint enforces the paper's ethics design.
	if got := post(`{"id":"v-2","config":"direct-reject","event":"dcl","t":10,"userAgent":"Mozilla"}`); got != http.StatusBadRequest {
		t.Errorf("over-collecting beacon: status %d, want 400", got)
	}
	// Missing id, unknown event, malformed JSON.
	for _, bad := range []string{
		`{"config":"direct-reject","event":"dcl","t":1}`,
		`{"id":"v-3","event":"keylog","t":1}`,
		`not json`,
	} {
		if got := post(bad); got != http.StatusBadRequest {
			t.Errorf("beacon %q: status %d, want 400", bad, got)
		}
	}
}

func TestStatsEndpoint(t *testing.T) {
	collector := NewCollector()
	ts := httptest.NewServer(collector)
	defer ts.Close()
	if err := PostSession(http.DefaultClient, ts.URL, &consent.Session{
		VisitorID: "v-9", DOMContentLoadedMS: 700, DialogShownMS: 1300,
		ClosedMS: 4600, Decision: consent.DecisionAccept,
	}); err != nil {
		t.Fatal(err)
	}
	resp, err := http.Get(ts.URL + "/stats")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var buf [256]byte
	n, _ := resp.Body.Read(buf[:])
	body := string(buf[:n])
	if !strings.Contains(body, `"sessions":1`) || !strings.Contains(body, `"beacons":3`) {
		t.Errorf("stats = %s", body)
	}
	// Unknown paths 404.
	r2, err := http.Get(ts.URL + "/secrets")
	if err != nil {
		t.Fatal(err)
	}
	r2.Body.Close()
	if r2.StatusCode != http.StatusNotFound {
		t.Error("unknown path must 404")
	}
}
