// Package consensu models the TCF's global consent storage: CMPs
// operating under *.mgr.consensu.org store the user's consent string
// in a cookie on the shared consensu.org domain, so one decision is
// visible to every TCF website the user visits ("CMPs ... share it
// globally across websites", Figure 2; Woods & Böhme call this the
// commodification of consent).
//
// The package implements the shared cookie jar, the CookieAccess
// endpoint the paper queried to identify repeat visitors ("manually
// fetching https://api.quantcast.mgr.consensu.org/CookieAccess, which
// returns the user's existing Quantcast TCF cookie"), and the
// re-prompt rule: when the Global Vendor List gains vendors or
// purposes, users must be prompted again to obtain additional consent
// (Section 2.2).
package consensu

import (
	"errors"
	"sync"
	"time"

	"repro/internal/tcf"
)

// CookieName is the TCF v1 global cookie name.
const CookieName = "euconsent"

// Store is the shared consent-cookie store, keyed by user. It is safe
// for concurrent use (many simulated page loads write concurrently).
type Store struct {
	mu      sync.RWMutex
	cookies map[string]*record
}

type record struct {
	encoded string
	decoded *tcf.ConsentString
}

// NewStore returns an empty store.
func NewStore() *Store {
	return &Store{cookies: make(map[string]*record)}
}

// ErrNoCookie is returned by CookieAccess for users without a stored
// consent decision.
var ErrNoCookie = errors.New("consensu: no consent cookie stored")

// Set stores a user's consent string, as a CMP does when the dialog
// closes. The string is validated by decoding it.
func (s *Store) Set(userID, consentString string) error {
	decoded, err := tcf.Decode(consentString)
	if err != nil {
		return err
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	s.cookies[userID] = &record{encoded: consentString, decoded: decoded}
	return nil
}

// CookieAccess returns the user's stored consent string — the endpoint
// the paper's measurement script queried to skip repeat visitors.
func (s *Store) CookieAccess(userID string) (string, error) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	r, ok := s.cookies[userID]
	if !ok {
		return "", ErrNoCookie
	}
	return r.encoded, nil
}

// Consent returns the decoded consent string, or nil.
func (s *Store) Consent(userID string) *tcf.ConsentString {
	s.mu.RLock()
	defer s.mu.RUnlock()
	if r, ok := s.cookies[userID]; ok {
		return r.decoded
	}
	return nil
}

// Len returns the number of users with stored consent.
func (s *Store) Len() int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return len(s.cookies)
}

// Delete removes a user's cookie (browser cookie clearing).
func (s *Store) Delete(userID string) {
	s.mu.Lock()
	defer s.mu.Unlock()
	delete(s.cookies, userID)
}

// RepromptReason explains why a user must see a new consent dialog.
type RepromptReason int

const (
	// NoReprompt: the stored consent still covers the current list.
	NoReprompt RepromptReason = iota
	// RepromptNoConsent: no decision stored yet.
	RepromptNoConsent
	// RepromptNewVendors: the GVL gained vendors beyond the stored
	// string's MaxVendorID ("If the list is updated with new vendors,
	// users are prompted with a new dialogue").
	RepromptNewVendors
	// RepromptNewPurposes: the dialog requests purposes the stored
	// string does not mention.
	RepromptNewPurposes
)

func (r RepromptReason) String() string {
	switch r {
	case NoReprompt:
		return "no-reprompt"
	case RepromptNoConsent:
		return "no-consent-stored"
	case RepromptNewVendors:
		return "new-vendors"
	case RepromptNewPurposes:
		return "new-purposes"
	default:
		return "unknown"
	}
}

// NeedsReprompt decides whether a user with the stored consent must be
// shown a dialog again for a site requesting the given vendor-list
// state.
func (s *Store) NeedsReprompt(userID string, currentMaxVendorID int, requestedPurposes []int) RepromptReason {
	c := s.Consent(userID)
	if c == nil {
		return RepromptNoConsent
	}
	if currentMaxVendorID > c.MaxVendorID {
		return RepromptNewVendors
	}
	for _, p := range requestedPurposes {
		if _, mentioned := c.PurposesAllowed[p]; !mentioned && p <= tcf.NumPurposes {
			// A purpose absent from the map was never presented; the
			// zero value false means "denied" only if it was shown.
			// Stored strings produced by our dialogs always mention
			// every presented purpose, so absence means a new purpose.
			if !c.PurposesAllowed[p] {
				return RepromptNewPurposes
			}
		}
	}
	return NoReprompt
}

// Sharing statistics for the coalition analysis.

// CoalitionStats summarizes how consent collected on one site is
// reused across the CMP's customer base.
type CoalitionStats struct {
	// Users is the number of users with a stored decision.
	Users int
	// ConsentingUsers granted at least one purpose.
	ConsentingUsers int
	// MeanVendorsGranted is the average number of vendors granted by
	// consenting users.
	MeanVendorsGranted float64
}

// Stats computes coalition statistics over the store.
func (s *Store) Stats() CoalitionStats {
	s.mu.RLock()
	defer s.mu.RUnlock()
	st := CoalitionStats{Users: len(s.cookies)}
	totalVendors := 0
	for _, r := range s.cookies {
		granted := false
		for _, ok := range r.decoded.PurposesAllowed {
			if ok {
				granted = true
				break
			}
		}
		if granted {
			st.ConsentingUsers++
			totalVendors += len(r.decoded.ConsentedVendors())
		}
	}
	if st.ConsentingUsers > 0 {
		st.MeanVendorsGranted = float64(totalVendors) / float64(st.ConsentingUsers)
	}
	return st
}

// TouchUpdated refreshes a stored string's LastUpdated stamp, as CMPs
// do when re-confirming existing consent.
func (s *Store) TouchUpdated(userID string, now time.Time) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	r, ok := s.cookies[userID]
	if !ok {
		return ErrNoCookie
	}
	r.decoded.LastUpdated = now
	enc, err := r.decoded.Encode()
	if err != nil {
		return err
	}
	r.encoded = enc
	return nil
}
