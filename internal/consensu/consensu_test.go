package consensu

import (
	"fmt"
	"sync"
	"testing"
	"time"

	"repro/internal/tcf"
)

func encoded(t *testing.T, maxVendor int, purposes ...int) string {
	t.Helper()
	c := tcf.New(time.Date(2020, 5, 1, 0, 0, 0, 0, time.UTC))
	c.MaxVendorID = maxVendor
	for _, p := range purposes {
		c.PurposesAllowed[p] = true
	}
	c.SetAllVendors(maxVendor, len(purposes) > 0)
	s, err := c.Encode()
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestStoreRoundTrip(t *testing.T) {
	s := NewStore()
	if _, err := s.CookieAccess("u1"); err != ErrNoCookie {
		t.Error("empty store must return ErrNoCookie")
	}
	cookie := encoded(t, 100, 1, 2, 3, 4, 5)
	if err := s.Set("u1", cookie); err != nil {
		t.Fatal(err)
	}
	got, err := s.CookieAccess("u1")
	if err != nil || got != cookie {
		t.Errorf("CookieAccess = %q, %v", got, err)
	}
	if c := s.Consent("u1"); c == nil || c.MaxVendorID != 100 {
		t.Error("decoded consent broken")
	}
	if s.Len() != 1 {
		t.Error("Len")
	}
	s.Delete("u1")
	if s.Len() != 0 || s.Consent("u1") != nil {
		t.Error("Delete broken")
	}
}

func TestSetRejectsGarbage(t *testing.T) {
	s := NewStore()
	if err := s.Set("u1", "!!!"); err == nil {
		t.Error("invalid consent strings must be rejected")
	}
}

func TestNeedsReprompt(t *testing.T) {
	s := NewStore()
	if got := s.NeedsReprompt("u1", 100, []int{1}); got != RepromptNoConsent {
		t.Errorf("fresh user: %v", got)
	}
	// Stored consent covering vendors 1..100 and all five purposes.
	if err := s.Set("u1", encoded(t, 100, 1, 2, 3, 4, 5)); err != nil {
		t.Fatal(err)
	}
	if got := s.NeedsReprompt("u1", 100, []int{1, 2}); got != NoReprompt {
		t.Errorf("covered request: %v", got)
	}
	// The GVL grew: additional consent needed.
	if got := s.NeedsReprompt("u1", 150, []int{1}); got != RepromptNewVendors {
		t.Errorf("grown GVL: %v", got)
	}
	// A user whose stored string lacks a purpose must be re-prompted.
	if err := s.Set("u2", encoded(t, 100, 1, 2)); err != nil {
		t.Fatal(err)
	}
	if got := s.NeedsReprompt("u2", 100, []int{1, 2, 4}); got != RepromptNewPurposes {
		t.Errorf("new purpose: %v", got)
	}
	for _, r := range []RepromptReason{NoReprompt, RepromptNoConsent, RepromptNewVendors, RepromptNewPurposes} {
		if r.String() == "unknown" || r.String() == "" {
			t.Error("reason names")
		}
	}
}

func TestStats(t *testing.T) {
	s := NewStore()
	if err := s.Set("accepter", encoded(t, 50, 1, 2, 3, 4, 5)); err != nil {
		t.Fatal(err)
	}
	// Rejecting user: no purposes, no vendors.
	if err := s.Set("rejecter", encoded(t, 50)); err != nil {
		t.Fatal(err)
	}
	st := s.Stats()
	if st.Users != 2 || st.ConsentingUsers != 1 {
		t.Errorf("stats: %+v", st)
	}
	if st.MeanVendorsGranted != 50 {
		t.Errorf("mean vendors = %v", st.MeanVendorsGranted)
	}
}

func TestTouchUpdated(t *testing.T) {
	s := NewStore()
	if err := s.TouchUpdated("missing", time.Now()); err != ErrNoCookie {
		t.Error("touching a missing cookie must fail")
	}
	if err := s.Set("u1", encoded(t, 10, 1)); err != nil {
		t.Fatal(err)
	}
	now := time.Date(2020, 9, 1, 12, 0, 0, 0, time.UTC)
	if err := s.TouchUpdated("u1", now); err != nil {
		t.Fatal(err)
	}
	c := s.Consent("u1")
	if !c.LastUpdated.Equal(now) {
		t.Errorf("LastUpdated = %v", c.LastUpdated)
	}
	// The re-encoded cookie must still parse.
	enc, err := s.CookieAccess("u1")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := tcf.Decode(enc); err != nil {
		t.Fatal(err)
	}
}

func TestStoreConcurrent(t *testing.T) {
	s := NewStore()
	cookie := encoded(t, 20, 1)
	var wg sync.WaitGroup
	for i := 0; i < 32; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			id := fmt.Sprintf("user-%d", i%8)
			for j := 0; j < 50; j++ {
				_ = s.Set(id, cookie)
				_, _ = s.CookieAccess(id)
				_ = s.Consent(id)
				s.Stats()
			}
		}(i)
	}
	wg.Wait()
	if s.Len() != 8 {
		t.Errorf("Len = %d", s.Len())
	}
}
