// Package gvlclient downloads the Global Vendor List history over
// HTTP, as the paper did: "we systematically downloaded all 215
// previously published versions of the GVL from
// https://vendorlist.consensu.org/vXXX/vendor-list.json and verified
// their accuracy using the Internet Wayback Machine" (Section 3.4).
//
// The client walks version numbers upward until a gap of misses,
// validates each document (version echo, date monotonicity), and
// produces a content-hash manifest that a second, independent source —
// in our case a second fetch; in the paper, the Wayback Machine — can
// be verified against.
package gvlclient

import (
	"context"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"io"
	"net"
	"net/http"
	"time"

	"repro/internal/gvl"
)

// Client fetches vendor lists.
type Client struct {
	http *http.Client
	// base is the scheme+host to fetch from, e.g.
	// "http://vendorlist.consensu.org".
	base string
	// MaxMisses is how many consecutive 404s end the walk.
	MaxMisses int
}

// New returns a client fetching from base. If serverAddr is non-empty,
// every hostname resolves to it (the test-fixture DNS override used
// with webserve).
func New(base, serverAddr string) *Client {
	transport := http.DefaultTransport
	if serverAddr != "" {
		dialer := &net.Dialer{Timeout: 5 * time.Second}
		transport = &http.Transport{
			DialContext: func(ctx context.Context, network, addr string) (net.Conn, error) {
				return dialer.DialContext(ctx, network, serverAddr)
			},
		}
	}
	return &Client{
		http:      &http.Client{Transport: transport, Timeout: 15 * time.Second},
		base:      base,
		MaxMisses: 3,
	}
}

// FetchVersion downloads and validates one versioned list.
func (c *Client) FetchVersion(ctx context.Context, version int) (*gvl.List, []byte, error) {
	url := fmt.Sprintf("%s/v%d/vendor-list.json", c.base, version)
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, url, nil)
	if err != nil {
		return nil, nil, err
	}
	resp, err := c.http.Do(req)
	if err != nil {
		return nil, nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode == http.StatusNotFound {
		return nil, nil, ErrNotPublished{Version: version}
	}
	if resp.StatusCode != http.StatusOK {
		return nil, nil, fmt.Errorf("gvlclient: v%d: status %d", version, resp.StatusCode)
	}
	raw, err := io.ReadAll(io.LimitReader(resp.Body, 16<<20))
	if err != nil {
		return nil, nil, err
	}
	var list gvl.List
	if err := json.Unmarshal(raw, &list); err != nil {
		return nil, nil, fmt.Errorf("gvlclient: v%d: %w", version, err)
	}
	if list.VendorListVersion != version {
		return nil, nil, fmt.Errorf("gvlclient: v%d: document claims version %d",
			version, list.VendorListVersion)
	}
	return &list, raw, nil
}

// ErrNotPublished marks versions the server has never published.
type ErrNotPublished struct{ Version int }

func (e ErrNotPublished) Error() string {
	return fmt.Sprintf("gvlclient: version %d not published", e.Version)
}

// ManifestEntry records one downloaded version for verification.
type ManifestEntry struct {
	Version int       `json:"version"`
	Date    time.Time `json:"date"`
	Vendors int       `json:"vendors"`
	SHA256  string    `json:"sha256"`
}

// History bundles a download run.
type History struct {
	History  *gvl.History
	Manifest []ManifestEntry
}

// FetchAll walks versions from 1 upward, stopping after MaxMisses
// consecutive unpublished versions, and validates the sequence.
func (c *Client) FetchAll(ctx context.Context) (*History, error) {
	out := &History{History: &gvl.History{}}
	misses := 0
	var prev *gvl.List
	for version := 1; ; version++ {
		list, raw, err := c.FetchVersion(ctx, version)
		if err != nil {
			if _, miss := err.(ErrNotPublished); miss {
				misses++
				if misses >= c.MaxMisses {
					break
				}
				continue
			}
			return nil, err
		}
		misses = 0
		if prev != nil && !list.LastUpdated.After(prev.LastUpdated) {
			return nil, fmt.Errorf("gvlclient: v%d not newer than v%d",
				list.VendorListVersion, prev.VendorListVersion)
		}
		sum := sha256.Sum256(raw)
		out.History.Versions = append(out.History.Versions, *list)
		out.Manifest = append(out.Manifest, ManifestEntry{
			Version: list.VendorListVersion,
			Date:    list.LastUpdated,
			Vendors: len(list.Vendors),
			SHA256:  hex.EncodeToString(sum[:]),
		})
		prev = list
	}
	if len(out.History.Versions) == 0 {
		return nil, fmt.Errorf("gvlclient: no versions published at %s", c.base)
	}
	return out, nil
}

// Verify re-fetches every manifest entry and compares content hashes —
// the role the Internet Wayback Machine played for the paper. It
// returns the number of verified entries and fails on any mismatch.
func (c *Client) Verify(ctx context.Context, manifest []ManifestEntry) (int, error) {
	for _, m := range manifest {
		_, raw, err := c.FetchVersion(ctx, m.Version)
		if err != nil {
			return 0, fmt.Errorf("gvlclient: verify v%d: %w", m.Version, err)
		}
		sum := sha256.Sum256(raw)
		if hex.EncodeToString(sum[:]) != m.SHA256 {
			return 0, fmt.Errorf("gvlclient: verify v%d: content hash mismatch", m.Version)
		}
	}
	return len(manifest), nil
}
