package gvlclient

import (
	"context"
	"net/http/httptest"
	"net/url"
	"testing"

	"repro/internal/gvl"
	"repro/internal/webserve"
	"repro/internal/webworld"
)

func startServer(t *testing.T, versions int) (*gvl.History, *Client) {
	t.Helper()
	world := webworld.New(webworld.Config{Seed: 1, Domains: 200})
	history := gvl.GenerateHistory(gvl.HistoryConfig{
		Seed: 1, Versions: versions, InitialVendors: 40, PeakVendors: 90,
	})
	ts := httptest.NewServer(webserve.NewServer(world, history))
	t.Cleanup(ts.Close)
	u, err := url.Parse(ts.URL)
	if err != nil {
		t.Fatal(err)
	}
	return history, New("http://vendorlist.consensu.org", u.Host)
}

func TestFetchVersion(t *testing.T) {
	history, client := startServer(t, 12)
	list, raw, err := client.FetchVersion(context.Background(), 7)
	if err != nil {
		t.Fatal(err)
	}
	if list.VendorListVersion != 7 || len(raw) == 0 {
		t.Fatalf("list: %+v", list)
	}
	want := &history.Versions[6]
	if len(list.Vendors) != len(want.Vendors) {
		t.Errorf("vendors = %d, want %d", len(list.Vendors), len(want.Vendors))
	}
	if _, _, err := client.FetchVersion(context.Background(), 99); err == nil {
		t.Error("unpublished version must fail")
	} else if _, ok := err.(ErrNotPublished); !ok {
		t.Errorf("want ErrNotPublished, got %v", err)
	}
}

func TestFetchAll(t *testing.T) {
	history, client := startServer(t, 15)
	got, err := client.FetchAll(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if len(got.History.Versions) != 15 {
		t.Fatalf("fetched %d versions, want 15", len(got.History.Versions))
	}
	if len(got.Manifest) != 15 {
		t.Fatalf("manifest has %d entries", len(got.Manifest))
	}
	for i, m := range got.Manifest {
		if m.Version != i+1 || m.SHA256 == "" || m.Vendors == 0 {
			t.Errorf("manifest[%d] = %+v", i, m)
		}
	}
	// The downloaded history supports the same analyses as the
	// generated one.
	series := got.History.PurposeSeries()
	if len(series) != 15 {
		t.Fatal("downloaded history unusable")
	}
	if series[14].VendorCount != len(history.Versions[14].Vendors) {
		t.Error("downloaded vendor counts diverge from the source")
	}
}

func TestVerify(t *testing.T) {
	_, client := startServer(t, 8)
	got, err := client.FetchAll(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	n, err := client.Verify(context.Background(), got.Manifest)
	if err != nil || n != 8 {
		t.Fatalf("verify: n=%d err=%v", n, err)
	}
	// Tamper with a hash: verification must fail.
	got.Manifest[3].SHA256 = "deadbeef"
	if _, err := client.Verify(context.Background(), got.Manifest); err == nil {
		t.Error("tampered manifest must fail verification")
	}
}

func TestFetchAllEmptyServer(t *testing.T) {
	world := webworld.New(webworld.Config{Seed: 1, Domains: 100})
	ts := httptest.NewServer(webserve.NewServer(world, nil))
	t.Cleanup(ts.Close)
	u, _ := url.Parse(ts.URL)
	client := New("http://vendorlist.consensu.org", u.Host)
	if _, err := client.FetchAll(context.Background()); err == nil {
		t.Error("server without a GVL must fail")
	}
}
