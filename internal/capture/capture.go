// Package capture defines the crawl-capture schema shared by the
// crawler, the detector, and the analyses, mirroring the data points
// Netograph collects for every capture (Section 3.2): HTTP requests,
// cookies, storage records, and a screenshot. Page contents are not
// stored for the social-media dataset; the DOM tree and full-page
// screenshots are stored for toplist crawls only.
package capture

import (
	"sync"

	"repro/internal/simtime"
	"repro/internal/webworld"
)

// Request is one logged HTTP request of a capture.
type Request struct {
	Host            string
	Path            string
	Status          int
	BytesCompressed int
	BytesRaw        int
}

// Vantage identifies the measurement origin of a capture.
type Vantage struct {
	// Name is a stable label, e.g. "us-cloud", "eu-cloud",
	// "eu-university".
	Name string
	Geo  webworld.Geo
	// Cloud marks public-cloud address space.
	Cloud bool
}

// Standard vantage points (Table 1 columns).
var (
	USCloud      = Vantage{Name: "us-cloud", Geo: webworld.GeoUS, Cloud: true}
	EUCloud      = Vantage{Name: "eu-cloud", Geo: webworld.GeoEU, Cloud: true}
	EUUniversity = Vantage{Name: "eu-university", Geo: webworld.GeoEU, Cloud: false}
)

// Capture is one browser crawl of one URL.
type Capture struct {
	SeedURL     string
	FinalURL    string
	FinalDomain string // effective second-level domain of the final URL
	Day         simtime.Day
	Vantage     Vantage
	// Config is the browser configuration label ("default",
	// "extended-timeout", "lang-de", "lang-en-gb").
	Config string
	Status int
	// Requests logs every HTTP request including the main document.
	Requests []Request
	Cookies  []webworld.Cookie
	// Storage lists the IndexedDB/LocalStorage/SessionStorage/WebSQL
	// records saved for the capture.
	Storage []webworld.StorageRecord
	// ScreenshotText is the OCR-equivalent visible text of the
	// above-the-fold screenshot.
	ScreenshotText string
	// DOM is the serialized DOM tree; only stored for toplist crawls.
	DOM string
	// TimedOut marks captures cut short by the crawler's timeouts.
	TimedOut bool
	// Failed marks captures that produced no usable response.
	Failed bool
	Error  string
}

// Sink consumes captures as they are produced. Implementations must be
// safe for concurrent use.
type Sink interface {
	Record(c *Capture)
}

// MultiSink fans captures out to several sinks.
type MultiSink []Sink

// Record implements Sink.
func (m MultiSink) Record(c *Capture) {
	for _, s := range m {
		s.Record(c)
	}
}

// MemStore retains all captures in memory with a by-domain index. It
// backs the toplist campaigns, whose volume is small; the social-media
// pipeline streams into aggregating sinks instead.
type MemStore struct {
	mu       sync.Mutex
	captures []*Capture
	byDomain map[string][]*Capture
}

// NewMemStore returns an empty store.
func NewMemStore() *MemStore {
	return &MemStore{byDomain: make(map[string][]*Capture)}
}

// Record implements Sink.
func (s *MemStore) Record(c *Capture) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.captures = append(s.captures, c)
	if c.FinalDomain != "" {
		s.byDomain[c.FinalDomain] = append(s.byDomain[c.FinalDomain], c)
	}
}

// RecordAll appends a batch of captures in order under a single lock
// acquisition. Workers that buffer captures locally use this to avoid
// per-capture lock traffic on a shared store.
func (s *MemStore) RecordAll(caps []*Capture) {
	s.mu.Lock()
	defer s.mu.Unlock()
	for _, c := range caps {
		s.captures = append(s.captures, c)
		if c.FinalDomain != "" {
			s.byDomain[c.FinalDomain] = append(s.byDomain[c.FinalDomain], c)
		}
	}
}

// Merge appends every capture of `from` to s, preserving from's
// recording order. The campaign engine records into private per-worker
// stores and merges them in shard order once the pool drains, so the
// merged store is byte-identical to a serial run. `from` must be
// quiescent (no concurrent Record calls on it).
func (s *MemStore) Merge(from *MemStore) {
	from.mu.Lock()
	caps := from.captures
	from.mu.Unlock()
	s.RecordAll(caps)
}

// Len returns the number of stored captures.
func (s *MemStore) Len() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.captures)
}

// All returns all captures. The returned slice is a snapshot copy; the
// captures themselves are shared.
func (s *MemStore) All() []*Capture {
	s.mu.Lock()
	defer s.mu.Unlock()
	return append([]*Capture(nil), s.captures...)
}

// ByDomain returns the captures whose final registrable domain is d.
func (s *MemStore) ByDomain(d string) []*Capture {
	s.mu.Lock()
	defer s.mu.Unlock()
	return append([]*Capture(nil), s.byDomain[d]...)
}

// Domains returns all observed final domains.
func (s *MemStore) Domains() []string {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]string, 0, len(s.byDomain))
	for d := range s.byDomain {
		out = append(out, d)
	}
	return out
}
