package capture

import (
	"fmt"
	"sync"
	"testing"
)

func TestMemStore(t *testing.T) {
	s := NewMemStore()
	if s.Len() != 0 {
		t.Fatal("fresh store not empty")
	}
	s.Record(&Capture{FinalDomain: "a.com"})
	s.Record(&Capture{FinalDomain: "a.com"})
	s.Record(&Capture{FinalDomain: "b.com"})
	s.Record(&Capture{Failed: true}) // no final domain: kept, unindexed
	if s.Len() != 4 {
		t.Errorf("Len = %d", s.Len())
	}
	if got := len(s.ByDomain("a.com")); got != 2 {
		t.Errorf("ByDomain(a.com) = %d", got)
	}
	if got := len(s.Domains()); got != 2 {
		t.Errorf("Domains = %d", got)
	}
	if got := len(s.All()); got != 4 {
		t.Errorf("All = %d", got)
	}
}

func TestMemStoreConcurrent(t *testing.T) {
	s := NewMemStore()
	var wg sync.WaitGroup
	for i := 0; i < 50; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			for j := 0; j < 20; j++ {
				s.Record(&Capture{FinalDomain: fmt.Sprintf("d%d.com", i%10)})
			}
		}(i)
	}
	wg.Wait()
	if s.Len() != 1000 {
		t.Errorf("Len = %d, want 1000", s.Len())
	}
	total := 0
	for _, d := range s.Domains() {
		total += len(s.ByDomain(d))
	}
	if total != 1000 {
		t.Errorf("indexed total = %d", total)
	}
}

func TestMultiSink(t *testing.T) {
	a, b := NewMemStore(), NewMemStore()
	MultiSink{a, b}.Record(&Capture{FinalDomain: "x.com"})
	if a.Len() != 1 || b.Len() != 1 {
		t.Error("MultiSink must fan out")
	}
}

func TestVantages(t *testing.T) {
	if USCloud.Name == EUCloud.Name || EUCloud.Name == EUUniversity.Name {
		t.Error("vantage names must be distinct")
	}
	if !USCloud.Cloud || !EUCloud.Cloud || EUUniversity.Cloud {
		t.Error("cloud flags wrong")
	}
}
