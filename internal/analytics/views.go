// Package analytics maintains the paper's analyses as incrementally
// updated materialized views over a live capture stream. The batch
// pipeline (cmd/analyze -store) and the long-lived service
// (cmd/analyzed) both run on the Engine in this package, so their
// answers agree byte-for-byte at every ingest commit cursor — the
// invariant the prefix-replay test enforces (DESIGN.md §14).
package analytics

import (
	"fmt"
	"time"

	"repro/internal/analysis"
	"repro/internal/cmps"
	"repro/internal/gvl"
	"repro/internal/simtime"
)

// View names served by the engine.
const (
	ViewAdoption    = "adoption"
	ViewCoverage    = "coverage"
	ViewMarketShare = "marketshare"
	ViewGVL         = "gvl"
)

// ViewNames lists every materialized view, in serving order.
func ViewNames() []string {
	return []string{ViewAdoption, ViewCoverage, ViewMarketShare, ViewGVL}
}

// ViewInfo is one /views catalog entry.
type ViewInfo struct {
	Name        string `json:"name"`
	Description string `json:"description"`
	Cursor      int64  `json:"cursor"`
}

func describeView(name string) string {
	switch name {
	case ViewAdoption:
		return "CMP adoption over time with detected spikes (Figure 6)"
	case ViewCoverage:
		return "per-month and cumulative vantage/config tables (Tables 1, A.3)"
	case ViewMarketShare:
		return "per-CMP domain share series and EU/UK TLD share (Section 4.1)"
	case ViewGVL:
		return "GVL vendor and purpose growth series (Figure 7)"
	default:
		return ""
	}
}

// cmpCounts re-keys a per-CMP map by CMP name so the JSON form is
// self-describing and key order is deterministic.
func cmpCounts(m map[cmps.ID]int) map[string]int {
	out := make(map[string]int, len(m))
	for id, n := range m {
		out[id.String()] = n
	}
	return out
}

func cmpShares(m map[cmps.ID]float64) map[string]float64 {
	out := make(map[string]float64, len(m))
	for id, v := range m {
		out[id.String()] = v
	}
	return out
}

// AdoptionView is the adoption materialized view: the Figure 6 series
// sampled over the whole observation window, plus detected spikes.
type AdoptionView struct {
	View     string              `json:"view"`
	Cursor   int64               `json:"cursor"`
	Domains  int                 `json:"domains"`
	StepDays int                 `json:"step_days"`
	Points   []AdoptionViewPoint `json:"points"`
	Spikes   []SpikeView         `json:"spikes"`
}

// AdoptionViewPoint is one sampled day of the adoption series.
type AdoptionViewPoint struct {
	Day    int            `json:"day"`
	Date   string         `json:"date"`
	Total  int            `json:"total"`
	Counts map[string]int `json:"counts"`
}

// SpikeView is one detected adoption spike.
type SpikeView struct {
	Month  int     `json:"month"`
	Date   string  `json:"date"`
	Growth int     `json:"growth"`
	Ratio  float64 `json:"ratio"`
}

func buildAdoptionView(p *analysis.PresenceDB, cursor int64, stepDays int, spikeRatio float64) *AdoptionView {
	domains := p.Domains()
	points := analysis.AdoptionOverTime(p, domains, stepDays)
	v := &AdoptionView{
		View:     ViewAdoption,
		Cursor:   cursor,
		Domains:  len(domains),
		StepDays: stepDays,
		Points:   make([]AdoptionViewPoint, 0, len(points)),
		Spikes:   []SpikeView{},
	}
	for _, pt := range points {
		v.Points = append(v.Points, AdoptionViewPoint{
			Day:    int(pt.Day),
			Date:   pt.Day.String(),
			Total:  pt.Total,
			Counts: cmpCounts(pt.Counts),
		})
	}
	for _, sp := range analysis.DetectAdoptionSpikes(points, spikeRatio) {
		v.Spikes = append(v.Spikes, SpikeView{
			Month:  int(sp.Month),
			Date:   sp.Month.String(),
			Growth: sp.Growth,
			Ratio:  sp.Ratio,
		})
	}
	return v
}

// TableView is a vantage table in JSON form: per-CMP counts by
// vantage/config column, column totals, and coverage relative to the
// best column.
type TableView struct {
	Configs  []string                  `json:"configs"`
	Counts   map[string]map[string]int `json:"counts"`
	Totals   map[string]int            `json:"totals"`
	Coverage map[string]float64        `json:"coverage"`
}

func tableView(t *analysis.VantageTable) TableView {
	v := TableView{
		Configs:  t.Configs,
		Counts:   make(map[string]map[string]int, len(t.Counts)),
		Totals:   t.Totals,
		Coverage: t.Coverage,
	}
	if v.Configs == nil {
		v.Configs = []string{}
	}
	for id, byConfig := range t.Counts {
		v.Counts[id.String()] = byConfig
	}
	return v
}

// CoverageView is the coverage materialized view: one vantage table
// per folded calendar month plus the cumulative whole-window table.
type CoverageView struct {
	View       string              `json:"view"`
	Cursor     int64               `json:"cursor"`
	Months     []CoverageMonthView `json:"months"`
	Cumulative TableView           `json:"cumulative"`
}

// CoverageMonthView is one month's table.
type CoverageMonthView struct {
	Month int       `json:"month"`
	Date  string    `json:"date"`
	Table TableView `json:"table"`
}

func buildCoverageView(f *analysis.CoverageFold, cursor int64) *CoverageView {
	v := &CoverageView{
		View:       ViewCoverage,
		Cursor:     cursor,
		Months:     []CoverageMonthView{},
		Cumulative: tableView(f.Cumulative()),
	}
	for _, month := range f.Months() {
		v.Months = append(v.Months, CoverageMonthView{
			Month: int(month),
			Date:  month.String(),
			Table: tableView(f.MonthTable(month)),
		})
	}
	return v
}

// MarketShareView is the market-share materialized view: per-CMP
// domain shares sampled monthly, plus the end-of-window EU/UK TLD
// share per CMP.
type MarketShareView struct {
	View   string                 `json:"view"`
	Cursor int64                  `json:"cursor"`
	Points []MarketSharePointView `json:"points"`
	EUUK   map[string]float64     `json:"euuk_share"`
}

// MarketSharePointView is one sampled day of the share series.
type MarketSharePointView struct {
	Day     int                `json:"day"`
	Date    string             `json:"date"`
	WithCMP int                `json:"with_cmp"`
	Counts  map[string]int     `json:"counts"`
	Shares  map[string]float64 `json:"shares"`
}

func buildMarketShareView(p *analysis.PresenceDB, cursor int64) *MarketShareView {
	days := analysis.MonthlyDays(0, simtime.Day(simtime.NumDays-1))
	v := &MarketShareView{
		View:   ViewMarketShare,
		Cursor: cursor,
		Points: make([]MarketSharePointView, 0, len(days)),
		EUUK:   cmpShares(analysis.EUUKShare(p, simtime.Day(simtime.NumDays-1))),
	}
	for _, pt := range analysis.CMPShareSeries(p, days) {
		v.Points = append(v.Points, MarketSharePointView{
			Day:     int(pt.Day),
			Date:    pt.Day.String(),
			WithCMP: pt.WithCMP,
			Counts:  cmpCounts(pt.Count),
			Shares:  cmpShares(pt.Share),
		})
	}
	return v
}

// GVLView is the GVL materialized view: the Figure 7 vendor/purpose
// growth series. It derives from the deterministic GVL history seed,
// not the capture stream, so its payload is constant across cursors
// apart from the cursor stamp.
type GVLView struct {
	View   string         `json:"view"`
	Cursor int64          `json:"cursor"`
	Points []GVLViewPoint `json:"points"`
}

// GVLViewPoint is one GVL version's datum.
type GVLViewPoint struct {
	Version     int            `json:"version"`
	Date        string         `json:"date"`
	VendorCount int            `json:"vendor_count"`
	Consent     map[string]int `json:"consent"`
	LegInt      map[string]int `json:"leg_int"`
}

func purposeKeys(m map[int]int) map[string]int {
	out := make(map[string]int, len(m))
	for p, n := range m {
		out[fmt.Sprintf("%d", p)] = n
	}
	return out
}

func buildGVLPoints(h *gvl.History) []GVLViewPoint {
	series := h.PurposeSeries()
	points := make([]GVLViewPoint, 0, len(series))
	for _, pt := range series {
		points = append(points, GVLViewPoint{
			Version:     pt.Version,
			Date:        pt.Date.UTC().Format(time.RFC3339),
			VendorCount: pt.VendorCount,
			Consent:     purposeKeys(pt.Consent),
			LegInt:      purposeKeys(pt.LegInt),
		})
	}
	return points
}
