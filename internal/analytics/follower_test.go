package analytics

import (
	"bytes"
	"context"
	"net/http/httptest"
	"testing"
	"time"

	"repro/internal/capstore"
	"repro/internal/capture"
)

// fillStore appends captures [from, to) of the deterministic stream.
func fillStore(store *capstore.Store, from, to int) {
	for i := from; i < to; i++ {
		store.Record(testCapture(i))
	}
}

// TestFollowerBootstrapAndResume is the crash-restart story in
// miniature: bootstrap from a store, checkpoint, "crash", restart a
// fresh follower from the checkpoint, and verify it folds only the
// suffix yet serves bytes identical to an uninterrupted batch run.
func TestFollowerBootstrapAndResume(t *testing.T) {
	const nshards = 3
	dir := t.TempDir()
	ckpt := t.TempDir()
	store, err := capstore.Create(dir, nshards)
	if err != nil {
		t.Fatal(err)
	}
	defer store.Close()
	fillStore(store, 0, 150)

	eng := NewEngine(testConfig())
	f := NewFollower(FollowerConfig{
		Source:        StoreSource{Store: store},
		Engine:        eng,
		CheckpointDir: ckpt,
	})
	if cur, err := f.Resume(); err != nil || cur != -1 {
		t.Fatalf("cold resume: cursor %d, err %v", cur, err)
	}
	if err := f.Bootstrap(); err != nil {
		t.Fatal(err)
	}
	if eng.Cursor() != 150 {
		t.Fatalf("bootstrap cursor = %d, want 150", eng.Cursor())
	}
	if lag := f.Lag(); lag != 0 {
		t.Fatalf("lag after bootstrap = %d, want 0", lag)
	}

	// "Crash": drop the follower and engine on the floor. More records
	// arrive while we are down.
	fillStore(store, 150, 220)

	eng2 := NewEngine(testConfig())
	f2 := NewFollower(FollowerConfig{
		Source:        StoreSource{Store: store},
		Engine:        eng2,
		CheckpointDir: ckpt,
	})
	cur, err := f2.Resume()
	if err != nil {
		t.Fatal(err)
	}
	if cur != 150 {
		t.Fatalf("resumed cursor = %d, want 150 (the bootstrap checkpoint)", cur)
	}
	applied, err := f2.Sweep()
	if err != nil {
		t.Fatal(err)
	}
	if applied != 70 {
		t.Fatalf("sweep applied %d records, want exactly the 70-record suffix", applied)
	}
	if eng2.Cursor() != 220 {
		t.Fatalf("cursor after resume+sweep = %d, want 220", eng2.Cursor())
	}

	// Byte-identity against a never-interrupted batch run.
	batch, err := BatchEngine(store, testConfig())
	if err != nil {
		t.Fatal(err)
	}
	want, err := batch.SnapshotAll()
	if err != nil {
		t.Fatal(err)
	}
	got, err := eng2.SnapshotAll()
	if err != nil {
		t.Fatal(err)
	}
	for name, w := range want {
		if !bytes.Equal(got[name], w) {
			t.Errorf("view %s: resumed follower diverged from batch", name)
		}
	}
}

// TestFollowerRunWritesFinalCheckpoint proves the shutdown path: Run
// checkpoints on context cancellation so the next start resumes at
// the stop cursor.
func TestFollowerRunWritesFinalCheckpoint(t *testing.T) {
	store, err := capstore.Create(t.TempDir(), 2)
	if err != nil {
		t.Fatal(err)
	}
	defer store.Close()
	fillStore(store, 0, 40)

	ckpt := t.TempDir()
	eng := NewEngine(testConfig())
	f := NewFollower(FollowerConfig{
		Source:        StoreSource{Store: store},
		Engine:        eng,
		CheckpointDir: ckpt,
		PollInterval:  time.Millisecond,
	})
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() { done <- f.Run(ctx) }()
	deadline := time.Now().Add(5 * time.Second)
	for eng.Cursor() < 40 {
		if time.Now().After(deadline) {
			t.Fatalf("follower never caught up (cursor %d)", eng.Cursor())
		}
		time.Sleep(time.Millisecond)
	}
	cancel()
	if err := <-done; err != context.Canceled {
		t.Fatalf("Run returned %v, want context.Canceled", err)
	}
	if cur, _, err := LoadLatestCheckpoint(ckpt); err != nil || cur != 40 {
		t.Fatalf("final checkpoint cursor = %d (err %v), want 40", cur, err)
	}
}

// TestFollowerLagCountsUnappliedSuffix checks the lag gauge source.
func TestFollowerLagCountsUnappliedSuffix(t *testing.T) {
	store, err := capstore.Create(t.TempDir(), 2)
	if err != nil {
		t.Fatal(err)
	}
	defer store.Close()
	eng := NewEngine(testConfig())
	f := NewFollower(FollowerConfig{Source: StoreSource{Store: store}, Engine: eng})
	if err := f.Bootstrap(); err != nil {
		t.Fatal(err)
	}
	fillStore(store, 0, 25)
	// Lag is measured against the counts seen by the last sweep; a
	// fresh sweep both observes and drains the suffix.
	if applied, err := f.Sweep(); err != nil || applied != 25 {
		t.Fatalf("sweep: applied %d, err %v", applied, err)
	}
	if lag := f.Lag(); lag != 0 {
		t.Fatalf("lag after sweep = %d, want 0", lag)
	}
}

// TestClientSourceFollowsLiveServer runs the real HTTP path: a capd-
// style ingest server, a ClientSource follower, and byte-identity at
// the end of the stream.
func TestClientSourceFollowsLiveServer(t *testing.T) {
	const nshards = 2
	store, err := capstore.Create(t.TempDir(), nshards)
	if err != nil {
		t.Fatal(err)
	}
	defer store.Close()
	ing, err := capstore.NewIngester(store, capstore.IngestConfig{})
	if err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(capstore.NewHandler(store))
	t.Cleanup(srv.Close)

	var caps []*capture.Capture
	for i := 0; i < 60; i++ {
		caps = append(caps, testCapture(i))
	}
	ing.IngestBatch(caps)

	eng := NewEngine(testConfig())
	f := NewFollower(FollowerConfig{
		Source: ClientSource{Client: capstore.NewClient(srv.URL)},
		Engine: eng,
	})
	if err := f.Bootstrap(); err != nil {
		t.Fatal(err)
	}
	if eng.Cursor() != 60 {
		t.Fatalf("cursor = %d, want 60", eng.Cursor())
	}
	batch, err := BatchEngine(store, testConfig())
	if err != nil {
		t.Fatal(err)
	}
	want, _ := batch.SnapshotAll()
	got, _ := eng.SnapshotAll()
	for name, w := range want {
		if !bytes.Equal(got[name], w) {
			t.Errorf("view %s: client-source follower diverged from batch", name)
		}
	}
}
