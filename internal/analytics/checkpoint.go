package analytics

import (
	"bytes"
	"fmt"
	"hash/fnv"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
)

// Checkpoint files make analyzed restarts cheap: the engine state is
// written as `ckpt-<cursor>.ckpt` with a self-verifying header, so a
// restart resumes from the last durable cursor and re-streams only
// the suffix instead of replaying the whole store.
//
// File format (one header line + payload):
//
//	analytics-checkpoint v1 <fnv64a-hex> <payload-len>\n
//	<payload bytes>
//
// The hash covers exactly the payload. A file whose payload is torn
// (short, or hash mismatch — a crash mid-write) fails verification
// and is skipped on open; writes go through tmp + rename + fsync so a
// crash never damages a previously durable checkpoint.

const ckptMagic = "analytics-checkpoint v1"

func ckptName(cursor int64) string { return fmt.Sprintf("ckpt-%016d.ckpt", cursor) }

// parseCkptName extracts the cursor from a checkpoint file name.
func parseCkptName(name string) (int64, bool) {
	if !strings.HasPrefix(name, "ckpt-") || !strings.HasSuffix(name, ".ckpt") {
		return 0, false
	}
	n, err := strconv.ParseInt(strings.TrimSuffix(strings.TrimPrefix(name, "ckpt-"), ".ckpt"), 10, 64)
	if err != nil || n < 0 {
		return 0, false
	}
	return n, true
}

func payloadHash(b []byte) uint64 {
	h := fnv.New64a()
	h.Write(b)
	return h.Sum64()
}

// WriteCheckpoint durably writes one checkpoint at the cursor,
// pruning older checkpoints down to the two newest (the newest plus
// one fallback). Returns the final file path.
func WriteCheckpoint(dir string, cursor int64, payload []byte) (string, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return "", err
	}
	final := filepath.Join(dir, ckptName(cursor))
	tmp := final + ".tmp"
	var buf bytes.Buffer
	fmt.Fprintf(&buf, "%s %016x %d\n", ckptMagic, payloadHash(payload), len(payload))
	buf.Write(payload)
	f, err := os.OpenFile(tmp, os.O_CREATE|os.O_TRUNC|os.O_WRONLY, 0o644)
	if err != nil {
		return "", err
	}
	if _, err := f.Write(buf.Bytes()); err != nil {
		f.Close()
		os.Remove(tmp)
		return "", err
	}
	if err := f.Sync(); err != nil {
		f.Close()
		os.Remove(tmp)
		return "", err
	}
	if err := f.Close(); err != nil {
		os.Remove(tmp)
		return "", err
	}
	if err := os.Rename(tmp, final); err != nil {
		os.Remove(tmp)
		return "", err
	}
	if d, err := os.Open(dir); err == nil {
		d.Sync()
		d.Close()
	}
	pruneCheckpoints(dir, 2)
	return final, nil
}

// pruneCheckpoints removes all but the keep newest checkpoint files.
func pruneCheckpoints(dir string, keep int) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return
	}
	var cursors []int64
	for _, ent := range entries {
		if n, ok := parseCkptName(ent.Name()); ok {
			cursors = append(cursors, n)
		}
	}
	if len(cursors) <= keep {
		return
	}
	sort.Slice(cursors, func(i, j int) bool { return cursors[i] > cursors[j] })
	for _, n := range cursors[keep:] {
		os.Remove(filepath.Join(dir, ckptName(n)))
	}
}

// readCheckpoint verifies and returns one checkpoint's payload.
func readCheckpoint(path string) ([]byte, error) {
	b, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	nl := bytes.IndexByte(b, '\n')
	if nl < 0 {
		return nil, fmt.Errorf("analytics: checkpoint %s: no header line", path)
	}
	var wantHash uint64
	var wantLen int
	header := string(b[:nl])
	if _, err := fmt.Sscanf(header, ckptMagic+" %x %d", &wantHash, &wantLen); err != nil {
		return nil, fmt.Errorf("analytics: checkpoint %s: bad header %q", path, header)
	}
	payload := b[nl+1:]
	if len(payload) != wantLen {
		return nil, fmt.Errorf("analytics: checkpoint %s: torn payload (%d of %d bytes)", path, len(payload), wantLen)
	}
	if payloadHash(payload) != wantHash {
		return nil, fmt.Errorf("analytics: checkpoint %s: payload hash mismatch", path)
	}
	return payload, nil
}

// LoadLatestCheckpoint opens the highest-cursor valid checkpoint in
// dir, skipping torn or corrupt files. Returns cursor -1 when no
// usable checkpoint exists (including when dir is absent).
func LoadLatestCheckpoint(dir string) (cursor int64, payload []byte, err error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		if os.IsNotExist(err) {
			return -1, nil, nil
		}
		return -1, nil, err
	}
	var cursors []int64
	for _, ent := range entries {
		if n, ok := parseCkptName(ent.Name()); ok {
			cursors = append(cursors, n)
		}
	}
	sort.Slice(cursors, func(i, j int) bool { return cursors[i] > cursors[j] })
	for _, n := range cursors {
		b, rerr := readCheckpoint(filepath.Join(dir, ckptName(n)))
		if rerr != nil {
			// Torn or corrupt — fall back to the next-newest.
			continue
		}
		return n, b, nil
	}
	return -1, nil, nil
}
