package analytics

import (
	"bytes"
	"os"
	"path/filepath"
	"testing"
)

func TestCheckpointRoundTrip(t *testing.T) {
	dir := t.TempDir()
	if cur, _, err := LoadLatestCheckpoint(dir); err != nil || cur != -1 {
		t.Fatalf("empty dir: cursor %d, err %v; want -1, nil", cur, err)
	}
	if cur, _, err := LoadLatestCheckpoint(filepath.Join(dir, "missing")); err != nil || cur != -1 {
		t.Fatalf("missing dir: cursor %d, err %v; want -1, nil", cur, err)
	}

	payload := []byte(`{"view":"state"}`)
	if _, err := WriteCheckpoint(dir, 42, payload); err != nil {
		t.Fatal(err)
	}
	cur, got, err := LoadLatestCheckpoint(dir)
	if err != nil {
		t.Fatal(err)
	}
	if cur != 42 || !bytes.Equal(got, payload) {
		t.Fatalf("got cursor %d payload %q", cur, got)
	}

	// The newest cursor wins, and old checkpoints are pruned to two.
	for _, c := range []int64{100, 250, 999} {
		if _, err := WriteCheckpoint(dir, c, payload); err != nil {
			t.Fatal(err)
		}
	}
	if cur, _, _ = LoadLatestCheckpoint(dir); cur != 999 {
		t.Fatalf("latest cursor = %d, want 999", cur)
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) > 2 {
		t.Fatalf("%d checkpoint files on disk, want ≤ 2", len(entries))
	}
}

// TestCheckpointTornTailFallsBack crashes mid-write, by hand: the
// newest checkpoint file is truncated (torn) or corrupted, and load
// must fall back to the previous valid one.
func TestCheckpointTornTailFallsBack(t *testing.T) {
	dir := t.TempDir()
	good := []byte(`{"cursor":7}`)
	if _, err := WriteCheckpoint(dir, 7, good); err != nil {
		t.Fatal(err)
	}
	if _, err := WriteCheckpoint(dir, 9, []byte(`{"cursor":9}`)); err != nil {
		t.Fatal(err)
	}
	// Tear the newest file: keep the header, drop half the payload.
	name := filepath.Join(dir, ckptName(9))
	b, err := os.ReadFile(name)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(name, b[:len(b)-6], 0o644); err != nil {
		t.Fatal(err)
	}
	cur, payload, err := LoadLatestCheckpoint(dir)
	if err != nil {
		t.Fatal(err)
	}
	if cur != 7 || !bytes.Equal(payload, good) {
		t.Fatalf("got cursor %d payload %q, want the older intact checkpoint", cur, payload)
	}

	// Corrupt (bit-flipped) payload with intact length: hash rejects
	// it. Fresh dir so pruning cannot evict the fallback checkpoint.
	dir = t.TempDir()
	if _, err := WriteCheckpoint(dir, 7, good); err != nil {
		t.Fatal(err)
	}
	if _, err := WriteCheckpoint(dir, 11, []byte(`{"cursor":11}`)); err != nil {
		t.Fatal(err)
	}
	name = filepath.Join(dir, ckptName(11))
	if b, err = os.ReadFile(name); err != nil {
		t.Fatal(err)
	}
	b[len(b)-2] ^= 0x40
	if err := os.WriteFile(name, b, 0o644); err != nil {
		t.Fatal(err)
	}
	if cur, payload, err = LoadLatestCheckpoint(dir); err != nil {
		t.Fatal(err)
	}
	if cur != 7 || !bytes.Equal(payload, good) {
		t.Fatalf("bit flip survived: cursor %d payload %q", cur, payload)
	}
}
