package analytics

import (
	"bufio"
	"bytes"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"repro/internal/capstore"
	"repro/internal/capture"
	"repro/internal/obs"
)

// newTestServer boots a handler over an engine pre-folded with the
// first n stream captures.
func newTestServer(t *testing.T, n int) (*httptest.Server, *Engine) {
	t.Helper()
	reg := obs.NewRegistry()
	eng := NewEngine(Config{GVL: testGVL, Registry: reg})
	for i := 0; i < n; i++ {
		c := testCapture(i)
		eng.Apply(capstore.ShardOf(c.FinalDomain, 2), []*capture.Capture{c})
	}
	srv := httptest.NewServer(NewHandler(HandlerConfig{Engine: eng}, reg))
	t.Cleanup(srv.Close)
	return srv, eng
}

func get(t *testing.T, url string) (int, []byte) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	b, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, b
}

func TestHandlerViewCatalog(t *testing.T) {
	srv, eng := newTestServer(t, 50)
	code, body := get(t, srv.URL+"/views")
	if code != http.StatusOK {
		t.Fatalf("/views: %d\n%s", code, body)
	}
	var views []ViewInfo
	if err := json.Unmarshal(body, &views); err != nil {
		t.Fatal(err)
	}
	if len(views) != len(ViewNames()) {
		t.Fatalf("catalog has %d views, want %d", len(views), len(ViewNames()))
	}
	for _, v := range views {
		if v.Cursor != eng.Cursor() {
			t.Errorf("view %s at cursor %d, want %d", v.Name, v.Cursor, eng.Cursor())
		}
		if v.Description == "" {
			t.Errorf("view %s has no description", v.Name)
		}
	}
}

func TestHandlerViewServesEngineBytes(t *testing.T) {
	srv, eng := newTestServer(t, 50)
	for _, name := range ViewNames() {
		code, body := get(t, srv.URL+"/view/"+name)
		if code != http.StatusOK {
			t.Fatalf("/view/%s: %d\n%s", name, code, body)
		}
		want, err := eng.Snapshot(name)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(bytes.TrimSuffix(body, []byte("\n")), want) {
			t.Errorf("/view/%s bytes differ from engine snapshot", name)
		}
	}
}

func TestHandlerUnknownView(t *testing.T) {
	srv, _ := newTestServer(t, 5)
	for _, path := range []string{"/view/nope", "/series/nope"} {
		if code, _ := get(t, srv.URL+path); code != http.StatusNotFound {
			t.Errorf("%s: %d, want 404", path, code)
		}
	}
}

func TestHandlerSeriesNDJSON(t *testing.T) {
	srv, eng := newTestServer(t, 80)
	for _, name := range ViewNames() {
		code, body := get(t, srv.URL+"/series/"+name)
		if code != http.StatusOK {
			t.Fatalf("/series/%s: %d\n%s", name, code, body)
		}
		sc := bufio.NewScanner(bytes.NewReader(body))
		sc.Buffer(make([]byte, 1<<20), 1<<20)
		lines := 0
		for sc.Scan() {
			if len(bytes.TrimSpace(sc.Bytes())) == 0 {
				continue
			}
			var v json.RawMessage
			if err := json.Unmarshal(sc.Bytes(), &v); err != nil {
				t.Fatalf("/series/%s line %d is not JSON: %v", name, lines+1, err)
			}
			lines++
		}
		if lines == 0 {
			t.Errorf("/series/%s: no points", name)
		}
	}
	// The adoption series must have exactly the snapshot's point count.
	var av AdoptionView
	snap, err := eng.Snapshot(ViewAdoption)
	if err != nil {
		t.Fatal(err)
	}
	if err := json.Unmarshal(snap, &av); err != nil {
		t.Fatal(err)
	}
	_, body := get(t, srv.URL+"/series/"+ViewAdoption)
	got := strings.Count(string(body), "\n")
	if got != len(av.Points) {
		t.Errorf("adoption series: %d NDJSON lines, snapshot has %d points", got, len(av.Points))
	}
}

func TestHandlerHealth(t *testing.T) {
	srv, eng := newTestServer(t, 30)
	code, body := get(t, srv.URL+"/healthz")
	if code != http.StatusOK {
		t.Fatalf("/healthz: %d\n%s", code, body)
	}
	var h AnalyzedHealth
	if err := json.Unmarshal(body, &h); err != nil {
		t.Fatal(err)
	}
	if h.Status != "ok" {
		t.Errorf("status = %q", h.Status)
	}
	if h.Cursor != eng.Cursor() {
		t.Errorf("cursor = %d, want %d", h.Cursor, eng.Cursor())
	}
	if h.CheckpointCursor != -1 {
		t.Errorf("checkpoint cursor = %d, want -1 without a follower", h.CheckpointCursor)
	}
	var sum int64
	for _, c := range h.Shards {
		sum += c
	}
	if sum != h.Cursor {
		t.Errorf("shard cursors sum to %d, cursor is %d", sum, h.Cursor)
	}
	if len(h.Views) != len(ViewNames()) {
		t.Errorf("%d views in health, want %d", len(h.Views), len(ViewNames()))
	}
	if h.Telemetry == nil {
		t.Error("no telemetry summary despite a registry")
	}
}

func TestHandlerMethodNotAllowed(t *testing.T) {
	srv, _ := newTestServer(t, 5)
	resp, err := http.Post(srv.URL+"/view/adoption", "application/json", strings.NewReader("{}"))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Errorf("POST /view: %d, want 405", resp.StatusCode)
	}
}
