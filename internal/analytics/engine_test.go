package analytics

import (
	"bytes"
	"fmt"
	"math/rand"
	"testing"

	"repro/internal/capstore"
	"repro/internal/capture"
	"repro/internal/cmps"
	"repro/internal/gvl"
	"repro/internal/simtime"
)

// testGVL keeps the GVL view small and fast; both sides of every
// comparison must use the same config or the invariant is vacuous.
var testGVL = gvl.HistoryConfig{Seed: 7, Versions: 24, InitialVendors: 30, PeakVendors: 60}

func testConfig() Config { return Config{GVL: testGVL} }

// testCapture fabricates capture i of a deterministic stream: a dozen
// domains drifting between CMPs across the window, with CMP-less
// pages and failures mixed in.
func testCapture(i int) *capture.Capture {
	rng := rand.New(rand.NewSource(int64(i) * 2654435761))
	domain := fmt.Sprintf("site%d.example", rng.Intn(12))
	day := rng.Intn(simtime.NumDays)
	c := &capture.Capture{
		SeedURL:     fmt.Sprintf("https://%s/page/%d", domain, i),
		FinalURL:    "https://" + domain + "/",
		FinalDomain: domain,
		Day:         simtime.Day(day),
		Vantage:     capture.EUCloud,
		Config:      "default",
		Status:      200,
	}
	if rng.Intn(3) == 0 {
		c.Vantage = capture.USCloud
	}
	switch rng.Intn(5) {
	case 0: // CMP-less page
	case 1:
		c.Failed = true
		c.Error = "timeout"
	default:
		id := cmps.ID(1 + rng.Intn(int(cmps.Count)))
		c.Requests = []capture.Request{{Host: id.Hostname(), Path: "/cmp.js", Status: 200}}
	}
	return c
}

// batchSnapshots replays exactly the given committed prefix through a
// fresh store and the batch engine — the `analyze -store` path — and
// returns every view's bytes at that cursor.
func batchSnapshots(t *testing.T, committed []*capture.Capture, nshards int) map[string][]byte {
	t.Helper()
	store, err := capstore.Create(t.TempDir(), nshards)
	if err != nil {
		t.Fatal(err)
	}
	defer store.Close()
	for _, c := range committed {
		store.Record(c)
	}
	eng, err := BatchEngine(store, testConfig())
	if err != nil {
		t.Fatal(err)
	}
	if eng.Cursor() != int64(len(committed)) {
		t.Fatalf("batch cursor = %d, want %d", eng.Cursor(), len(committed))
	}
	snaps, err := eng.SnapshotAll()
	if err != nil {
		t.Fatal(err)
	}
	return snaps
}

// TestPrefixReplayByteIdentity is the headline invariant: at every
// ingest commit cursor, the incremental engine fed by the ordered
// ingest path's OnCommit tap serves views byte-for-byte identical to
// the batch engine run over a store truncated to that cursor — even
// though batches arrive out of order and the tap interleaves shards.
func TestPrefixReplayByteIdentity(t *testing.T) {
	const (
		nshards = 4
		total   = 301
		batch   = 7
	)
	store, err := capstore.Create(t.TempDir(), nshards)
	if err != nil {
		t.Fatal(err)
	}
	defer store.Close()

	live := NewEngine(testConfig())
	var committed []*capture.Capture
	ing, err := capstore.NewIngester(store, capstore.IngestConfig{
		OnCommit: func(caps []*capture.Capture) {
			committed = append(committed, caps...)
			for _, c := range caps {
				live.Apply(capstore.ShardOf(c.FinalDomain, nshards), []*capture.Capture{c})
			}
		},
	})
	if err != nil {
		t.Fatal(err)
	}

	// Slice the ordered stream into batches and deliver them shuffled:
	// the reorder buffer must still commit in total order, so the tap
	// sees the same prefix sequence a crash-free coordinator produced.
	type span struct{ at, n int }
	var spans []span
	for at := 0; at < total; at += batch {
		n := batch
		if at+n > total {
			n = total - at
		}
		spans = append(spans, span{at, n})
	}
	// Shuffle within sliding windows: enough disorder to exercise the
	// reorder buffer on most batches, while commits still land often
	// enough to check many distinct cursors.
	rng := rand.New(rand.NewSource(99))
	for i := 0; i < len(spans); i += 4 {
		end := i + 4
		if end > len(spans) {
			end = len(spans)
		}
		w := spans[i:end]
		rng.Shuffle(len(w), func(a, b int) { w[a], w[b] = w[b], w[a] })
	}

	checked := 0
	lastCursor := int64(0)
	for _, sp := range spans {
		caps := make([]*capture.Capture, sp.n)
		for i := range caps {
			caps[i] = testCapture(sp.at + i)
		}
		if _, err := ing.IngestBatchAt(int64(sp.at), int64(sp.n), caps); err != nil {
			t.Fatal(err)
		}
		cur := live.Cursor()
		if cur == lastCursor {
			continue // batch buffered out of order, nothing committed yet
		}
		if cur != int64(len(committed)) {
			t.Fatalf("engine cursor %d != committed records %d", cur, len(committed))
		}
		if cur != store.Len() {
			t.Fatalf("engine cursor %d != store length %d at commit boundary", cur, store.Len())
		}
		lastCursor = cur

		liveSnaps, err := live.SnapshotAll()
		if err != nil {
			t.Fatal(err)
		}
		want := batchSnapshots(t, committed, nshards)
		for name, wantBytes := range want {
			if !bytes.Equal(liveSnaps[name], wantBytes) {
				t.Fatalf("cursor %d, view %s: incremental and batch bytes differ\n inc: %.200s\nbat: %.200s",
					cur, name, liveSnaps[name], wantBytes)
			}
		}
		checked++
	}
	if live.Cursor() != total {
		t.Fatalf("final cursor = %d, want %d", live.Cursor(), total)
	}
	if checked < 10 {
		t.Fatalf("only %d commit cursors checked — ordered delivery degenerated", checked)
	}
	t.Logf("verified byte-identity across %d views at %d commit cursors", len(ViewNames()), checked)
}

// TestEngineStateRoundTrip proves checkpoint restore is exact: an
// engine restored mid-stream and fed the remainder serves the same
// bytes as one that never stopped.
func TestEngineStateRoundTrip(t *testing.T) {
	const nshards = 3
	straight := NewEngine(testConfig())
	first := NewEngine(testConfig())
	feed := func(e *Engine, from, to int) {
		for i := from; i < to; i++ {
			c := testCapture(i)
			e.Apply(capstore.ShardOf(c.FinalDomain, nshards), []*capture.Capture{c})
		}
	}
	feed(straight, 0, 200)
	feed(first, 0, 120)
	if _, err := first.SnapshotAll(); err != nil { // warm caches must not leak into state
		t.Fatal(err)
	}
	state, err := first.MarshalState()
	if err != nil {
		t.Fatal(err)
	}

	resumed := NewEngine(testConfig())
	if err := resumed.UnmarshalState(state); err != nil {
		t.Fatal(err)
	}
	if resumed.Cursor() != 120 {
		t.Fatalf("restored cursor = %d, want 120", resumed.Cursor())
	}
	feed(resumed, 120, 200)

	wantSnaps, err := straight.SnapshotAll()
	if err != nil {
		t.Fatal(err)
	}
	gotSnaps, err := resumed.SnapshotAll()
	if err != nil {
		t.Fatal(err)
	}
	for name, want := range wantSnaps {
		if !bytes.Equal(gotSnaps[name], want) {
			t.Errorf("view %s diverged after state round-trip", name)
		}
	}
}

// TestEngineUnknownView checks the 404 error path.
func TestEngineUnknownView(t *testing.T) {
	e := NewEngine(testConfig())
	if _, err := e.Snapshot("nope"); err == nil {
		t.Fatal("expected error for unknown view")
	}
	for _, name := range ViewNames() {
		if _, err := e.Snapshot(name); err != nil {
			t.Fatalf("%s: %v", name, err)
		}
	}
}

// TestEngineStateRejectsCursorMismatch guards the torn-checkpoint
// defense in depth: a state blob whose shard cursors do not sum to
// its cursor is rejected.
func TestEngineStateRejectsCursorMismatch(t *testing.T) {
	e := NewEngine(testConfig())
	c := testCapture(1)
	e.Apply(0, []*capture.Capture{c})
	state, err := e.MarshalState()
	if err != nil {
		t.Fatal(err)
	}
	bad := bytes.Replace(state, []byte(`"cursor":1`), []byte(`"cursor":2`), 1)
	if bytes.Equal(bad, state) {
		t.Fatal("fixture: cursor field not found in state")
	}
	if err := NewEngine(testConfig()).UnmarshalState(bad); err == nil {
		t.Fatal("expected cursor/shard-sum mismatch to be rejected")
	}
}
