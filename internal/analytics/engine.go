package analytics

import (
	"encoding/json"
	"fmt"
	"sort"
	"sync"
	"time"

	"repro/internal/analysis"
	"repro/internal/capture"
	"repro/internal/detect"
	"repro/internal/gvl"
	"repro/internal/interp"
	"repro/internal/obs"
)

// Config parameterizes an Engine. The zero value reproduces the
// paper: default detector fingerprints, paper interpolation, the
// default GVL history, weekly adoption sampling, and spike ratio 3.
type Config struct {
	// Detector classifies captures; nil means detect.Default().
	Detector *detect.Detector
	// Interp are the presence-interpolation options.
	Interp interp.Options
	// GVL generates the deterministic vendor-list history backing the
	// gvl view; a zero config means gvl.DefaultHistoryConfig().
	GVL gvl.HistoryConfig
	// StepDays is the adoption-series sampling step (default 7).
	StepDays int
	// SpikeRatio is the adoption spike-detection threshold (default 3).
	SpikeRatio float64

	// Registry and Tracer wire the obs surface; both may be nil.
	Registry *obs.Registry
	Tracer   *obs.Tracer
}

func (c Config) withDefaults() Config {
	if c.Detector == nil {
		c.Detector = detect.Default()
	}
	if c.GVL.Versions == 0 {
		c.GVL = gvl.DefaultHistoryConfig()
	}
	if c.StepDays <= 0 {
		c.StepDays = 7
	}
	if c.SpikeRatio <= 0 {
		c.SpikeRatio = 3
	}
	return c
}

// Engine folds a capture stream into the materialized views and
// serializes them on demand. All state is keyed by the ingest commit
// cursor: after applying the first k committed records of a store,
// every snapshot is byte-identical to a batch run over a store
// truncated to those k records, regardless of how the records were
// interleaved across shards on the way in (the fold contract in
// internal/analysis). Engine is safe for concurrent use.
type Engine struct {
	cfg Config
	m   *metrics

	mu       sync.Mutex
	presence *analysis.PresenceFold
	coverage *analysis.CoverageFold
	// shardCursors[i] counts committed records applied from shard i;
	// cursor is their sum — the total ingest commit cursor.
	shardCursors map[int]int64
	cursor       int64

	// gvlPoints is the static payload of the gvl view, computed once.
	gvlPoints []GVLViewPoint

	// snaps caches serialized views; invalidated by Apply/restore.
	snaps map[string][]byte
}

// NewEngine returns an empty engine.
func NewEngine(cfg Config) *Engine {
	cfg = cfg.withDefaults()
	e := &Engine{
		cfg:          cfg,
		presence:     analysis.NewPresenceFold(cfg.Detector, cfg.Interp),
		coverage:     analysis.NewCoverageFold(cfg.Detector),
		shardCursors: make(map[int]int64),
		gvlPoints:    buildGVLPoints(gvl.GenerateHistory(cfg.GVL)),
		snaps:        make(map[string][]byte),
	}
	e.m = newMetrics(cfg.Registry, e)
	return e
}

// Apply folds a batch of committed records from one shard, advancing
// that shard's cursor by len(caps). Callers must deliver each shard's
// records in its commit order; interleaving across shards is free.
func (e *Engine) Apply(shard int, caps []*capture.Capture) {
	if len(caps) == 0 {
		return
	}
	start := time.Now()
	e.mu.Lock()
	for _, c := range caps {
		e.presence.Fold(c)
		e.coverage.Fold(c)
	}
	e.shardCursors[shard] += int64(len(caps))
	e.cursor += int64(len(caps))
	e.snaps = make(map[string][]byte)
	e.mu.Unlock()
	e.m.foldRecords.Add(int64(len(caps)))
	e.m.foldSeconds.Observe(time.Since(start).Seconds())
}

// Cursor returns the total commit cursor (records applied).
func (e *Engine) Cursor() int64 {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.cursor
}

// ShardCursor returns how many records of shard i were applied.
func (e *Engine) ShardCursor(i int) int64 {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.shardCursors[i]
}

// ShardCursors returns a copy of the per-shard cursors.
func (e *Engine) ShardCursors() map[int]int64 {
	e.mu.Lock()
	defer e.mu.Unlock()
	out := make(map[int]int64, len(e.shardCursors))
	for k, v := range e.shardCursors {
		out[k] = v
	}
	return out
}

// Views returns the catalog of materialized views at the current
// cursor.
func (e *Engine) Views() []ViewInfo {
	cursor := e.Cursor()
	names := ViewNames()
	out := make([]ViewInfo, 0, len(names))
	for _, name := range names {
		out = append(out, ViewInfo{Name: name, Description: describeView(name), Cursor: cursor})
	}
	return out
}

// ErrUnknownView reports a view name outside ViewNames.
type ErrUnknownView struct{ Name string }

func (e *ErrUnknownView) Error() string { return fmt.Sprintf("analytics: unknown view %q", e.Name) }

// Snapshot serializes the named view at the current cursor. Snapshot
// bytes are cached until the next Apply, so repeated queries at one
// cursor are a map lookup.
func (e *Engine) Snapshot(name string) ([]byte, error) {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.snapshotLocked(name)
}

func (e *Engine) snapshotLocked(name string) ([]byte, error) {
	if b, ok := e.snaps[name]; ok {
		return b, nil
	}
	start := time.Now()
	var v any
	switch name {
	case ViewAdoption:
		v = buildAdoptionView(e.presence.Presence(), e.cursor, e.cfg.StepDays, e.cfg.SpikeRatio)
	case ViewCoverage:
		v = buildCoverageView(e.coverage, e.cursor)
	case ViewMarketShare:
		v = buildMarketShareView(e.presence.Presence(), e.cursor)
	case ViewGVL:
		v = &GVLView{View: ViewGVL, Cursor: e.cursor, Points: e.gvlPoints}
	default:
		return nil, &ErrUnknownView{Name: name}
	}
	b, err := json.Marshal(v)
	if err != nil {
		return nil, fmt.Errorf("analytics: serialize view %q: %w", name, err)
	}
	e.snaps[name] = b
	e.m.viewUpdateSeconds.With(name).Observe(time.Since(start).Seconds())
	return b, nil
}

// SnapshotAll serializes every view at one cursor, in ViewNames
// order. The lock is held across all views, so the snapshots are
// mutually consistent.
func (e *Engine) SnapshotAll() (map[string][]byte, error) {
	e.mu.Lock()
	defer e.mu.Unlock()
	out := make(map[string][]byte, len(ViewNames()))
	for _, name := range ViewNames() {
		b, err := e.snapshotLocked(name)
		if err != nil {
			return nil, err
		}
		out[name] = b
	}
	return out, nil
}

// engineState is the checkpoint wire form of an Engine.
type engineState struct {
	Cursor       int64            `json:"cursor"`
	ShardCursors map[string]int64 `json:"shard_cursors"`
	Presence     json.RawMessage  `json:"presence"`
	Coverage     json.RawMessage  `json:"coverage"`
}

// MarshalState serializes the fold state and cursors for
// checkpointing. The view cache and GVL payload are derived and not
// persisted.
func (e *Engine) MarshalState() ([]byte, error) {
	e.mu.Lock()
	defer e.mu.Unlock()
	pres, err := e.presence.MarshalState()
	if err != nil {
		return nil, err
	}
	cov, err := e.coverage.MarshalState()
	if err != nil {
		return nil, err
	}
	st := engineState{
		Cursor:       e.cursor,
		ShardCursors: make(map[string]int64, len(e.shardCursors)),
		Presence:     pres,
		Coverage:     cov,
	}
	for shard, n := range e.shardCursors {
		st.ShardCursors[fmt.Sprintf("%d", shard)] = n
	}
	return json.Marshal(st)
}

// UnmarshalState restores checkpointed fold state, replacing the
// engine's current state.
func (e *Engine) UnmarshalState(b []byte) error {
	var st engineState
	if err := json.Unmarshal(b, &st); err != nil {
		return fmt.Errorf("analytics: engine state: %w", err)
	}
	presence := analysis.NewPresenceFold(e.cfg.Detector, e.cfg.Interp)
	if err := presence.UnmarshalState(st.Presence); err != nil {
		return err
	}
	coverage := analysis.NewCoverageFold(e.cfg.Detector)
	if err := coverage.UnmarshalState(st.Coverage); err != nil {
		return err
	}
	shardCursors := make(map[int]int64, len(st.ShardCursors))
	var sum int64
	for shardStr, n := range st.ShardCursors {
		var shard int
		if _, err := fmt.Sscanf(shardStr, "%d", &shard); err != nil {
			return fmt.Errorf("analytics: engine state: bad shard key %q", shardStr)
		}
		shardCursors[shard] = n
		sum += n
	}
	if sum != st.Cursor {
		return fmt.Errorf("analytics: engine state: cursor %d != shard sum %d", st.Cursor, sum)
	}
	e.mu.Lock()
	e.presence = presence
	e.coverage = coverage
	e.shardCursors = shardCursors
	e.cursor = st.Cursor
	e.snaps = make(map[string][]byte)
	e.mu.Unlock()
	return nil
}

// SortedShards returns the engine's shard ids in ascending order
// (for deterministic health payloads).
func (e *Engine) SortedShards() []int {
	e.mu.Lock()
	defer e.mu.Unlock()
	out := make([]int, 0, len(e.shardCursors))
	for shard := range e.shardCursors {
		out = append(out, shard)
	}
	sort.Ints(out)
	return out
}
