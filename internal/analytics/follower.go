package analytics

import (
	"context"
	"errors"
	"fmt"
	"io"
	"time"

	"repro/internal/capstore"
	"repro/internal/capture"
	"repro/internal/capturedb"
)

// Source is where a follower reads committed capture records from: a
// local store or a capd/capring node over HTTP. Counts reports the
// committed record count per shard; Stream returns the shard's
// logical record stream starting at record index from. Both see only
// committed records, so per-shard streams are append-only and any
// previously read prefix never changes.
type Source interface {
	Counts() ([]int, error)
	Stream(shard, from int) (io.ReadCloser, error)
}

// StoreSource reads from an open local store (the batch/bootstrap
// path).
type StoreSource struct{ Store *capstore.Store }

// Counts reports per-shard committed record counts.
func (s StoreSource) Counts() ([]int, error) {
	stats := s.Store.Stats()
	out := make([]int, len(stats.Shards))
	for i, sh := range stats.Shards {
		out[i] = sh.Records
	}
	return out, nil
}

// Stream streams one shard's records from the given index.
func (s StoreSource) Stream(shard, from int) (io.ReadCloser, error) {
	pr, pw := io.Pipe()
	go func() {
		_, _, err := s.Store.StreamShard(shard, from, pw)
		pw.CloseWithError(err)
	}()
	return pr, nil
}

// ClientSource reads from a capd (or capring) node over HTTP — the
// live-follow path analyzed runs in production.
type ClientSource struct{ Client *capstore.Client }

// Counts reports per-shard committed record counts.
func (s ClientSource) Counts() ([]int, error) {
	stats, err := s.Client.Stats()
	if err != nil {
		return nil, err
	}
	out := make([]int, len(stats.Shards))
	for i, sh := range stats.Shards {
		out[i] = sh.Records
	}
	return out, nil
}

// Stream streams one shard's records from the given index.
func (s ClientSource) Stream(shard, from int) (io.ReadCloser, error) {
	return s.Client.SegmentReader(shard, from)
}

// FollowerConfig parameterizes a Follower.
type FollowerConfig struct {
	Source Source
	Engine *Engine

	// CheckpointDir enables durable checkpoints when non-empty.
	CheckpointDir string
	// CheckpointEvery is the record interval between checkpoints
	// (default 4096).
	CheckpointEvery int64
	// PollInterval is the idle delay between sweeps (default 250ms).
	PollInterval time.Duration
	// BatchSize is the per-Apply chunk size (default 256).
	BatchSize int
}

func (c FollowerConfig) withDefaults() FollowerConfig {
	if c.CheckpointEvery <= 0 {
		c.CheckpointEvery = 4096
	}
	if c.PollInterval <= 0 {
		c.PollInterval = 250 * time.Millisecond
	}
	if c.BatchSize <= 0 {
		c.BatchSize = 256
	}
	return c
}

// Follower advances an Engine against a Source: it polls per-shard
// committed counts, streams each shard's unapplied suffix, folds it
// in chunks, and periodically checkpoints the engine state. One
// follower is the engine's only writer.
type Follower struct {
	cfg        FollowerConfig
	lastCkpt   int64
	lastCounts []int
}

// NewFollower returns a follower over the config.
func NewFollower(cfg FollowerConfig) *Follower {
	return &Follower{cfg: cfg.withDefaults(), lastCkpt: -1}
}

// Resume loads the newest valid checkpoint into the engine, if any.
// Returns the resumed cursor, or -1 for a cold start.
func (f *Follower) Resume() (int64, error) {
	if f.cfg.CheckpointDir == "" {
		return -1, nil
	}
	cursor, payload, err := LoadLatestCheckpoint(f.cfg.CheckpointDir)
	if err != nil || cursor < 0 {
		return -1, err
	}
	if err := f.cfg.Engine.UnmarshalState(payload); err != nil {
		return -1, err
	}
	f.lastCkpt = cursor
	f.cfg.Engine.m.checkpointCursor.Set(float64(cursor))
	return cursor, nil
}

// Checkpoint durably writes the engine state now.
func (f *Follower) Checkpoint() error {
	if f.cfg.CheckpointDir == "" {
		return nil
	}
	payload, err := f.cfg.Engine.MarshalState()
	if err != nil {
		return err
	}
	cursor := f.cfg.Engine.Cursor()
	if _, err := WriteCheckpoint(f.cfg.CheckpointDir, cursor, payload); err != nil {
		return err
	}
	f.lastCkpt = cursor
	f.cfg.Engine.m.checkpoints.Add(1)
	f.cfg.Engine.m.checkpointCursor.Set(float64(cursor))
	return nil
}

// maybeCheckpoint checkpoints when the engine advanced far enough
// past the last durable cursor.
func (f *Follower) maybeCheckpoint() error {
	if f.cfg.CheckpointDir == "" {
		return nil
	}
	if f.cfg.Engine.Cursor()-f.lastCkpt < f.cfg.CheckpointEvery {
		return nil
	}
	return f.Checkpoint()
}

// Lag returns the source cursor minus the engine cursor as of the
// last sweep (0 before any sweep).
func (f *Follower) Lag() int64 {
	var total int64
	for _, n := range f.lastCounts {
		total += int64(n)
	}
	lag := total - f.cfg.Engine.Cursor()
	if lag < 0 {
		lag = 0
	}
	return lag
}

// Sweep performs one poll pass: for every shard whose committed count
// exceeds the engine's shard cursor, stream and fold the suffix.
// Returns how many records were applied.
func (f *Follower) Sweep() (int64, error) {
	counts, err := f.cfg.Source.Counts()
	if err != nil {
		return 0, err
	}
	f.lastCounts = counts
	eng := f.cfg.Engine
	var applied int64
	for shard, have := range counts {
		cur := eng.ShardCursor(shard)
		if int64(have) <= cur {
			continue
		}
		n, err := f.followShard(shard, int(cur), have-int(cur))
		applied += n
		if err != nil {
			f.updateLag()
			return applied, fmt.Errorf("analytics: follow shard %d from %d: %w", shard, cur, err)
		}
	}
	f.updateLag()
	if applied > 0 {
		if err := f.maybeCheckpoint(); err != nil {
			return applied, err
		}
	}
	return applied, nil
}

func (f *Follower) updateLag() {
	f.cfg.Engine.m.lagRecords.Set(float64(f.Lag()))
}

// followShard streams up to want records of one shard starting at
// record index from, folding them in batches.
func (f *Follower) followShard(shard, from, want int) (int64, error) {
	rc, err := f.cfg.Source.Stream(shard, from)
	if err != nil {
		return 0, err
	}
	defer rc.Close()
	rr := capturedb.NewRecordReader(rc)
	batch := make([]*capture.Capture, 0, f.cfg.BatchSize)
	var applied int64
	flush := func() {
		if len(batch) > 0 {
			f.cfg.Engine.Apply(shard, batch)
			applied += int64(len(batch))
			batch = batch[:0]
		}
	}
	for applied+int64(len(batch)) < int64(want) {
		c, err := rr.Next()
		if err != nil {
			flush()
			if err == io.EOF || errors.Is(err, capturedb.ErrTruncated) {
				// The committed prefix we read is valid; a short
				// stream just means the next sweep resumes here.
				return applied, nil
			}
			return applied, err
		}
		batch = append(batch, c)
		if len(batch) >= f.cfg.BatchSize {
			flush()
		}
	}
	flush()
	return applied, nil
}

// Bootstrap folds everything the source currently has — the cold
// start path. It sweeps until a pass applies nothing, so a store
// receiving writes during bootstrap is caught up to its live edge,
// then checkpoints.
func (f *Follower) Bootstrap() error {
	for {
		applied, err := f.Sweep()
		if err != nil {
			return err
		}
		if applied == 0 {
			break
		}
	}
	f.cfg.Engine.m.bootstraps.Add(1)
	if f.cfg.CheckpointDir == "" {
		return nil
	}
	return f.Checkpoint()
}

// Run follows the source until ctx is done, sweeping every
// PollInterval. Transient source errors are retried on the next tick;
// the error returned is always ctx.Err().
func (f *Follower) Run(ctx context.Context) error {
	t := time.NewTicker(f.cfg.PollInterval)
	defer t.Stop()
	for {
		select {
		case <-ctx.Done():
			// Final checkpoint so a clean shutdown resumes exactly.
			f.Checkpoint()
			return ctx.Err()
		case <-t.C:
			f.Sweep()
		}
	}
}

// BatchEngine folds an entire store and returns the engine — the
// batch path cmd/analyze -store runs. Because it drives the same
// folds through the same Source machinery as the live follower, its
// snapshots are byte-identical to an incremental run at the same
// cursor.
func BatchEngine(store *capstore.Store, cfg Config) (*Engine, error) {
	eng := NewEngine(cfg)
	f := NewFollower(FollowerConfig{Source: StoreSource{Store: store}, Engine: eng})
	if err := f.Bootstrap(); err != nil {
		return nil, err
	}
	return eng, nil
}
