package analytics

import "repro/internal/obs"

// metrics is the engine/follower telemetry set. All fields are
// nil-safe: with a nil registry every handle is nil and every
// observation a no-op.
type metrics struct {
	foldRecords       *obs.Counter
	foldSeconds       *obs.Histogram
	viewUpdateSeconds *obs.HistogramVec
	lagRecords        *obs.Gauge
	checkpoints       *obs.Counter
	checkpointCursor  *obs.Gauge
	queries           *obs.CounterVec
	querySeconds      *obs.Histogram
	bootstraps        *obs.Counter
}

func newMetrics(r *obs.Registry, e *Engine) *metrics {
	m := &metrics{
		foldRecords: obs.NewCounter(r, "analytics_fold_records_total",
			"Committed capture records folded into the views."),
		foldSeconds: obs.NewHistogram(r, "analytics_fold_seconds",
			"Latency of applying one committed batch to all folds.", obs.LatencyBuckets),
		viewUpdateSeconds: obs.NewHistogramVec(r, "analytics_view_update_seconds",
			"Latency of rebuilding one view snapshot after the cursor advanced.",
			obs.LatencyBuckets, "view"),
		lagRecords: obs.NewGauge(r, "analytics_lag_records",
			"Store commit cursor minus the engine cursor (records not yet folded)."),
		checkpoints: obs.NewCounter(r, "analytics_checkpoints_total",
			"View-state checkpoints written."),
		checkpointCursor: obs.NewGauge(r, "analytics_checkpoint_cursor",
			"Commit cursor of the last durable checkpoint."),
		queries: obs.NewCounterVec(r, "analytics_queries_total",
			"View queries served.", "view"),
		querySeconds: obs.NewHistogram(r, "analytics_query_seconds",
			"Latency of serving one view query.", obs.LatencyBuckets),
		bootstraps: obs.NewCounter(r, "analytics_bootstraps_total",
			"Cold-start bootstrap sweeps completed."),
	}
	obs.NewGaugeFunc(r, "analytics_cursor",
		"Total ingest commit cursor applied to the views.",
		func() float64 { return float64(e.Cursor()) })
	return m
}
