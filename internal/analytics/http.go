package analytics

import (
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"strings"
	"time"

	"repro/internal/obs"
	"repro/internal/resilience"
)

// HandlerConfig parameterizes the analyzed HTTP surface.
type HandlerConfig struct {
	Engine *Engine
	// Follower, when non-nil, contributes lag and checkpoint fields to
	// /healthz.
	Follower *Follower

	// MaxInFlight bounds concurrent view queries (default 64);
	// RequestTimeout bounds one query (default 30s). /healthz is
	// served outside the limiter so operators can always probe a
	// saturated node.
	MaxInFlight    int
	RequestTimeout time.Duration

	// Tracer, when non-nil, adopts the caller's trace context from a
	// Traceparent header on view queries.
	Tracer *obs.Tracer
}

// AnalyzedHealth is the /healthz payload.
type AnalyzedHealth struct {
	Status string `json:"status"`
	// Cursor is the total ingest commit cursor applied to the views.
	Cursor int64 `json:"cursor"`
	// Shards maps shard id to its applied record count.
	Shards map[string]int64 `json:"shards"`
	// Lag is the source cursor minus Cursor as of the last sweep.
	Lag int64 `json:"lag"`
	// CheckpointCursor is the last durable checkpoint's cursor, -1
	// before any checkpoint.
	CheckpointCursor int64                   `json:"checkpoint_cursor"`
	Views            []ViewInfo              `json:"views"`
	Limiter          resilience.LimiterStats `json:"limiter"`
	Telemetry        *obs.TelemetrySummary   `json:"telemetry,omitempty"`
}

type handler struct {
	cfg     HandlerConfig
	limiter *resilience.HTTPLimiter
	reg     *obs.Registry
	started time.Time
}

// NewHandler returns the analyzed query surface: /views, /view/{name},
// /series/{name} (NDJSON), and /healthz. reg, when non-nil, feeds the
// telemetry summary on /healthz (the /metrics endpoint itself is
// mounted by the caller, outside the limiter).
func NewHandler(cfg HandlerConfig, reg *obs.Registry) http.Handler {
	if cfg.MaxInFlight <= 0 {
		cfg.MaxInFlight = 64
	}
	if cfg.RequestTimeout <= 0 {
		cfg.RequestTimeout = 30 * time.Second
	}
	h := &handler{
		cfg: cfg,
		limiter: resilience.NewHTTPLimiter(resilience.HTTPLimiterConfig{
			MaxInFlight: cfg.MaxInFlight,
			Timeout:     cfg.RequestTimeout,
		}),
		reg:     reg,
		started: time.Now(),
	}
	inner := http.NewServeMux()
	inner.HandleFunc("/views", h.handleViews)
	inner.HandleFunc("/view/", h.handleView)
	inner.HandleFunc("/series/", h.handleSeries)
	limited := h.limiter.Wrap(readOnly(inner))
	outer := http.NewServeMux()
	outer.HandleFunc("/healthz", h.handleHealth)
	outer.Handle("/", limited)
	return outer
}

// readOnly rejects anything but GET and HEAD: every view endpoint is
// a pure read.
func readOnly(next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.Method != http.MethodGet && r.Method != http.MethodHead {
			w.Header().Set("Allow", "GET, HEAD")
			http.Error(w, "read-only endpoint", http.StatusMethodNotAllowed)
			return
		}
		next.ServeHTTP(w, r)
	})
}

// span adopts the caller's trace context, if any.
func (h *handler) span(r *http.Request, view string) *obs.Span {
	if h.cfg.Tracer == nil {
		return nil
	}
	pctx, err := obs.ParseTraceparent(r.Header.Get(obs.TraceparentHeader))
	if err != nil || !pctx.Valid() {
		return nil
	}
	return h.cfg.Tracer.StartRemote("analytics_query", pctx, obs.A("view", view))
}

func (h *handler) handleViews(w http.ResponseWriter, r *http.Request) {
	if span := h.span(r, "catalog"); span != nil {
		defer span.End()
	}
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(h.cfg.Engine.Views())
}

// viewName extracts the trailing path element of /view/ or /series/.
func viewName(path, prefix string) string {
	return strings.TrimSuffix(strings.TrimPrefix(path, prefix), "/")
}

func (h *handler) serveSnapshot(w http.ResponseWriter, r *http.Request, name string) ([]byte, bool) {
	start := time.Now()
	e := h.cfg.Engine
	b, err := e.Snapshot(name)
	if err != nil {
		var unknown *ErrUnknownView
		if errors.As(err, &unknown) {
			http.Error(w, err.Error(), http.StatusNotFound)
		} else {
			http.Error(w, err.Error(), http.StatusInternalServerError)
		}
		return nil, false
	}
	e.m.queries.With(name).Add(1)
	e.m.querySeconds.Observe(time.Since(start).Seconds())
	return b, true
}

func (h *handler) handleView(w http.ResponseWriter, r *http.Request) {
	name := viewName(r.URL.Path, "/view/")
	if span := h.span(r, name); span != nil {
		defer span.End()
	}
	b, ok := h.serveSnapshot(w, r, name)
	if !ok {
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.Write(b)
	w.Write([]byte("\n"))
}

// seriesEnvelope picks the per-point array out of a view snapshot.
type seriesEnvelope struct {
	Points []json.RawMessage `json:"points"`
	Months []json.RawMessage `json:"months"`
}

func (h *handler) handleSeries(w http.ResponseWriter, r *http.Request) {
	name := viewName(r.URL.Path, "/series/")
	if span := h.span(r, name); span != nil {
		defer span.End()
	}
	b, ok := h.serveSnapshot(w, r, name)
	if !ok {
		return
	}
	var env seriesEnvelope
	if err := json.Unmarshal(b, &env); err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
		return
	}
	rows := env.Points
	if rows == nil {
		rows = env.Months
	}
	w.Header().Set("Content-Type", "application/x-ndjson")
	for _, row := range rows {
		w.Write(row)
		w.Write([]byte("\n"))
	}
}

func (h *handler) handleHealth(w http.ResponseWriter, r *http.Request) {
	e := h.cfg.Engine
	hp := AnalyzedHealth{
		Status:           "ok",
		Cursor:           e.Cursor(),
		Shards:           make(map[string]int64),
		CheckpointCursor: -1,
		Views:            e.Views(),
		Limiter:          h.limiter.Stats(),
	}
	for _, shard := range e.SortedShards() {
		hp.Shards[fmt.Sprintf("%d", shard)] = e.ShardCursor(shard)
	}
	if f := h.cfg.Follower; f != nil {
		hp.Lag = f.Lag()
		hp.CheckpointCursor = f.lastCkpt
	}
	if h.limiter.Saturated() {
		hp.Status = "saturated"
	}
	if h.reg != nil {
		hp.Telemetry = obs.Summarize(time.Since(h.started), e.m.querySeconds.Snapshot(), 3)
	}
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(hp)
}
