package coalition

import "testing"

func TestJurisdictionalRegime(t *testing.T) {
	// With compliance fit mattering, distinct regional winners emerge:
	// the GDPR specialist wins the EU, the CCPA-flexible provider the
	// US — the paper's observed regime.
	m := NewMarket(DefaultConfig(), DefaultProviders())
	out := m.Run()
	if out.GlobalCoalition(0.5) {
		t.Error("jurisdictional regime must not produce a global coalition")
	}
	if m.Providers[out.Winner[EU]].Name != "gdpr-specialist" {
		t.Errorf("EU winner = %s, want gdpr-specialist (share %v)",
			m.Providers[out.Winner[EU]].Name, out.Share[out.Winner[EU]][EU])
	}
	if m.Providers[out.Winner[US]].Name != "ccpa-flexible" {
		t.Errorf("US winner = %s, want ccpa-flexible", m.Providers[out.Winner[US]].Name)
	}
	// Winners dominate their home jurisdiction.
	if out.Share[out.Winner[EU]][EU] < 0.6 || out.Share[out.Winner[US]][US] < 0.6 {
		t.Errorf("regional dominance weak: EU=%.2f US=%.2f",
			out.Share[out.Winner[EU]][EU], out.Share[out.Winner[US]][US])
	}
}

func TestGlobalCoalitionRegime(t *testing.T) {
	// Remove jurisdictional differentiation (every provider fits every
	// jurisdiction equally): the network effect dominates and drives
	// the market toward one coalition (Woods & Böhme's theoretical
	// prediction). A small undifferentiated compliance value remains
	// so adoption bootstraps at all.
	cfg := DefaultConfig()
	cfg.ComplianceWeight = 0.25
	cfg.NetworkWeight = 1.6
	providers := DefaultProviders()
	for i := range providers {
		providers[i].Fit = [numJurisdictions]float64{EU: 0.7, US: 0.7}
	}
	m := NewMarket(cfg, providers)
	out := m.Run()
	if !out.GlobalCoalition(0.5) {
		t.Errorf("pure network-effect regime should converge to one coalition: EU winner %d (%.2f), US winner %d (%.2f)",
			out.Winner[EU], out.Share[out.Winner[EU]][EU],
			out.Winner[US], out.Share[out.Winner[US]][US])
	}
	// Concentration is near-monopoly.
	if out.HHI[EU] < 0.7 || out.HHI[US] < 0.7 {
		t.Errorf("HHI = %.2f/%.2f, want near-monopoly", out.HHI[EU], out.HHI[US])
	}
}

func TestConvergence(t *testing.T) {
	m := NewMarket(DefaultConfig(), DefaultProviders())
	m.Run()
	// After convergence a further round changes nothing (or almost
	// nothing: ties can flap, so allow a tiny residual).
	if changes := m.Step(999); changes > len(m.Websites)/100 {
		t.Errorf("market not converged: %d changes after Run", changes)
	}
}

func TestDeterminism(t *testing.T) {
	a := NewMarket(DefaultConfig(), DefaultProviders()).Run()
	b := NewMarket(DefaultConfig(), DefaultProviders()).Run()
	for p := range a.Share {
		if a.Share[p] != b.Share[p] {
			t.Fatal("identical seeds must give identical equilibria")
		}
	}
}

func TestFeesMatter(t *testing.T) {
	// Price the specialist out of the market entirely: it must not
	// retain the EU.
	cfg := DefaultConfig()
	providers := DefaultProviders()
	providers[0].Fee = 1e6
	m := NewMarket(cfg, providers)
	out := m.Run()
	if out.Winner[EU] == 0 && out.Share[0][EU] > 0 {
		t.Error("an infinitely expensive provider cannot win")
	}
}

func TestAdoptionPartial(t *testing.T) {
	// Not every website adopts: low-traffic sites cannot cover the
	// fee (the long tail of Figure 5 has low adoption).
	m := NewMarket(DefaultConfig(), DefaultProviders())
	out := m.Run()
	for j := 0; j < numJurisdictions; j++ {
		if out.Adoption[j] <= 0 || out.Adoption[j] >= 1 {
			t.Errorf("jurisdiction %d adoption = %.2f, want partial", j, out.Adoption[j])
		}
	}
	none := 0
	for _, w := range m.Websites {
		if w.Provider == -1 {
			none++
		}
	}
	if none == 0 {
		t.Error("some websites should remain without a CMP")
	}
}

func TestSortedProviders(t *testing.T) {
	out := &Outcome{Share: [][numJurisdictions]float64{{0.1, 0.1}, {0.8, 0.8}, {0.1, 0.1}}}
	if got := out.SortedProviders(); got[0] != 1 {
		t.Errorf("sorted = %v", got)
	}
}
