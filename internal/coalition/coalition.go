// Package coalition implements the consent-coalition market model of
// Woods and Böhme ("The Commodification of Consent", WEIS 2020), the
// theory the paper's measurements speak to: CMPs share consent across
// their customer websites, so a CMP's value to a new customer grows
// with its installed base — a network effect the theory predicts ends
// in a single global coalition ("winner takes all").
//
// The paper's longitudinal data contradicts the pure prediction:
// jurisdictional boundaries split the market, with Quantcast
// establishing dominance in the EU+UK and OneTrust in the US
// (Section 5.2). This model reproduces both regimes: with one
// jurisdiction it converges to a near-monopoly; with jurisdiction-
// specific compliance fit it converges to distinct regional winners —
// the configuration the measurements support.
package coalition

import (
	"math"
	"sort"

	"repro/internal/rng"
)

// Jurisdiction is a regulatory region websites belong to.
type Jurisdiction int

const (
	EU Jurisdiction = iota
	US
	numJurisdictions int = iota
)

func (j Jurisdiction) String() string {
	if j == US {
		return "US"
	}
	return "EU"
}

// Provider is one CMP competing for websites.
type Provider struct {
	Name string
	// Fee is the per-period price a website pays.
	Fee float64
	// Fit[j] is how well the provider's product matches jurisdiction
	// j's compliance requirements, in [0,1]. A GDPR-targeted product
	// has high EU fit; a CCPA-targeted one high US fit.
	Fit [numJurisdictions]float64
}

// Website is one publisher choosing (or not) a provider.
type Website struct {
	ID           int
	Jurisdiction Jurisdiction
	// Traffic scales the value the website derives from consented
	// users.
	Traffic float64
	// Provider is the current choice; -1 means none.
	Provider int
}

// Config parameterizes the market simulation.
type Config struct {
	Seed     uint64
	Websites int
	// EUShare is the fraction of websites in the EU jurisdiction.
	EUShare float64
	// NetworkWeight scales the consent-sharing network effect: the
	// extra value of joining a coalition that already holds consent
	// from many users of your jurisdiction.
	NetworkWeight float64
	// ComplianceWeight scales the jurisdiction-fit term. Zero removes
	// jurisdictional differentiation, yielding the theory's global-
	// coalition regime.
	ComplianceWeight float64
	// SwitchCost is the utility a website loses by changing provider;
	// it damps oscillation, as real migration costs do.
	SwitchCost float64
	// TasteWeight scales idiosyncratic per-website provider
	// preferences (integration effort, sales relationships, design
	// taste); keeps equilibria interior rather than 100/0.
	TasteWeight float64
	// Rounds is the number of best-response iterations.
	Rounds int
}

// DefaultConfig returns a market calibrated to the paper's observed
// regime: jurisdictional fit matters, so regional winners emerge.
func DefaultConfig() Config {
	return Config{
		Seed:             1,
		Websites:         4_000,
		EUShare:          0.45,
		NetworkWeight:    1.0,
		ComplianceWeight: 0.8,
		SwitchCost:       0.15,
		TasteWeight:      0.60,
		Rounds:           40,
	}
}

// Market is the evolving state.
type Market struct {
	cfg       Config
	src       *rng.Source
	Providers []Provider
	Websites  []Website
}

// DefaultProviders returns stylized competitors: a GDPR-targeted
// provider (Quantcast-like), a CCPA-flexible one (OneTrust-like), and
// a cheap gateway product (Cookiebot-like).
func DefaultProviders() []Provider {
	return []Provider{
		{Name: "gdpr-specialist", Fee: 0.30, Fit: [numJurisdictions]float64{EU: 0.95, US: 0.45}},
		{Name: "ccpa-flexible", Fee: 0.32, Fit: [numJurisdictions]float64{EU: 0.55, US: 0.95}},
		{Name: "gateway", Fee: 0.12, Fit: [numJurisdictions]float64{EU: 0.60, US: 0.50}},
	}
}

// NewMarket initializes websites with no provider.
func NewMarket(cfg Config, providers []Provider) *Market {
	if cfg.Websites <= 0 {
		cfg = DefaultConfig()
	}
	m := &Market{cfg: cfg, src: rng.New(cfg.Seed).Derive("coalition"), Providers: providers}
	m.Websites = make([]Website, cfg.Websites)
	for i := range m.Websites {
		j := US
		if m.src.Bool(cfg.EUShare, "jurisdiction", rng.Key(i)) {
			j = EU
		}
		r := m.src.Stream("traffic", rng.Key(i))
		m.Websites[i] = Website{
			ID:           i,
			Jurisdiction: j,
			Traffic:      math.Exp(r.NormFloat64() * 0.8),
			Provider:     -1,
		}
	}
	return m
}

// shares returns, per provider, the total traffic of member websites
// in each jurisdiction, plus jurisdiction traffic totals.
func (m *Market) shares() (byProv [][numJurisdictions]float64, total [numJurisdictions]float64) {
	byProv = make([][numJurisdictions]float64, len(m.Providers))
	for i := range m.Websites {
		w := &m.Websites[i]
		total[w.Jurisdiction] += w.Traffic
		if w.Provider >= 0 {
			byProv[w.Provider][w.Jurisdiction] += w.Traffic
		}
	}
	return byProv, total
}

// utility computes website w's per-period utility from provider p
// given the current coalition shares.
func (m *Market) utility(w *Website, p int, byProv [][numJurisdictions]float64, total [numJurisdictions]float64) float64 {
	prov := &m.Providers[p]
	j := w.Jurisdiction
	// Network effect: consent already collected from your audience by
	// coalition members transfers to you. Concave (diminishing
	// returns), as additional shared consent overlaps.
	pool := 0.0
	if total[j] > 0 {
		pool = byProv[p][j] / total[j]
	}
	network := m.cfg.NetworkWeight * math.Sqrt(pool)
	compliance := m.cfg.ComplianceWeight * prov.Fit[j]
	taste := m.cfg.TasteWeight * (m.src.Float64("taste", rng.Key(w.ID), prov.Name)*2 - 1)
	return w.Traffic*(network+compliance+taste) - prov.Fee
}

// Step runs one best-response round: each website (in a deterministic
// shuffled order) picks the provider maximizing utility, or none if
// all utilities are negative. Returns the number of changes.
func (m *Market) Step(round int) int {
	byProv, total := m.shares()
	order := m.src.Stream("order", rng.Key(round)).Perm(len(m.Websites))
	changes := 0
	for _, idx := range order {
		w := &m.Websites[idx]
		best, bestU := -1, 0.0
		for p := range m.Providers {
			u := m.utility(w, p, byProv, total)
			if p != w.Provider {
				u -= m.cfg.SwitchCost * w.Traffic
			}
			if u > bestU {
				best, bestU = p, u
			}
		}
		if best != w.Provider {
			// Update the shares incrementally so later movers in the
			// same round see the new state.
			if w.Provider >= 0 {
				byProv[w.Provider][w.Jurisdiction] -= w.Traffic
			}
			if best >= 0 {
				byProv[best][w.Jurisdiction] += w.Traffic
			}
			w.Provider = best
			changes++
		}
	}
	return changes
}

// Run iterates to (approximate) equilibrium and returns the outcome.
func (m *Market) Run() *Outcome {
	for round := 0; round < m.cfg.Rounds; round++ {
		if m.Step(round) == 0 {
			break
		}
	}
	return m.Outcome()
}

// Outcome summarizes the equilibrium.
type Outcome struct {
	// Share[p][j] is provider p's share of jurisdiction j's traffic
	// among CMP-using websites.
	Share [][numJurisdictions]float64
	// Adoption[j] is the fraction of jurisdiction-j traffic using any
	// provider.
	Adoption [numJurisdictions]float64
	// HHI[j] is the Herfindahl–Hirschman concentration index of
	// jurisdiction j's provider market (1 = monopoly).
	HHI [numJurisdictions]float64
	// Winner[j] is the providers' index with the largest share in j.
	Winner [numJurisdictions]int
}

// Outcome computes the summary for the current state.
func (m *Market) Outcome() *Outcome {
	byProv, total := m.shares()
	out := &Outcome{Share: make([][numJurisdictions]float64, len(m.Providers))}
	var adopted [numJurisdictions]float64
	for p := range m.Providers {
		for j := 0; j < numJurisdictions; j++ {
			adopted[j] += byProv[p][j]
		}
	}
	for j := 0; j < numJurisdictions; j++ {
		if total[j] > 0 {
			out.Adoption[j] = adopted[j] / total[j]
		}
		bestShare := 0.0
		for p := range m.Providers {
			share := 0.0
			if adopted[j] > 0 {
				share = byProv[p][j] / adopted[j]
			}
			out.Share[p][j] = share
			out.HHI[j] += share * share
			if share > bestShare {
				bestShare = share
				out.Winner[j] = p
			}
		}
	}
	return out
}

// GlobalCoalition reports whether one provider dominates every
// jurisdiction (share > threshold everywhere) — the Woods-Böhme
// prediction the paper's measurements contradict.
func (o *Outcome) GlobalCoalition(threshold float64) bool {
	winner := o.Winner[0]
	for j := 0; j < numJurisdictions; j++ {
		if o.Winner[j] != winner || o.Share[winner][j] <= threshold {
			return false
		}
	}
	return true
}

// SortedProviders returns provider indices by total share, largest
// first, for reporting.
func (o *Outcome) SortedProviders() []int {
	idx := make([]int, len(o.Share))
	for i := range idx {
		idx[i] = i
	}
	sort.Slice(idx, func(a, b int) bool {
		ta := o.Share[idx[a]][EU] + o.Share[idx[a]][US]
		tb := o.Share[idx[b]][EU] + o.Share[idx[b]][US]
		return ta > tb
	})
	return idx
}
