package consent

import (
	"testing"

	"repro/internal/gvl"
	"repro/internal/tcf"
	"repro/internal/users"
)

func smallGVL() *gvl.List {
	h := gvl.GenerateHistory(gvl.HistoryConfig{Seed: 1, Versions: 3, InitialVendors: 40, PeakVendors: 60})
	return &h.Versions[len(h.Versions)-1]
}

func TestDialogNotShownOutsideEU(t *testing.T) {
	d := NewQuantcastDialog(smallGVL())
	pop := users.NewPopulation(users.DefaultConfig())
	v := pop.Visitor(0)
	v.EU = false
	s := d.Show(v, ConfigDirectReject, pop.Stream(v))
	if s.DialogShownMS != 0 || s.Decision != DecisionNone {
		t.Errorf("dialog shown to non-EU visitor: %+v", s)
	}
	if s.DOMContentLoadedMS <= 0 {
		t.Error("page load must still be logged")
	}
}

func TestDialogSuppressedForRepeatVisitors(t *testing.T) {
	d := NewQuantcastDialog(smallGVL())
	pop := users.NewPopulation(users.DefaultConfig())
	v := pop.Visitor(1)
	v.EU = true
	v.HasConsentCookie = true
	s := d.Show(v, ConfigDirectReject, pop.Stream(v))
	if s.DialogShownMS != 0 {
		t.Error("repeat visitors must not see the dialog again")
	}
}

func TestSessionTimeline(t *testing.T) {
	d := NewQuantcastDialog(smallGVL())
	pop := users.NewPopulation(users.DefaultConfig())
	for i := 0; i < 200; i++ {
		v := pop.Visitor(i)
		v.EU = true
		v.HasConsentCookie = false
		s := d.Show(v, ConfigDirectReject, pop.Stream(v))
		if s.DialogShownMS <= s.DOMContentLoadedMS {
			t.Fatal("dialog must appear after DOMContentLoaded")
		}
		if s.Decision != DecisionNone && s.ClosedMS <= s.DialogShownMS {
			t.Fatal("decisions must close the dialog after it appeared")
		}
		if s.Decision == DecisionNone && s.ClosedMS != 0 {
			t.Fatal("undecided sessions must not have a close time")
		}
	}
}

func TestAcceptRecordsConsentString(t *testing.T) {
	list := smallGVL()
	d := NewQuantcastDialog(list)
	pop := users.NewPopulation(users.DefaultConfig())
	var accept, reject *Session
	for i := 0; accept == nil || reject == nil; i++ {
		if i > 5_000 {
			t.Fatal("no accept/reject sessions found")
		}
		v := pop.Visitor(i)
		v.EU = true
		v.HasConsentCookie = false
		s := d.Show(v, ConfigDirectReject, pop.Stream(v))
		switch s.Decision {
		case DecisionAccept:
			if accept == nil {
				accept = s
			}
		case DecisionReject:
			if reject == nil {
				reject = s
			}
		}
	}
	for _, s := range []*Session{accept, reject} {
		if s.ConsentString == "" {
			t.Fatal("decisions must record a TCF consent string")
		}
		c, err := tcf.Decode(s.ConsentString)
		if err != nil {
			t.Fatalf("consent string must decode: %v", err)
		}
		if c.VendorListVersion != list.VendorListVersion {
			t.Errorf("vendor list version = %d", c.VendorListVersion)
		}
		if c.MaxVendorID != list.MaxVendorID() {
			t.Errorf("MaxVendorID = %d, want %d", c.MaxVendorID, list.MaxVendorID())
		}
	}
	ca, _ := tcf.Decode(accept.ConsentString)
	cr, _ := tcf.Decode(reject.ConsentString)
	if len(ca.ConsentedVendors()) != list.MaxVendorID() {
		t.Error("accepting must grant all vendors on the GVL")
	}
	if len(cr.ConsentedVendors()) != 0 {
		t.Error("rejecting must grant no vendors")
	}
	if !ca.PurposesAllowed[1] || cr.PurposesAllowed[1] {
		t.Error("purpose grants wrong")
	}
	if accept.Clicks != 1 {
		t.Errorf("accepting takes 1 click, got %d", accept.Clicks)
	}
	if reject.Clicks != 1 {
		t.Errorf("config A rejection takes 1 click, got %d", reject.Clicks)
	}
}

func TestMoreOptionsRejectNeedsMoreClicks(t *testing.T) {
	d := NewQuantcastDialog(smallGVL())
	pop := users.NewPopulation(users.DefaultConfig())
	for i := 0; i < 5_000; i++ {
		v := pop.Visitor(i)
		v.EU = true
		v.HasConsentCookie = false
		s := d.Show(v, ConfigMoreOptions, pop.Stream(v))
		if s.Decision == DecisionReject {
			if s.Clicks != 3 {
				t.Errorf("config B rejection clicks = %d, want 3", s.Clicks)
			}
			return
		}
	}
	t.Fatal("no rejection under config B found")
}

func TestFieldExperimentFigure10(t *testing.T) {
	exp := NewFieldExperiment(1, smallGVL())
	res, err := Analyze(exp.Run())
	if err != nil {
		t.Fatal(err)
	}
	a, b := res.DirectReject, res.MoreOptions

	// Sample sizes in the paper's ballpark (2,910 dialogs shown).
	if res.TotalShown < 2_000 || res.TotalShown > 4_500 {
		t.Errorf("TotalShown = %d", res.TotalShown)
	}
	if res.Timestamps < 4*res.TotalShown {
		t.Errorf("timestamps = %d, want several per session", res.Timestamps)
	}

	// Figure 10 medians: accept ≈3.2s, reject ≈3.6s (A), ≈6.7s (B).
	if a.MedianAcceptSec < 2.7 || a.MedianAcceptSec > 3.8 {
		t.Errorf("A median accept = %.2f", a.MedianAcceptSec)
	}
	if a.MedianRejectSec <= a.MedianAcceptSec {
		t.Error("rejecting must be slower than accepting even with a direct button")
	}
	if a.MedianRejectSec > 4.4 {
		t.Errorf("A median reject = %.2f", a.MedianRejectSec)
	}
	if b.MedianRejectSec < 5.5 || b.MedianRejectSec > 8.2 {
		t.Errorf("B median reject = %.2f, want ≈6.7 (doubling)", b.MedianRejectSec)
	}
	if b.MedianRejectSec < 1.6*a.MedianRejectSec {
		t.Error("removing the reject button must roughly double the rejection time")
	}

	// Both tests significant; B's far more so (paper: p<0.01, p<0.001).
	if a.Test.P >= 0.01 {
		t.Errorf("A: p = %v, want < 0.01", a.Test.P)
	}
	if b.Test.P >= 0.001 {
		t.Errorf("B: p = %v, want < 0.001", b.Test.P)
	}
	if a.Test.Z >= 0 || b.Test.Z >= 0 {
		t.Error("z-scores must be negative (accepts faster)")
	}

	// Consent rate rises from ≈83% to ≈90%.
	if a.ConsentRate < 0.79 || a.ConsentRate > 0.87 {
		t.Errorf("A consent rate = %.2f, want ≈0.83", a.ConsentRate)
	}
	if b.ConsentRate < a.ConsentRate+0.04 {
		t.Errorf("B consent rate (%.2f) must clearly exceed A (%.2f)", b.ConsentRate, a.ConsentRate)
	}
}

func TestExperimentDeterminism(t *testing.T) {
	list := smallGVL()
	r1, err := Analyze(NewFieldExperiment(3, list).Run())
	if err != nil {
		t.Fatal(err)
	}
	r2, err := Analyze(NewFieldExperiment(3, list).Run())
	if err != nil {
		t.Fatal(err)
	}
	if r1.TotalShown != r2.TotalShown || r1.DirectReject.MedianAcceptSec != r2.DirectReject.MedianAcceptSec {
		t.Error("experiments must be reproducible for a seed")
	}
}

func TestTrustArcOptOutFigure9(t *testing.T) {
	flow := NewTrustArcFlow(1)
	runs := flow.HourlySeries(MeasurementWindowDays)
	if len(runs) != MeasurementWindowDays*24 {
		t.Fatalf("runs = %d, want hourly for two weeks", len(runs))
	}
	med := MedianTotalMS(runs) / 1000
	if med < 30 || med > 45 {
		t.Errorf("median opt-out = %.1fs, want ≥34s ballpark", med)
	}
	for _, run := range runs[:10] {
		if run.Clicks != 7 {
			t.Errorf("clicks = %d, want 7", run.Clicks)
		}
		if run.TotalMS < 25_000 {
			t.Errorf("opt-out in %.1fs, implausibly fast", run.TotalMS/1000)
		}
		if run.ExtraDomains != 25 {
			t.Errorf("extra domains = %d, want 25", run.ExtraDomains)
		}
		if run.ExtraRequests < 230 || run.ExtraRequests > 330 {
			t.Errorf("extra requests = %d, want ≈279", run.ExtraRequests)
		}
		mbC := float64(run.ExtraBytesCompressed) / 1e6
		mbR := float64(run.ExtraBytesRaw) / 1e6
		if mbC < 0.9 || mbC > 1.6 {
			t.Errorf("compressed overhead = %.2f MB, want ≈1.2", mbC)
		}
		if mbR < 4.5 || mbR > 7.0 {
			t.Errorf("raw overhead = %.2f MB, want ≈5.8", mbR)
		}
		// Steps are contiguous and ordered.
		prevEnd := 0.0
		for _, s := range run.Steps {
			if s.StartMS != prevEnd {
				t.Fatalf("step %q starts at %.0f, want %.0f", s.Name, s.StartMS, prevEnd)
			}
			if s.EndMS < s.StartMS {
				t.Fatalf("step %q ends before it starts", s.Name)
			}
			prevEnd = s.EndMS
		}
		if prevEnd != run.TotalMS {
			t.Error("TotalMS must equal the last step's end")
		}
	}
}

func TestTrustArcAcceptIsInstant(t *testing.T) {
	flow := NewTrustArcFlow(1)
	optout := flow.RunOptOut(0)
	accept := flow.RunAccept(0)
	if accept.TotalMS > 1_000 {
		t.Errorf("accepting took %.0fms, must be near-instant", accept.TotalMS)
	}
	if optout.TotalMS < 20*accept.TotalMS {
		t.Error("opting out must be vastly slower than accepting")
	}
}

func TestMedianTotalMSEmpty(t *testing.T) {
	if MedianTotalMS(nil) != 0 {
		t.Error("empty series median must be 0")
	}
}

func TestDecisionStrings(t *testing.T) {
	if DecisionAccept.String() != "accept" || DecisionReject.String() != "reject" || DecisionNone.String() != "none" {
		t.Error("decision names")
	}
	if ConfigDirectReject.String() != "direct-reject" || ConfigMoreOptions.String() != "more-options" {
		t.Error("config names")
	}
}
