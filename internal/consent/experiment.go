package consent

import (
	"repro/internal/consensu"
	"repro/internal/gvl"
	"repro/internal/stats"
	"repro/internal/users"
)

// FieldExperiment is the randomized Quantcast dialog experiment the
// paper ran on mitmproxy.org in May 2020 (Sections 3.2, 4.3): each
// page load is randomly assigned one of the two dialog configurations;
// the collection script logs ~120,000 timestamps; consent dialogs are
// shown to visitors from the EU only (Quantcast's default).
type FieldExperiment struct {
	Population *users.Population
	Dialog     *QuantcastDialog
	// Visitors is the number of page loads to simulate.
	Visitors int
}

// NewFieldExperiment wires the experiment at the paper's scale: enough
// page loads that ~2,910 EU visitors see a dialog.
func NewFieldExperiment(seed uint64, list *gvl.List) *FieldExperiment {
	cfg := users.DefaultConfig()
	cfg.Seed = seed
	dialog := NewQuantcastDialog(list)
	// Decisions persist to the shared consensu.org store, so repeat
	// page loads by the same visitor show no dialog.
	dialog.Store = consensu.NewStore()
	return &FieldExperiment{
		Population: users.NewPopulation(cfg),
		Dialog:     dialog,
		Visitors:   9_000,
	}
}

// Run simulates all page loads and returns the session log.
func (e *FieldExperiment) Run() []*Session {
	sessions := make([]*Session, 0, e.Visitors)
	for i := 0; i < e.Visitors; i++ {
		v := e.Population.Visitor(i)
		r := e.Population.Stream(v)
		cfg := ConfigDirectReject
		if r.Float64() < 0.5 { // randomized assignment per page load
			cfg = ConfigMoreOptions
		}
		sessions = append(sessions, e.Dialog.Show(v, cfg, r))
	}
	return sessions
}

// ConfigResult summarizes one dialog configuration (one Figure 10
// panel).
type ConfigResult struct {
	Config QuantcastConfig
	// Shown is the number of EU visitors who saw the dialog.
	Shown int
	// AcceptTimes / RejectTimes are interaction times in seconds of
	// visitors who decided within three minutes.
	AcceptTimes []float64
	RejectTimes []float64
	// MedianAcceptSec / MedianRejectSec are the Figure 10 medians.
	MedianAcceptSec float64
	MedianRejectSec float64
	// ConsentRate = accepts / (accepts + rejects).
	ConsentRate float64
	// Test is the Mann–Whitney U comparison of accept vs. reject
	// interaction times.
	Test stats.MannWhitneyResult
}

// ExperimentResult aggregates both configurations.
type ExperimentResult struct {
	DirectReject ConfigResult
	MoreOptions  ConfigResult
	// TotalShown is the number of dialogs displayed across configs
	// (2,910 in the paper).
	TotalShown int
	// Timestamps is the total number of logged timestamps (the paper
	// logged about 120,000 across all page loads).
	Timestamps int
}

// Analyze computes the Figure 10 statistics from a session log.
func Analyze(sessions []*Session) (*ExperimentResult, error) {
	res := &ExperimentResult{
		DirectReject: ConfigResult{Config: ConfigDirectReject},
		MoreOptions:  ConfigResult{Config: ConfigMoreOptions},
	}
	for _, s := range sessions {
		// Every session logs DOMContentLoaded; shown dialogs add the
		// ping timestamp; decisions add close + consent data.
		res.Timestamps++
		if s.DialogShownMS == 0 {
			continue
		}
		res.Timestamps++
		cr := &res.DirectReject
		if s.Config == ConfigMoreOptions {
			cr = &res.MoreOptions
		}
		cr.Shown++
		if s.Decision == DecisionNone {
			continue
		}
		res.Timestamps += 2
		sec := s.InteractionMS() / 1000
		if s.Decision == DecisionAccept {
			cr.AcceptTimes = append(cr.AcceptTimes, sec)
		} else {
			cr.RejectTimes = append(cr.RejectTimes, sec)
		}
	}
	res.TotalShown = res.DirectReject.Shown + res.MoreOptions.Shown
	for _, cr := range []*ConfigResult{&res.DirectReject, &res.MoreOptions} {
		if len(cr.AcceptTimes) > 0 {
			cr.MedianAcceptSec, _ = stats.Median(cr.AcceptTimes)
		}
		if len(cr.RejectTimes) > 0 {
			cr.MedianRejectSec, _ = stats.Median(cr.RejectTimes)
		}
		if n := len(cr.AcceptTimes) + len(cr.RejectTimes); n > 0 {
			cr.ConsentRate = float64(len(cr.AcceptTimes)) / float64(n)
		}
		if len(cr.AcceptTimes) > 0 && len(cr.RejectTimes) > 0 {
			t, err := stats.MannWhitney(cr.AcceptTimes, cr.RejectTimes)
			if err != nil {
				return nil, err
			}
			cr.Test = t
		}
	}
	return res, nil
}
