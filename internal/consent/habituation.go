package consent

import (
	"repro/internal/gvl"
	"repro/internal/stats"
	"repro/internal/users"
)

// Habituation experiment: CMP standardization shows users the same
// dialog everywhere, strengthening the habituation effect the paper
// discusses in Section 5.2. This harness re-runs the Figure 10
// experiment at increasing exposure levels and traces how the consent
// rate creeps up and interaction times shrink as users are "trained to
// accept".

// HabituationPoint is one exposure level's outcome.
type HabituationPoint struct {
	// Exposures is the number of dialogs the population has already
	// dismissed elsewhere.
	Exposures int
	// ConsentRate is the accept share among deciders.
	ConsentRate float64
	// MedianAcceptSec / MedianRejectSec are interaction medians under
	// the direct-reject configuration.
	MedianAcceptSec float64
	MedianRejectSec float64
	// Deciders is the sample size.
	Deciders int
}

// HabituationSeries runs the direct-reject dialog on the same visitor
// population at each exposure level. Visitors are habituated before
// interacting; everything else matches the Figure 10 experiment.
func HabituationSeries(seed uint64, list *gvl.List, visitors int, levels []int) ([]HabituationPoint, error) {
	cfg := users.DefaultConfig()
	cfg.Seed = seed
	pop := users.NewPopulation(cfg)
	dialog := NewQuantcastDialog(list)

	out := make([]HabituationPoint, 0, len(levels))
	for _, level := range levels {
		h := users.DefaultHabituation(level)
		var accepts, rejects []float64
		for i := 0; i < visitors; i++ {
			v := pop.Visitor(i)
			if !v.EU || v.HasConsentCookie {
				continue
			}
			v = h.Apply(v)
			s := dialog.Show(v, ConfigDirectReject, pop.Stream(v))
			sec := s.InteractionMS() / 1000
			switch s.Decision {
			case DecisionAccept:
				accepts = append(accepts, sec)
			case DecisionReject:
				rejects = append(rejects, sec)
			}
		}
		pt := HabituationPoint{Exposures: level, Deciders: len(accepts) + len(rejects)}
		if pt.Deciders > 0 {
			pt.ConsentRate = float64(len(accepts)) / float64(pt.Deciders)
		}
		var err error
		if len(accepts) > 0 {
			if pt.MedianAcceptSec, err = stats.Median(accepts); err != nil {
				return nil, err
			}
		}
		if len(rejects) > 0 {
			if pt.MedianRejectSec, err = stats.Median(rejects); err != nil {
				return nil, err
			}
		}
		out = append(out, pt)
	}
	return out, nil
}
