package consent

import (
	"testing"

	"repro/internal/consensu"
	"repro/internal/users"
)

// TestRepeatVisitorSuppression: once a decision is stored in the
// global consensu.org cookie, subsequent page loads show no dialog
// ("Repeated visitors will not be counted as the CMP stores the first
// consent decision and no additional dialogs will be shown").
func TestRepeatVisitorSuppression(t *testing.T) {
	d := NewQuantcastDialog(smallGVL())
	d.Store = consensu.NewStore()
	pop := users.NewPopulation(users.DefaultConfig())

	var first *Session
	var visitor users.Visitor
	for i := 0; first == nil; i++ {
		if i > 5_000 {
			t.Fatal("no deciding visitor found")
		}
		v := pop.Visitor(i)
		v.EU = true
		v.HasConsentCookie = false
		s := d.Show(v, ConfigDirectReject, pop.Stream(v))
		if s.Decision != DecisionNone {
			first = s
			visitor = v
		}
	}
	// The decision landed in the global store.
	stored, err := d.Store.CookieAccess(visitor.ID)
	if err != nil {
		t.Fatalf("CookieAccess after decision: %v", err)
	}
	if stored != first.ConsentString {
		t.Error("stored cookie must match the session's consent string")
	}
	// A second page load by the same visitor shows no dialog.
	again := d.Show(visitor, ConfigDirectReject, pop.Stream(visitor))
	if again.DialogShownMS != 0 || again.Decision != DecisionNone {
		t.Errorf("repeat visit showed a dialog: %+v", again)
	}
}

// TestAbandonedSessionsNotStored: visitors who make no decision leave
// no cookie behind and are prompted again next time.
func TestAbandonedSessionsNotStored(t *testing.T) {
	d := NewQuantcastDialog(smallGVL())
	d.Store = consensu.NewStore()
	pop := users.NewPopulation(users.DefaultConfig())
	for i := 0; i < 5_000; i++ {
		v := pop.Visitor(i)
		v.EU = true
		v.HasConsentCookie = false
		v.Pref = users.PrefAbandon
		s := d.Show(v, ConfigDirectReject, pop.Stream(v))
		if s.Decision != DecisionNone {
			continue
		}
		if _, err := d.Store.CookieAccess(v.ID); err == nil {
			t.Fatal("abandoned session must not store a cookie")
		}
		again := d.Show(v, ConfigDirectReject, pop.Stream(v))
		if again.DialogShownMS == 0 {
			t.Fatal("undecided visitors must be prompted again")
		}
		return
	}
	t.Fatal("no abandoning visitor exercised")
}
