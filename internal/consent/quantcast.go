// Package consent implements the CMP dialog machinery the paper's
// user-interface experiments exercise (Sections 3.2 and 4.3): the two
// configurations of Quantcast's real consent dialog (Figures A.1–A.3)
// with their __cmp-instrumented lifecycle, and TrustArc's staged
// opt-out flow whose waiting time Figure 9 measures.
package consent

import (
	"math/rand"
	"time"

	"repro/internal/consensu"
	"repro/internal/gvl"
	"repro/internal/rng"
	"repro/internal/tcf"
	"repro/internal/users"
)

// QuantcastConfig selects the dialog variant of the randomized
// experiment.
type QuantcastConfig int

const (
	// ConfigDirectReject shows an explicit "I DO NOT ACCEPT" button on
	// the first page (Figure A.1) — a real choice between accepting
	// and refusing at the same level, per the CNIL guidelines.
	ConfigDirectReject QuantcastConfig = iota
	// ConfigMoreOptions replaces the reject button with "MORE OPTIONS"
	// leading to a second page with per-purpose controls and a reject
	// button (Figures A.2–A.3).
	ConfigMoreOptions
)

func (c QuantcastConfig) String() string {
	if c == ConfigMoreOptions {
		return "more-options"
	}
	return "direct-reject"
}

// Decision is a visitor's consent decision.
type Decision int

const (
	DecisionNone Decision = iota
	DecisionAccept
	DecisionReject
)

func (d Decision) String() string {
	switch d {
	case DecisionAccept:
		return "accept"
	case DecisionReject:
		return "reject"
	default:
		return "none"
	}
}

// Session is the instrumented record of one dialog impression: the
// collection script logged page load time (DOMContentLoaded), the time
// the dialog appeared (__cmp('ping')), the time it was closed, and the
// decision (__cmp('getConsentData')).
type Session struct {
	VisitorID string
	Config    QuantcastConfig
	// DOMContentLoadedMS is the page load time.
	DOMContentLoadedMS float64
	// DialogShownMS is when the dialog appeared.
	DialogShownMS float64
	// ClosedMS is when the dialog was closed; 0 if never.
	ClosedMS float64
	Decision Decision
	Clicks   int
	// ConsentString is the recorded TCF consent string for accepts.
	ConsentString string
}

// InteractionMS returns the dialog interaction time (shown → closed),
// the quantity Figure 10 reports.
func (s *Session) InteractionMS() float64 { return s.ClosedMS - s.DialogShownMS }

// QuantcastDialog simulates the embedded CMP dialog.
type QuantcastDialog struct {
	// VendorList is the GVL version the prompt requests consent for
	// (consent for all vendors on the list, the default).
	VendorList *gvl.List
	// CMPID is Quantcast's TCF CMP identifier.
	CMPID int
	// Store, when set, is the global consensu.org consent store: the
	// dialog is suppressed for visitors with an existing cookie (the
	// paper checked this via the CookieAccess endpoint) and decisions
	// are written back to it.
	Store *consensu.Store
}

// NewQuantcastDialog returns a dialog requesting consent for the given
// vendor list.
func NewQuantcastDialog(list *gvl.List) *QuantcastDialog {
	return &QuantcastDialog{VendorList: list, CMPID: 10}
}

// hasGlobalCookie reports whether the visitor already carries a
// consensu.org consent cookie.
func (d *QuantcastDialog) hasGlobalCookie(v users.Visitor) bool {
	if v.HasConsentCookie {
		return true
	}
	if d.Store == nil {
		return false
	}
	_, err := d.Store.CookieAccess(v.ID)
	return err == nil
}

// latency draws a log-normal latency with the given median seconds,
// scaled by the visitor's speed, in milliseconds.
func latency(r *rand.Rand, medianSec, sigma, speed float64) float64 {
	return rng.LogNormal(r, lnf(medianSec), sigma) * speed * 1000
}

// abandonCutoffMS: users with no decision within the first three
// minutes after page load are excluded (Section 4.3).
const abandonCutoffMS = 3 * 60 * 1000

// Show runs one dialog impression for a visitor and returns the
// instrumented session. The dialog is only shown to EU visitors
// without an existing consensu.org cookie; for others, the returned
// session has DialogShownMS == 0 and no decision.
func (d *QuantcastDialog) Show(v users.Visitor, cfg QuantcastConfig, r *rand.Rand) *Session {
	s := &Session{VisitorID: v.ID, Config: cfg}
	s.DOMContentLoadedMS = latency(r, 0.75, 0.45, 1)
	if !v.EU || d.hasGlobalCookie(v) {
		return s
	}
	// CMP script load + prompt render after DOMContentLoaded.
	s.DialogShownMS = s.DOMContentLoadedMS + latency(r, 0.55, 0.35, 1)

	pref := v.Pref
	if pref == users.PrefReject && cfg == ConfigMoreOptions && v.Persistence < rejectGiveUpShare {
		// Privacy-aware visitors facing the extra navigation cost give
		// up and accept instead (consent rate rises 83% → 90%).
		pref = users.PrefAccept
	}

	switch pref {
	case users.PrefAbandon:
		return s
	case users.PrefAccept:
		// Read the prompt, then one click on the accept button.
		t := latency(r, 2.15, 0.52, v.Speed) + latency(r, 0.95, 0.40, v.Speed)
		s.ClosedMS = s.DialogShownMS + t
		s.Decision = DecisionAccept
		s.Clicks = 1
	case users.PrefReject:
		switch cfg {
		case ConfigDirectReject:
			// Reading plus locating the (less prominent) reject
			// button: slightly but significantly slower than accepting
			// (3.6s vs 3.2s median).
			t := latency(r, 2.15, 0.52, v.Speed) + latency(r, 0.95, 0.40, v.Speed) + latency(r, 0.52, 0.55, v.Speed)
			s.ClosedMS = s.DialogShownMS + t
			s.Clicks = 1
		case ConfigMoreOptions:
			// Read, click "More Options", wait for the purposes page,
			// scan it, reject all: the median doubles to 6.7s.
			t := latency(r, 2.15, 0.52, v.Speed) + // read first page
				latency(r, 0.95, 0.40, v.Speed) + // click More Options
				latency(r, 0.55, 0.35, 1) + // second page render
				latency(r, 1.62, 0.55, v.Speed) + // scan purpose controls
				latency(r, 0.95, 0.40, v.Speed) // click Reject All
			s.ClosedMS = s.DialogShownMS + t
			s.Clicks = 3
		}
		s.Decision = DecisionReject
	}
	if s.ClosedMS-s.DOMContentLoadedMS > abandonCutoffMS {
		// Treated as no decision by the analysis.
		s.ClosedMS = 0
		s.Decision = DecisionNone
		s.Clicks = 0
		return s
	}
	if s.Decision != DecisionNone {
		s.ConsentString = d.recordConsent(s.Decision)
		if d.Store != nil && s.ConsentString != "" {
			// Persist to the global consensu.org cookie so the user is
			// not prompted again on any TCF website.
			_ = d.Store.Set(v.ID, s.ConsentString)
		}
	}
	return s
}

// rejectGiveUpShare is the fraction of intrinsic rejectors who accept
// instead when no direct reject button exists; calibrated to move the
// consent rate from 83% to 90%.
const rejectGiveUpShare = 0.41

// recordConsent builds and encodes the TCF consent string stored in
// the global consensu.org cookie (and returned by getConsentData).
func (d *QuantcastDialog) recordConsent(decision Decision) string {
	created := time.Date(2020, time.May, 10, 12, 0, 0, 0, time.UTC)
	c := tcf.New(created)
	c.CMPID = d.CMPID
	c.CMPVersion = 1
	c.ConsentScreen = 1
	if d.VendorList != nil {
		c.VendorListVersion = d.VendorList.VendorListVersion
		if decision == DecisionAccept {
			c.SetAllPurposes(true)
			c.SetAllVendors(d.VendorList.MaxVendorID(), true)
		} else {
			c.MaxVendorID = d.VendorList.MaxVendorID()
		}
	}
	api := tcf.NewCMPAPI(true, true)
	api.Load()
	api.RecordConsent(c)
	data, err := api.GetConsentData()
	if err != nil {
		return ""
	}
	return data.ConsentData
}
