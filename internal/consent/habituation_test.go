package consent

import "testing"

func TestHabituationSeries(t *testing.T) {
	pts, err := HabituationSeries(1, smallGVL(), 6_000, []int{0, 10, 50, 500})
	if err != nil {
		t.Fatal(err)
	}
	if len(pts) != 4 {
		t.Fatalf("points = %d", len(pts))
	}
	for _, pt := range pts {
		if pt.Deciders < 500 {
			t.Fatalf("level %d: only %d deciders", pt.Exposures, pt.Deciders)
		}
	}
	first, last := pts[0], pts[len(pts)-1]
	// Trained to accept: the consent rate creeps up…
	if last.ConsentRate <= first.ConsentRate {
		t.Errorf("consent rate must rise with exposure: %.3f → %.3f",
			first.ConsentRate, last.ConsentRate)
	}
	// …and habituated users interact faster.
	if last.MedianAcceptSec >= first.MedianAcceptSec {
		t.Errorf("accept median must shrink: %.2f → %.2f",
			first.MedianAcceptSec, last.MedianAcceptSec)
	}
	// The effect saturates rather than exploding: bounded shift.
	if last.ConsentRate-first.ConsentRate > 0.15 {
		t.Errorf("consent-rate shift %.3f implausibly large",
			last.ConsentRate-first.ConsentRate)
	}
	// The fresh-population point matches the Figure 10 baseline.
	if first.ConsentRate < 0.78 || first.ConsentRate > 0.88 {
		t.Errorf("baseline consent rate = %.3f, want ≈0.83", first.ConsentRate)
	}
}
