package consent

import (
	"math"
	"math/rand"
	"sort"

	"repro/internal/rng"
	"repro/internal/simtime"
)

func lnf(x float64) float64 { return math.Log(x) }

// TrustArc opt-out flow (item I6, Figures 9): "TrustArc consent
// prompts disappear immediately if one accepts cookies, but otherwise
// make the user wait for prolonged periods while opt-out requests are
// being sent to a hodgepodge of third parties." Opting out on
// forbes.com took at least 7 clicks and 34 s, caused an additional 279
// HTTP(S) requests to 25 domains, and transferred an extra 1.2 MB /
// 5.8 MB (compressed / uncompressed). The paper automated the flow
// with a Chrome extension and measured hourly for two weeks.

// Step is one stage of the opt-out pipeline.
type Step struct {
	Name     string
	Click    bool // the step requires a user click
	StartMS  float64
	EndMS    float64
	Requests int
	// BytesCompressed / BytesRaw transferred during the step.
	BytesCompressed int
	BytesRaw        int
}

// OptOutRun is one automated measurement of the full opt-out.
type OptOutRun struct {
	Steps []Step
	// TotalMS is the raw waiting time, not including user interaction
	// (the extension clicks instantly).
	TotalMS float64
	// Clicks is the number of clicks the flow requires.
	Clicks int
	// ExtraRequests / ExtraDomains / ExtraBytes* are the network
	// overhead relative to accepting.
	ExtraRequests        int
	ExtraDomains         int
	ExtraBytesCompressed int
	ExtraBytesRaw        int
}

// AcceptRun measures the accept path for comparison: the dialog closes
// immediately.
type AcceptRun struct {
	TotalMS  float64
	Requests int
}

// TrustArcFlow simulates the forbes.com deployment.
type TrustArcFlow struct {
	// Partners is the number of third-party opt-out endpoints (25).
	Partners int
	// Concurrency is how many partner opt-outs proceed in parallel.
	Concurrency int
	src         *rng.Source
}

// NewTrustArcFlow returns the flow with the forbes.com parameters.
func NewTrustArcFlow(seed uint64) *TrustArcFlow {
	return &TrustArcFlow{Partners: 25, Concurrency: 4, src: rng.New(seed).Derive("trustarc")}
}

// fixed JavaScript timeouts in the dialog's opt-out pipeline, observed
// as constant floors independent of network speed.
const (
	overlayRenderMS    = 1_200
	preferencesLoadMS  = 5_200  // preference-center iframe
	categoryToggleMS   = 700    // per category toggle re-render
	jsSettleTimeoutMS  = 10_000 // hard-coded wait before confirmation
	confirmationPollMS = 3_000
)

// RunOptOut executes one automated opt-out measurement at the given
// hour index (for hourly series).
func (f *TrustArcFlow) RunOptOut(hour int) *OptOutRun {
	r := f.src.Stream("optout", rng.Key(hour))
	run := &OptOutRun{}
	now := 0.0
	addStep := func(name string, click bool, dur float64, reqs, bc, br int) {
		run.Steps = append(run.Steps, Step{
			Name: name, Click: click, StartMS: now, EndMS: now + dur,
			Requests: reqs, BytesCompressed: bc, BytesRaw: br,
		})
		now += dur
		if click {
			run.Clicks++
		}
	}

	// Click 1: open the consent banner's "Manage Preferences".
	addStep("open-preference-center", true, overlayRenderMS+jitter(r, 300), 6, 45_000, 180_000)
	// The preference center iframe loads its partner inventory.
	addStep("load-preference-center", false, preferencesLoadMS+jitter(r, 1_200), 12, 150_000, 700_000)
	// Clicks 2–4: switch to the opt-out tab and toggle the three
	// non-essential categories (no opt-out exists for "essential").
	addStep("select-optout-tab", true, categoryToggleMS+jitter(r, 200), 2, 6_000, 20_000)
	addStep("toggle-functional", true, categoryToggleMS+jitter(r, 200), 2, 6_000, 20_000)
	addStep("toggle-advertising", true, categoryToggleMS+jitter(r, 200), 2, 6_000, 20_000)
	// Click 5: submit preferences.
	addStep("submit-preferences", true, 900+jitter(r, 300), 4, 15_000, 60_000)

	// Per-partner opt-out fan-out: each of the 25 partner domains
	// receives a burst of cookie-rewrite requests, processed with
	// limited concurrency inside the dialog's iframe.
	partnerMS, reqs, bc, br := f.partnerFanOut(r)
	addStep("send-partner-optouts", false, partnerMS, reqs, bc, br)

	// Hard-coded JS settle timeout plus confirmation polling.
	addStep("js-settle-timeout", false, jsSettleTimeoutMS, 0, 0, 0)
	addStep("confirmation-poll", false, confirmationPollMS+jitter(r, 800), 5, 12_000, 45_000)
	// Clicks 6–7: acknowledge the confirmation and close the dialog.
	addStep("acknowledge", true, 600+jitter(r, 200), 1, 2_000, 8_000)
	addStep("close-dialog", true, 400+jitter(r, 150), 0, 0, 0)

	run.TotalMS = now
	accept := f.RunAccept(hour)
	for _, s := range run.Steps {
		run.ExtraRequests += s.Requests
		run.ExtraBytesCompressed += s.BytesCompressed
		run.ExtraBytesRaw += s.BytesRaw
	}
	run.ExtraRequests -= accept.Requests
	run.ExtraDomains = f.Partners
	return run
}

// partnerFanOut models the third-party opt-out bursts: ~11 requests
// per partner domain, 4-way concurrent, each round trip log-normal.
func (f *TrustArcFlow) partnerFanOut(r *rand.Rand) (durMS float64, reqs, bytesCompressed, bytesRaw int) {
	perPartner := 10
	lanes := make([]float64, f.Concurrency)
	for p := 0; p < f.Partners; p++ {
		// Assign the partner to the earliest-finishing lane.
		lane := 0
		for i := range lanes {
			if lanes[i] < lanes[lane] {
				lane = i
			}
		}
		t := 0.0
		for q := 0; q < perPartner; q++ {
			t += rng.LogNormal(r, lnf(120), 0.6) // ms per round trip
			reqs++
			bytesCompressed += 2_800 + r.Intn(2_000)
			bytesRaw += 15_000 + r.Intn(8_000)
		}
		lanes[lane] += t
	}
	max := 0.0
	for _, t := range lanes {
		if t > max {
			max = t
		}
	}
	return max, reqs, bytesCompressed, bytesRaw
}

// RunAccept measures the accept path: the dialog closes immediately
// after one click; only the consent beacon fires.
func (f *TrustArcFlow) RunAccept(hour int) *AcceptRun {
	r := f.src.Stream("accept", rng.Key(hour))
	return &AcceptRun{
		TotalMS:  350 + jitter(r, 150),
		Requests: 2,
	}
}

// HourlySeries runs the measurement hourly for the given number of
// days (the paper: two weeks) and returns all runs.
func (f *TrustArcFlow) HourlySeries(days int) []*OptOutRun {
	runs := make([]*OptOutRun, 0, days*24)
	for h := 0; h < days*24; h++ {
		runs = append(runs, f.RunOptOut(h))
	}
	return runs
}

// MedianTotalMS returns the median opt-out waiting time of a series.
func MedianTotalMS(runs []*OptOutRun) float64 {
	if len(runs) == 0 {
		return 0
	}
	ts := make([]float64, len(runs))
	for i, r := range runs {
		ts[i] = r.TotalMS
	}
	sort.Float64s(ts)
	return ts[len(ts)/2]
}

// jitter draws uniform noise in [0, maxMS).
func jitter(r *rand.Rand, maxMS float64) float64 { return r.Float64() * maxMS }

// MeasurementWindowDays is the paper's measurement duration (hourly
// for two weeks in May 2020).
const MeasurementWindowDays = 14

// MeasurementDay anchors the series in simulated time.
var MeasurementDay = simtime.Table1Snapshot
