// Package browser simulates the instrumented Google Chrome instances
// Netograph crawls with (Section 3.2): it loads a URL from the
// synthetic web, follows redirects, records HTTP requests, cookies and
// a screenshot, and applies the platform's aggressive load-detection
// timeouts — frame-load events, request timing, a five-second idle
// timeout, and a 45-second total page timeout (Section 3.5).
package browser

import (
	"fmt"
	"net/url"
	"strings"

	"repro/internal/capture"
	"repro/internal/psl"
	"repro/internal/simtime"
	"repro/internal/webworld"
)

// Options configure one browser instance.
type Options struct {
	// ExtendedTimeout relaxes the idle timeout, as in the second
	// toplist configuration; default is Netograph's aggressive policy.
	ExtendedTimeout bool
	// Language is the preferred browser language; default "en-US".
	Language string
	// StoreDOM stores the DOM tree with computed styles in the
	// capture, as done for toplist crawls only.
	StoreDOM bool
	// UserAgent defaults to Chrome-on-Linux, as used by the platform.
	UserAgent string
}

// ConfigLabel returns the capture config label for these options.
func (o Options) ConfigLabel() string {
	switch {
	case o.Language == "de":
		return "lang-de"
	case o.Language == "en-GB":
		return "lang-en-gb"
	case o.ExtendedTimeout:
		return "extended-timeout"
	default:
		return "default"
	}
}

// Timeout policy (Section 3.5, "Crawler Timeouts").
const (
	idleTimeoutMS     = 5_000
	totalTimeoutMS    = 45_000
	extendedIdleMS    = 30_000
	extendedTotalMS   = 90_000
	defaultUserAgent  = "Mozilla/5.0 (X11; Linux x86_64) AppleWebKit/537.36 (KHTML, like Gecko) Chrome/83.0.4103.61 Safari/537.36"
	defaultResolution = "1024x800"
)

// Visitor is the substrate a browser loads pages from. *webworld.World
// implements it directly; resilience/chaos wraps it to inject
// deterministic faults between the browser and the world.
type Visitor interface {
	Visit(domain, path string, ctx webworld.VisitContext) (*webworld.Page, error)
}

// Browser loads pages from a webworld (or any fault-injecting wrapper
// of one).
type Browser struct {
	world Visitor
	opts  Options
}

// New returns a browser over the world.
func New(w Visitor, opts Options) *Browser {
	if opts.Language == "" {
		opts.Language = "en-US"
	}
	if opts.UserAgent == "" {
		opts.UserAgent = defaultUserAgent
	}
	return &Browser{world: w, opts: opts}
}

// Load visits a seed URL and produces a capture. Failed loads return a
// capture with Failed set (and the error recorded) rather than an
// error: the platform records unsuccessful captures too.
func (b *Browser) Load(seedURL string, day simtime.Day, vantage capture.Vantage) *capture.Capture {
	c := &capture.Capture{
		SeedURL: seedURL,
		Day:     day,
		Vantage: vantage,
		Config:  b.opts.ConfigLabel(),
	}
	host, path, err := splitSeed(seedURL)
	if err != nil {
		c.Failed = true
		c.Error = err.Error()
		return c
	}
	domain, err := psl.EffectiveTLDPlusOne(host)
	if err != nil {
		// Seed hosts are occasionally bare public suffixes; treat the
		// host itself as the domain.
		domain = host
	}
	page, err := b.world.Visit(domain, path, webworld.VisitContext{
		Day:      day,
		Geo:      vantage.Geo,
		Cloud:    vantage.Cloud,
		Language: b.opts.Language,
	})
	if err != nil {
		c.Failed = true
		c.Error = err.Error()
		return c
	}
	b.fill(c, page)
	return c
}

// fill converts a rendered page into a capture under the timeout
// policy.
func (b *Browser) fill(c *capture.Capture, page *webworld.Page) {
	c.Status = page.Status
	c.FinalURL = "https://" + page.FinalHost + page.Path
	// The paper counts by the final address-bar domain normalized via
	// the Public Suffix List, not the seed domain (≈11% of crawls
	// include top-level redirects).
	if d, err := psl.EffectiveTLDPlusOne(page.FinalHost); err == nil {
		c.FinalDomain = d
	} else {
		c.FinalDomain = page.FinalDomain
	}
	if page.Status == 0 {
		c.Failed = true
		c.Error = "no valid HTTP response"
		return
	}

	idle, total := idleTimeoutMS, totalTimeoutMS
	if b.opts.ExtendedTimeout {
		idle, total = extendedIdleMS, extendedTotalMS
	}
	// The load is considered finished at the first network-idle gap of
	// `idle` ms; resources starting later are never observed.
	cutoff := page.IdleAtMS + idle
	if cutoff > total {
		cutoff = total
	}
	for _, r := range page.Resources {
		if r.StartMS > cutoff {
			c.TimedOut = true
			continue
		}
		c.Requests = append(c.Requests, capture.Request{
			Host:            r.Host,
			Path:            r.Path,
			Status:          r.Status,
			BytesCompressed: r.BytesCompressed,
			BytesRaw:        r.BytesRaw,
		})
	}
	c.Cookies = append(c.Cookies, page.Cookies...)
	c.Storage = append(c.Storage, page.Storage...)
	c.ScreenshotText = page.ScreenshotText
	if b.opts.StoreDOM {
		c.DOM = page.DOM
	}
}

// splitSeed parses a seed URL into hostname and path.
func splitSeed(seed string) (host, path string, err error) {
	u, err := url.Parse(seed)
	if err != nil {
		return "", "", fmt.Errorf("browser: parse seed: %w", err)
	}
	if u.Host == "" {
		return "", "", fmt.Errorf("browser: seed %q has no host", seed)
	}
	host = strings.TrimPrefix(strings.ToLower(u.Hostname()), "www.")
	path = u.EscapedPath()
	if path == "" {
		path = "/"
	}
	return host, path, nil
}
