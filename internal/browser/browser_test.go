package browser

import (
	"strings"
	"testing"

	"repro/internal/capture"
	"repro/internal/simtime"
	"repro/internal/webworld"
)

func world(t *testing.T) *webworld.World {
	t.Helper()
	return webworld.New(webworld.Config{Seed: 1, Domains: 5_000})
}

func find(w *webworld.World, pred func(*webworld.Domain) bool) *webworld.Domain {
	for _, d := range w.Domains() {
		if pred(d) {
			return d
		}
	}
	return nil
}

func TestConfigLabels(t *testing.T) {
	tests := []struct {
		opts Options
		want string
	}{
		{Options{}, "default"},
		{Options{ExtendedTimeout: true}, "extended-timeout"},
		{Options{Language: "de", ExtendedTimeout: true}, "lang-de"},
		{Options{Language: "en-GB", ExtendedTimeout: true}, "lang-en-gb"},
	}
	for _, tt := range tests {
		if got := tt.opts.ConfigLabel(); got != tt.want {
			t.Errorf("ConfigLabel(%+v) = %q, want %q", tt.opts, got, tt.want)
		}
	}
}

func TestSplitSeed(t *testing.T) {
	tests := []struct {
		seed, host, path string
	}{
		{"https://www.example.com/", "example.com", "/"},
		{"https://www.example.com/page/3?utm=x", "example.com", "/page/3"},
		{"http://example.co.uk", "example.co.uk", "/"},
		{"https://Foo.Example.COM/a", "foo.example.com", "/a"},
	}
	for _, tt := range tests {
		host, path, err := splitSeed(tt.seed)
		if err != nil || host != tt.host || path != tt.path {
			t.Errorf("splitSeed(%q) = %q,%q,%v; want %q,%q", tt.seed, host, path, err, tt.host, tt.path)
		}
	}
	if _, _, err := splitSeed("not a url"); err == nil {
		t.Error("invalid seed must fail")
	}
	if _, _, err := splitSeed("/relative"); err == nil {
		t.Error("host-less seed must fail")
	}
}

func TestLoadSuccess(t *testing.T) {
	w := world(t)
	d := find(w, func(d *webworld.Domain) bool {
		return len(d.Episodes) > 0 && !d.Unreachable && d.RedirectTo == "" && !d.AntiBot && !d.SlowLoad && !d.EUOnlyEmbed && !d.Geo451
	})
	if d == nil {
		t.Skip("no suitable domain")
	}
	b := New(w, Options{})
	c := b.Load("https://www."+d.Name+"/", d.Episodes[0].Start, capture.EUCloud)
	if c.Failed {
		t.Fatalf("load failed: %s", c.Error)
	}
	if c.FinalDomain != d.Name {
		t.Errorf("FinalDomain = %q", c.FinalDomain)
	}
	if c.Config != "default" || c.Vantage.Name != capture.EUCloud.Name {
		t.Errorf("capture metadata: %+v", c)
	}
	found := false
	for _, r := range c.Requests {
		if r.Host == d.Episodes[0].CMP.Hostname() {
			found = true
		}
	}
	if !found {
		t.Error("CMP request missing from capture")
	}
	if c.DOM != "" {
		t.Error("DOM must not be stored without StoreDOM")
	}
	cd := New(w, Options{StoreDOM: true}).Load("https://www."+d.Name+"/", d.Episodes[0].Start, capture.EUUniversity)
	if cd.DOM == "" {
		t.Error("StoreDOM must record the DOM tree")
	}
}

func TestLoadUnreachable(t *testing.T) {
	w := world(t)
	d := find(w, func(d *webworld.Domain) bool { return d.Unreachable })
	if d == nil {
		t.Skip("no unreachable domain")
	}
	c := New(w, Options{}).Load("https://www."+d.Name+"/", 100, capture.USCloud)
	if !c.Failed || !strings.Contains(c.Error, "connection refused") {
		t.Errorf("capture: %+v", c)
	}
}

func TestLoadBadSeed(t *testing.T) {
	w := world(t)
	c := New(w, Options{}).Load("::::", 0, capture.USCloud)
	if !c.Failed {
		t.Error("bad seed must fail")
	}
}

// TestTimeoutPolicy: slow-loading CMP resources are cut by the default
// idle timeout but captured with the extended one (Section 3.5,
// "Crawler Timeouts").
func TestTimeoutPolicy(t *testing.T) {
	w := world(t)
	d := find(w, func(d *webworld.Domain) bool {
		return d.SlowLoad && !d.AntiBot && d.RedirectTo == "" && !d.EUOnlyEmbed && !d.Geo451
	})
	if d == nil {
		t.Skip("no slow-loading domain")
	}
	day := d.Episodes[0].Start
	cmpHost := d.Episodes[0].CMP.Hostname()
	url := "https://www." + d.Name + "/"

	fast := New(w, Options{}).Load(url, day, capture.EUUniversity)
	slow := New(w, Options{ExtendedTimeout: true}).Load(url, day, capture.EUUniversity)

	has := func(c *capture.Capture) bool {
		for _, r := range c.Requests {
			if r.Host == cmpHost {
				return true
			}
		}
		return false
	}
	if has(fast) {
		t.Error("default timeouts should miss the slow CMP resources")
	}
	if !fast.TimedOut {
		t.Error("cut captures must be flagged TimedOut")
	}
	if !has(slow) {
		t.Error("extended timeout should capture the slow CMP resources")
	}
}

func TestRedirectCountsAsTarget(t *testing.T) {
	w := world(t)
	d := find(w, func(d *webworld.Domain) bool { return d.RedirectTo != "" })
	if d == nil {
		t.Skip("no redirecting domain")
	}
	c := New(w, Options{}).Load("https://www."+d.Name+"/", simtime.Day(100), capture.EUCloud)
	if c.Failed {
		t.Skip("redirect target failed")
	}
	if c.FinalDomain == d.Name {
		t.Error("capture must be attributed to the redirect target")
	}
}
