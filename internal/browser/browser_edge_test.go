package browser

import (
	"testing"

	"repro/internal/capture"
	"repro/internal/simtime"
	"repro/internal/webworld"
)

func calmDay(w *webworld.World, d *webworld.Domain, anchor simtime.Day) simtime.Day {
	for off := simtime.Day(0); off < 30; off++ {
		if !w.TransientDown(d.Name, anchor+off) {
			return anchor + off
		}
	}
	return anchor
}

func TestLoadNoValidResponse(t *testing.T) {
	w := world(t)
	d := find(w, func(d *webworld.Domain) bool { return d.NoValidResponse })
	if d == nil {
		t.Skip("no such domain")
	}
	c := New(w, Options{}).Load("https://www."+d.Name+"/", calmDay(w, d, 100), capture.USCloud)
	if !c.Failed {
		t.Errorf("capture: %+v", c)
	}
}

func TestLoadHTTPError(t *testing.T) {
	w := world(t)
	d := find(w, func(d *webworld.Domain) bool { return d.HTTPError && d.RedirectTo == "" })
	if d == nil {
		t.Skip("no such domain")
	}
	c := New(w, Options{}).Load("https://www."+d.Name+"/", calmDay(w, d, 100), capture.USCloud)
	if c.Failed {
		t.Fatal("HTTP errors are captures, not failures")
	}
	if c.Status != 503 {
		t.Errorf("status = %d", c.Status)
	}
	if len(c.Requests) != 0 {
		t.Errorf("error pages log no subresources: %+v", c.Requests)
	}
}

func TestLoadGeo451(t *testing.T) {
	w := world(t)
	d := find(w, func(d *webworld.Domain) bool { return d.Geo451 && d.RedirectTo == "" })
	if d == nil {
		t.Skip("no 451 domain")
	}
	day := calmDay(w, d, 200)
	eu := New(w, Options{}).Load("https://www."+d.Name+"/", day, capture.EUCloud)
	if eu.Status != 451 {
		t.Errorf("EU status = %d", eu.Status)
	}
	us := New(w, Options{}).Load("https://www."+d.Name+"/", day, capture.USCloud)
	if us.Status == 451 {
		t.Error("US visitors must not see 451")
	}
}

func TestLoadRecordsStorage(t *testing.T) {
	w := world(t)
	d := find(w, func(d *webworld.Domain) bool {
		return !d.Unreachable && !d.NoValidResponse && !d.HTTPError && d.RedirectTo == "" &&
			!d.Geo451 && !d.AntiBot && !d.PrivacyFriendly
	})
	if d == nil {
		t.Skip("no plain domain")
	}
	c := New(w, Options{}).Load("https://www."+d.Name+"/", calmDay(w, d, 300), capture.EUUniversity)
	if c.Failed {
		t.Fatalf("load failed: %s", c.Error)
	}
	if len(c.Cookies) == 0 {
		t.Error("ordinary pages set cookies")
	}
	// Storage records are probabilistic per page but overwhelmingly
	// present across a handful of pages.
	hasStorage := len(c.Storage) > 0
	for i := 1; i < 6 && !hasStorage; i++ {
		c := New(w, Options{}).Load("https://www."+d.Name+d.SubsitePath(i), calmDay(w, d, 300), capture.EUUniversity)
		hasStorage = len(c.Storage) > 0
	}
	if !hasStorage {
		t.Error("no storage records across six pages")
	}
}
