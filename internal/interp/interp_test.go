package interp

import (
	"testing"
	"testing/quick"

	"repro/internal/cmps"
	"repro/internal/detect"
	"repro/internal/simtime"
)

func obs(day simtime.Day, c cmps.ID, captures int) detect.DayObservation {
	share := 0.0
	if c != cmps.None {
		share = 1
	}
	return detect.DayObservation{Day: day, CMP: c, Share: share, Captures: captures}
}

func TestInterpolationEqualBoundaries(t *testing.T) {
	// Quantcast observed a month apart: presence assumed throughout
	// (Section 3.2's example).
	ivs := Build([]detect.DayObservation{
		obs(100, cmps.Quantcast, 1),
		obs(130, cmps.Quantcast, 1),
	}, Options{})
	if len(ivs) != 1 {
		t.Fatalf("intervals = %+v", ivs)
	}
	if ivs[0].Start != 100 || ivs[0].End != 160 {
		t.Errorf("interval = %+v, want [100,160) (second obs + 30d fade)", ivs[0])
	}
	if At(ivs, 115) != cmps.Quantcast {
		t.Error("gap must be interpolated")
	}
}

func TestDisagreeingBoundaries(t *testing.T) {
	// CMP changes between observations: no presence assumed in the gap
	// beyond the fade-out of the first.
	ivs := Build([]detect.DayObservation{
		obs(100, cmps.Cookiebot, 1),
		obs(300, cmps.OneTrust, 1),
	}, Options{})
	if len(ivs) != 2 {
		t.Fatalf("intervals = %+v", ivs)
	}
	if ivs[0].End != 130 {
		t.Errorf("first interval must fade at 130, got %+v", ivs[0])
	}
	if At(ivs, 200) != cmps.None {
		t.Error("gap between disagreeing boundaries must be empty")
	}
	if At(ivs, 300) != cmps.OneTrust {
		t.Error("second observation must open a new interval")
	}
}

func TestDisagreeingBoundariesClose(t *testing.T) {
	// A different CMP observed within the first one's fade-out window
	// must truncate the first interval at the new observation.
	ivs := Build([]detect.DayObservation{
		obs(100, cmps.Cookiebot, 1),
		obs(110, cmps.OneTrust, 1),
	}, Options{})
	if len(ivs) != 2 {
		t.Fatalf("intervals = %+v", ivs)
	}
	if ivs[0].End != 110 {
		t.Errorf("first interval must end at the disagreeing observation: %+v", ivs[0])
	}
	if At(ivs, 109) != cmps.Cookiebot || At(ivs, 110) != cmps.OneTrust {
		t.Error("handover day wrong")
	}
}

func TestFadeOut(t *testing.T) {
	// Right-censoring: presence fades 30 days after the last
	// measurement ("last measured February 1st → no CMP as of March
	// 1st").
	ivs := Build([]detect.DayObservation{obs(500, cmps.TrustArc, 2)}, Options{})
	if At(ivs, 529) != cmps.TrustArc {
		t.Error("presence must persist inside the fade window")
	}
	if At(ivs, 530) != cmps.None {
		t.Error("presence must fade after 30 days")
	}
}

func TestFadeOutClampsToWindow(t *testing.T) {
	last := simtime.Day(simtime.NumDays - 5)
	ivs := Build([]detect.DayObservation{obs(last, cmps.LiveRamp, 1)}, Options{})
	if int(ivs[0].End) > simtime.NumDays {
		t.Errorf("interval end %d beyond window", ivs[0].End)
	}
}

func TestNoneEvidenceThreshold(t *testing.T) {
	// A single CMP-less capture (e.g. a bare privacy-policy page) must
	// not count as removal evidence; two captures must.
	weak := Build([]detect.DayObservation{
		obs(100, cmps.Quantcast, 1),
		obs(110, cmps.None, 1),
		obs(120, cmps.Quantcast, 1),
	}, Options{})
	if len(weak) != 1 {
		t.Fatalf("weak None must be ignored: %+v", weak)
	}
	strong := Build([]detect.DayObservation{
		obs(100, cmps.Quantcast, 1),
		obs(110, cmps.None, 2),
		obs(120, cmps.Quantcast, 1),
	}, Options{})
	if len(strong) != 2 {
		t.Fatalf("strong None must split the interval: %+v", strong)
	}
	if strong[0].End != 110 {
		t.Errorf("first interval must end at the None observation: %+v", strong[0])
	}
	// Ablation: NoneMinCaptures < 0 treats every None as evidence.
	ablation := Build([]detect.DayObservation{
		obs(100, cmps.Quantcast, 1),
		obs(110, cmps.None, 1),
		obs(120, cmps.Quantcast, 1),
	}, Options{NoneMinCaptures: -1})
	if len(ablation) != 2 {
		t.Fatalf("ablation must split: %+v", ablation)
	}
}

func TestNoInterpolationAblation(t *testing.T) {
	ivs := Build([]detect.DayObservation{
		obs(100, cmps.Quantcast, 1),
		obs(200, cmps.Quantcast, 1),
	}, Options{NoInterpolation: true})
	if len(ivs) != 2 {
		t.Fatalf("intervals = %+v", ivs)
	}
	if At(ivs, 150) != cmps.None {
		t.Error("no-interpolation must leave the gap empty")
	}
}

func TestFadeOutOverride(t *testing.T) {
	ivs := Build([]detect.DayObservation{obs(100, cmps.Quantcast, 1)}, Options{FadeOut: 10})
	if ivs[0].End != 110 {
		t.Errorf("custom fade = %+v", ivs[0])
	}
	ivs = Build([]detect.DayObservation{obs(100, cmps.Quantcast, 1)}, Options{FadeOut: -1})
	if ivs[0].End != 101 {
		t.Errorf("disabled fade = %+v", ivs[0])
	}
}

func TestSwitches(t *testing.T) {
	ivs := []Interval{
		{CMP: cmps.Cookiebot, Start: 100, End: 200},
		{CMP: cmps.OneTrust, Start: 210, End: simtime.Day(simtime.NumDays)},
	}
	sw := Switches(ivs)
	if len(sw) != 2 {
		t.Fatalf("switches = %+v", sw)
	}
	if sw[0].From != cmps.None || sw[0].To != cmps.Cookiebot || sw[0].Day != 100 {
		t.Errorf("adoption switch = %+v", sw[0])
	}
	if sw[1].From != cmps.Cookiebot || sw[1].To != cmps.OneTrust || sw[1].Day != 210 {
		t.Errorf("CMP switch = %+v", sw[1])
	}
}

func TestSwitchesLargeGapIsAbandon(t *testing.T) {
	ivs := []Interval{
		{CMP: cmps.Cookiebot, Start: 100, End: 200},
		{CMP: cmps.OneTrust, Start: 400, End: simtime.Day(simtime.NumDays)},
	}
	sw := Switches(ivs)
	if len(sw) != 3 {
		t.Fatalf("switches = %+v", sw)
	}
	if sw[1].From != cmps.Cookiebot || sw[1].To != cmps.None {
		t.Errorf("want abandon, got %+v", sw[1])
	}
	if sw[2].From != cmps.None || sw[2].To != cmps.OneTrust {
		t.Errorf("want fresh adoption, got %+v", sw[2])
	}
}

func TestSwitchesFinalAbandon(t *testing.T) {
	ivs := []Interval{{CMP: cmps.TrustArc, Start: 100, End: 300}}
	sw := Switches(ivs)
	if len(sw) != 2 || sw[1].To != cmps.None || sw[1].Day != 300 {
		t.Errorf("switches = %+v", sw)
	}
}

// TestIntervalsWellFormed: for any observation sequence, intervals are
// sorted, non-empty, non-overlapping, and inside the window.
func TestIntervalsWellFormed(t *testing.T) {
	providers := []cmps.ID{cmps.None, cmps.OneTrust, cmps.Quantcast, cmps.Cookiebot}
	f := func(seed uint32, n uint8) bool {
		count := int(n%12) + 1
		var seq []detect.DayObservation
		day := simtime.Day(seed % 200)
		x := seed
		for i := 0; i < count; i++ {
			x = x*1664525 + 1013904223
			day += simtime.Day(x%80) + 1
			if int(day) >= simtime.NumDays {
				break
			}
			c := providers[x%4]
			seq = append(seq, obs(day, c, int(x%3)+1))
		}
		ivs := Build(seq, Options{})
		prevEnd := simtime.Day(-1)
		for _, iv := range ivs {
			if iv.Start >= iv.End || iv.Start < prevEnd || int(iv.End) > simtime.NumDays || !iv.CMP.Valid() {
				return false
			}
			prevEnd = iv.End
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}
