// Package interp reconstructs continuous CMP presence from irregular
// social-media samples (Section 3.2, "Prevalence and Customization of
// CMPs"). Two rules apply:
//
//  1. Boundary interpolation: a missing observation period is filled
//     in only if both boundary measurements are classified equally
//     ("if we observed Quantcast on example.com a month ago and
//     observe it again today, we assume that example.com kept using
//     Quantcast throughout").
//  2. Right-censor fade-out: presence fades 30 days after the last
//     measurement ("if the last measurement was made on February 1st,
//     we assume no CMP presence as of March 1st").
//
// Toplist-based measurements have a fixed sampling frequency and need
// no interpolation.
package interp

import (
	"repro/internal/cmps"
	"repro/internal/detect"
	"repro/internal/simtime"
)

// FadeOutDays is the right-censoring horizon.
const FadeOutDays = 30

// Interval is a continuous period of CMP presence on a domain.
// End is exclusive.
type Interval struct {
	CMP   cmps.ID
	Start simtime.Day
	End   simtime.Day
	// Censored marks intervals whose end is an observation artifact —
	// the fade-out after the last sample or the window boundary —
	// rather than witnessed removal evidence (a disagreeing or
	// CMP-less observation). Duration analyses must treat censored
	// ends as lower bounds.
	Censored bool
}

// Options tune interval construction; zero value reproduces the paper.
type Options struct {
	// NoInterpolation disables rule 1 (ablation): each observation
	// then only supports presence on its own day plus fade-out.
	NoInterpolation bool
	// FadeOut overrides FadeOutDays; 0 means the default. Negative
	// disables fade-out entirely, counting presence only on observed
	// or interpolated days (ablation).
	FadeOut int
	// NoneMinCaptures is the minimum number of captures a CMP-less day
	// needs to count as evidence that the site removed its CMP; days
	// below the threshold (e.g. a single capture that happened to hit
	// a script-less privacy-policy page) are ignored. 0 means the
	// default of 2; negative means 1 (every None day is evidence —
	// ablation).
	NoneMinCaptures int
}

// DefaultNoneMinCaptures is the evidence threshold for CMP-removal
// observations.
const DefaultNoneMinCaptures = 2

// Build reconstructs presence intervals from a domain's classified
// day observations (ascending by day).
func Build(obs []detect.DayObservation, opts Options) []Interval {
	fade := simtime.Day(FadeOutDays)
	switch {
	case opts.FadeOut > 0:
		fade = simtime.Day(opts.FadeOut)
	case opts.FadeOut < 0:
		fade = 1 // presence only on the observation day itself
	}
	var out []Interval
	var cur *Interval
	endOf := func(day simtime.Day) simtime.Day {
		end := day + fade
		if int(end) > simtime.NumDays {
			end = simtime.Day(simtime.NumDays)
		}
		return end
	}
	noneMin := opts.NoneMinCaptures
	switch {
	case noneMin == 0:
		noneMin = DefaultNoneMinCaptures
	case noneMin < 0:
		noneMin = 1
	}
	for _, o := range obs {
		if o.CMP == cmps.None {
			if o.Captures < noneMin {
				// Too weak to witness a CMP removal (single capture of
				// a bare subsite); ignore.
				continue
			}
			// An explicit None observation terminates any running
			// interval at this day (disagreeing boundary) — witnessed
			// removal, not censoring.
			if cur != nil && cur.End > o.Day {
				cur.End = o.Day
				cur.Censored = false
			}
			cur = nil
			continue
		}
		if cur != nil && cur.CMP == o.CMP && !opts.NoInterpolation {
			// Equal boundaries: extend through the gap.
			cur.End = endOf(o.Day)
			cur.Censored = true
			continue
		}
		if cur != nil && cur.End > o.Day {
			// Disagreeing boundary: do not assume presence in the gap;
			// the earlier CMP's fade-out must not overlap the new one.
			// The switch was witnessed.
			cur.End = o.Day
			cur.Censored = false
		}
		out = append(out, Interval{CMP: o.CMP, Start: o.Day, End: endOf(o.Day), Censored: true})
		cur = &out[len(out)-1]
	}
	return out
}

// At returns the CMP present at the given day according to the
// intervals, or cmps.None.
func At(intervals []Interval, day simtime.Day) cmps.ID {
	for _, iv := range intervals {
		if day >= iv.Start && day < iv.End {
			return iv.CMP
		}
	}
	return cmps.None
}

// Switches extracts CMP transitions: consecutive intervals with
// different CMPs where the gap between them is at most maxGap days
// count as a switch; larger gaps count as an abandon followed by a
// fresh adoption. Adoptions from nothing and abandons to nothing are
// reported with cmps.None on the respective side.
type Switch struct {
	From cmps.ID
	To   cmps.ID
	Day  simtime.Day
}

// SwitchMaxGapDays is the largest gap still counted as a direct switch.
const SwitchMaxGapDays = 60

// Switches derives the transition list from a domain's intervals.
func Switches(intervals []Interval) []Switch {
	var out []Switch
	for i, iv := range intervals {
		if i == 0 {
			out = append(out, Switch{From: cmps.None, To: iv.CMP, Day: iv.Start})
			continue
		}
		prev := intervals[i-1]
		if iv.Start-prev.End <= SwitchMaxGapDays {
			if iv.CMP == prev.CMP {
				// Same CMP re-observed after a short evidence gap:
				// a continuation, not a switch.
				continue
			}
			out = append(out, Switch{From: prev.CMP, To: iv.CMP, Day: iv.Start})
		} else {
			out = append(out, Switch{From: prev.CMP, To: cmps.None, Day: prev.End})
			out = append(out, Switch{From: cmps.None, To: iv.CMP, Day: iv.Start})
		}
	}
	if n := len(intervals); n > 0 {
		last := intervals[n-1]
		if int(last.End) < simtime.NumDays {
			out = append(out, Switch{From: last.CMP, To: cmps.None, Day: last.End})
		}
	}
	return out
}
