# Developer entry points. `make check` is the gate every change must
# pass: vet, build, the full test suite under the race detector, and
# the seeded chaos suite.

GO ?= go

.PHONY: check vet build test race chaos bench fuzz

check: vet build race chaos

vet:
	$(GO) vet ./...

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# Seeded fault-injection suite: retry completion under injected 5xx /
# drop / anti-bot rates, byte-identical fault schedules across runs,
# torn-write repair, and capd load shedding under saturation.
chaos:
	$(GO) test ./internal/resilience/... ./internal/crawler/ ./internal/capstore/ -run 'Chaos' -count=1

# The capture-store perf pair: linear scan vs. indexed query.
bench:
	$(GO) test ./internal/capstore/ -run '^$$' -bench 'Query' -benchmem

# Short fuzz passes: the capture wire format (torn writes, segment
# boundaries, malformed tuples) and retry classification of malformed
# webworld/chaos error strings.
fuzz:
	$(GO) test ./internal/capturedb/ -run '^$$' -fuzz FuzzScan -fuzztime 30s
	$(GO) test ./internal/resilience/ -run '^$$' -fuzz FuzzClassifyError -fuzztime 15s
