# Developer entry points. `make check` is the gate every change must
# pass: vet, build, and the full test suite under the race detector.

GO ?= go

.PHONY: check vet build test race bench fuzz

check: vet build race

vet:
	$(GO) vet ./...

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# The capture-store perf pair: linear scan vs. indexed query.
bench:
	$(GO) test ./internal/capstore/ -run '^$$' -bench 'Query' -benchmem

# Short fuzz pass over the capture wire format (torn writes, segment
# boundaries, malformed tuples).
fuzz:
	$(GO) test ./internal/capturedb/ -run '^$$' -fuzz FuzzScan -fuzztime 30s
