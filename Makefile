# Developer entry points. `make check` is the gate every change must
# pass: vet, build, the full test suite under the race detector, and
# the seeded chaos suite.

GO ?= go

# Benchmark-regression harness knobs. BENCHTIME is fixed (iteration
# count, not wall time) so snapshots from different runs compare
# apples to apples; THRESHOLD is the relative ns/op regression bound
# benchdiff fails on.
BENCHTIME ?= 5x
BENCHDATE ?= $(shell date +%F)
BENCHSNAP ?= BENCH_$(BENCHDATE).json
OLD       ?= BENCH_seed.json
NEW       ?= $(BENCHSNAP)
THRESHOLD ?= 0.20

.PHONY: check vet build test race chaos bench benchdiff bench-capstore fuzz

check: vet build race chaos

vet:
	$(GO) vet ./...

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# Seeded fault-injection suite: retry completion under injected 5xx /
# drop / anti-bot rates, byte-identical fault schedules across runs,
# torn-write repair, and capd load shedding under saturation.
chaos:
	$(GO) test ./internal/resilience/... ./internal/crawler/ ./internal/capstore/ -run 'Chaos' -count=1

# Tier-1 benchmark suite → JSON snapshot. Runs every root-package
# benchmark at a fixed BENCHTIME, tees the raw output to bench.out,
# and parses it into $(BENCHSNAP) for benchdiff.
bench:
	$(GO) build -o bin/benchdiff ./cmd/benchdiff
	$(GO) test . -run '^$$' -bench . -benchmem -benchtime $(BENCHTIME) -timeout 30m | tee bench.out
	./bin/benchdiff -parse bench.out -date $(BENCHDATE) -out $(BENCHSNAP)
	@echo "snapshot written to $(BENCHSNAP)"

# Compare two snapshots; fails if any benchmark regressed beyond
# THRESHOLD. Usage: make benchdiff OLD=BENCH_seed.json NEW=BENCH_x.json
benchdiff:
	$(GO) build -o bin/benchdiff ./cmd/benchdiff
	./bin/benchdiff -compare -threshold $(THRESHOLD) $(OLD) $(NEW)

# The capture-store perf pair: linear scan vs. indexed query.
bench-capstore:
	$(GO) test ./internal/capstore/ -run '^$$' -bench 'Query' -benchmem

# Short fuzz passes: the capture wire format (torn writes, segment
# boundaries, malformed tuples) and retry classification of malformed
# webworld/chaos error strings.
fuzz:
	$(GO) test ./internal/capturedb/ -run '^$$' -fuzz FuzzScan -fuzztime 30s
	$(GO) test ./internal/resilience/ -run '^$$' -fuzz FuzzClassifyError -fuzztime 15s
