# Developer entry points. `make check` is the gate every change must
# pass: vet, build, the full test suite under the race detector, and
# the seeded chaos suite.

GO ?= go

# Benchmark-regression harness knobs. BENCHTIME is fixed (iteration
# count, not wall time) so snapshots from different runs compare
# apples to apples; THRESHOLD is the relative ns/op regression bound
# benchdiff fails on.
BENCHTIME ?= 5x
BENCHCOUNT ?= 5
BENCHDATE ?= $(shell date +%F)
BENCHSNAP ?= BENCH_$(BENCHDATE).json
OLD       ?= BENCH_seed.json
NEW       ?= $(BENCHSNAP)
THRESHOLD ?= 0.20

# Telemetry-overhead gate knobs: live recorder vs. no-op recorder on
# the detection and stream-visit hot paths, bounded at OBS_THRESHOLD.
# Time-based OBS_BENCHTIME (unlike the snapshot suite's fixed
# iteration count) because the gate compares within one run; OBS_COUNT
# repeats each benchmark and benchdiff keeps the fastest, filtering
# scheduler/frequency noise out of the ratio.
OBS_THRESHOLD ?= 0.05
OBS_BENCHTIME ?= 1s
OBS_COUNT     ?= 4

.PHONY: check vet build test race chaos bench benchdiff bench-capstore obs-smoke obs-overhead fleet-smoke decision-smoke replication-smoke pack-smoke cluster-obs-smoke analytics-smoke fuzz

check: vet build race chaos obs-smoke fleet-smoke decision-smoke replication-smoke pack-smoke cluster-obs-smoke analytics-smoke

vet:
	$(GO) vet ./...

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# Seeded fault-injection suite: retry completion under injected 5xx /
# drop / anti-bot rates, byte-identical fault schedules across runs,
# torn-write repair, and capd load shedding under saturation.
chaos:
	$(GO) test ./internal/resilience/... ./internal/crawler/ ./internal/capstore/ -run 'Chaos' -count=1

# Tier-1 benchmark suite → JSON snapshot. Runs every root-package
# benchmark at a fixed BENCHTIME, repeated BENCHCOUNT times (the
# parser keeps each benchmark's fastest run, filtering scheduler and
# frequency noise), tees the raw output to bench.out, and parses it
# into $(BENCHSNAP) for benchdiff.
bench:
	$(GO) build -o bin/benchdiff ./cmd/benchdiff
	$(GO) test . -run '^$$' -bench . -benchmem -benchtime $(BENCHTIME) -count $(BENCHCOUNT) -timeout 30m | tee bench.out
	./bin/benchdiff -parse bench.out -date $(BENCHDATE) -out $(BENCHSNAP)
	@echo "snapshot written to $(BENCHSNAP)"

# Compare two snapshots; fails if any benchmark regressed beyond
# THRESHOLD. Usage: make benchdiff OLD=BENCH_seed.json NEW=BENCH_x.json
benchdiff:
	$(GO) build -o bin/benchdiff ./cmd/benchdiff
	./bin/benchdiff -compare -threshold $(THRESHOLD) $(OLD) $(NEW)

# The capture-store perf pair: linear scan vs. indexed query.
bench-capstore:
	$(GO) test ./internal/capstore/ -run '^$$' -bench 'Query' -benchmem

# End-to-end telemetry smoke: boot a real capd with -metrics over a
# fixture store, drive queries, and fail on unparseable /metrics
# lines, missing spans in /debug/trace, or a /healthz without the
# telemetry summary.
obs-smoke:
	$(GO) build -o bin/capd ./cmd/capd
	$(GO) run ./cmd/obssmoke -capd bin/capd

# End-to-end fleet smoke: boot capd (-ingest -metrics), fleetd
# (-metrics) and two crawl workers over a small fixture window, SIGKILL
# one worker mid-run, and assert the fleet's store is byte-identical to
# the single-process baseline, the ledger balances, and both /metrics
# endpoints stay valid.
fleet-smoke:
	$(GO) build -o bin/capd ./cmd/capd
	$(GO) build -o bin/fleetd ./cmd/fleetd
	$(GO) build -o bin/crawl ./cmd/crawl
	$(GO) run ./cmd/fleetsmoke -capd bin/capd -fleetd bin/fleetd -crawl bin/crawl

# End-to-end decision smoke: boot a real consentd with -metrics, drive
# mixed traffic (NDJSON batches, single decisions, vendor filters)
# through the load driver, re-check sampled batch answers against the
# naive reference decoder, and fail on missing decision metrics or a
# cold cache.
decision-smoke:
	$(GO) build -o bin/consentd ./cmd/consentd
	$(GO) run ./cmd/decisionsmoke -consentd bin/consentd

# End-to-end replication smoke: three capd storage nodes behind a
# capring proxy, fleetd + two crawl workers ingesting through the
# ring, SIGKILL one storage node mid-lease and restart it, then assert
# the ring repairs the node to convergence, every node's owned
# segments are byte-identical to the single-process baseline, and the
# ring's /metrics stays valid with the repl_* families.
replication-smoke:
	$(GO) build -o bin/capd ./cmd/capd
	$(GO) build -o bin/capring ./cmd/capring
	$(GO) build -o bin/fleetd ./cmd/fleetd
	$(GO) build -o bin/crawl ./cmd/crawl
	$(GO) run ./cmd/replsmoke -capd bin/capd -capring bin/capring -fleetd bin/fleetd -crawl bin/crawl

# End-to-end pack-engine smoke: boot capd with an aggressive paced
# compactor, ingest under live compaction, SIGKILL mid-compaction,
# restart and re-deliver idempotently, force a /compact, then reopen
# the store (indexed open path on every shard) and assert the full
# query sweep, logical streams, and manifests are byte-identical to a
# never-compacted baseline.
pack-smoke:
	$(GO) build -o bin/capd ./cmd/capd
	$(GO) run ./cmd/packsmoke -capd bin/capd

# End-to-end fleet-observability smoke: three capds + capring (all
# -metrics), fleetd + two crawl workers pushing span exports to a real
# obsd, which scrapes every long-lived node. Asserts valid exposition
# on every scrape and on the /cluster/metrics rollup, at least one
# trace stitched across fleetd→worker→capring→capd with zero orphans,
# and that deliberately induced reorder-buffer sheds trip the shed-rate
# burn alert.
cluster-obs-smoke:
	$(GO) build -o bin/capd ./cmd/capd
	$(GO) build -o bin/capring ./cmd/capring
	$(GO) build -o bin/fleetd ./cmd/fleetd
	$(GO) build -o bin/crawl ./cmd/crawl
	$(GO) build -o bin/obsd ./cmd/obsd
	$(GO) run ./cmd/clustersmoke -capd bin/capd -capring bin/capring -fleetd bin/fleetd -crawl bin/crawl -obsd bin/obsd

# End-to-end incremental-analytics smoke: boot capd (-ingest) and an
# analyzed follower with a short checkpoint interval, stream a fixture
# world, SIGKILL analyzed mid-stream, restart it (must resume from the
# checkpoint and fold only the suffix), finish the stream, and assert
# every served view is byte-identical to `analyze -store` batch mode
# over the same store.
analytics-smoke:
	$(GO) build -o bin/capd ./cmd/capd
	$(GO) build -o bin/analyzed ./cmd/analyzed
	$(GO) build -o bin/analyze ./cmd/analyze
	$(GO) run ./cmd/analyticssmoke -capd bin/capd -analyzed bin/analyzed -analyze bin/analyze

# Telemetry overhead gate: the live recorder must stay within
# OBS_THRESHOLD of the no-op recorder on both hot paths. Longer
# benchtime than `make bench` so the ratio is stable; not part of
# `make check`.
obs-overhead:
	$(GO) build -o bin/benchdiff ./cmd/benchdiff
	$(GO) test . -run '^$$' -bench 'DetectOne|StreamVisit' -benchtime $(OBS_BENCHTIME) -count $(OBS_COUNT) -timeout 20m | tee obs-bench.out
	./bin/benchdiff -parse obs-bench.out -out obs-bench.json
	./bin/benchdiff -pair BenchmarkDetectOneNop,BenchmarkDetectOne -threshold $(OBS_THRESHOLD) obs-bench.json
	./bin/benchdiff -pair BenchmarkStreamVisit/nop,BenchmarkStreamVisit/live -threshold $(OBS_THRESHOLD) obs-bench.json

# Short fuzz passes: the capture wire format (torn writes, segment
# boundaries, malformed tuples), retry classification of malformed
# webworld/chaos error strings, the fleet wire-protocol decoder, both
# TCF consent-string codecs, the compiled-vs-naive decision kernel
# differential, and the placement-ring invariants.
fuzz:
	$(GO) test ./internal/capturedb/ -run '^$$' -fuzz FuzzScan -fuzztime 30s
	$(GO) test ./internal/ring/ -run '^$$' -fuzz FuzzRingPlacement -fuzztime 20s
	$(GO) test ./internal/resilience/ -run '^$$' -fuzz FuzzClassifyError -fuzztime 15s
	$(GO) test ./internal/fleet/ -run '^$$' -fuzz FuzzDecodeFrame -fuzztime 15s
	$(GO) test ./internal/tcf/ -run '^$$' -fuzz FuzzDecode$$ -fuzztime 20s
	$(GO) test ./internal/tcf/ -run '^$$' -fuzz FuzzDecodeV2 -fuzztime 20s
	$(GO) test ./internal/decision/ -run '^$$' -fuzz FuzzDecideDifferential -fuzztime 30s
