// Package repro is a from-scratch Go reproduction of "Measuring the
// Emergence of Consent Management on the Web" (Hils, Woods and Böhme,
// ACM IMC 2020).
//
// The paper measures the formation of the web's consent-management
// ecosystem: how Consent Management Providers (CMPs) spread across
// websites over 2018–2020, what third-party ad-tech vendors declare on
// the IAB's Global Vendor List, and what consent dialogs cost users in
// time. This module rebuilds the entire measurement apparatus — a
// Netograph-style crawling platform over a synthetic web, the CMP
// detection methodology, the IAB TCF substrate, and the dialog timing
// experiments — and regenerates every table and figure of the paper's
// evaluation. See DESIGN.md for the system inventory and EXPERIMENTS.md
// for paper-vs-measured results.
//
// The top-level entry point is Study:
//
//	s := repro.NewStudy(repro.DefaultConfig())
//	s.RunSocialCrawl(nil)
//	points, _ := s.AdoptionOverTime(10_000, 7)   // Figure 6
//	table := s.VantageTable(repro.Table1Snapshot, 10_000) // Table 1
//
// Every component is deterministic for a given seed; all randomness is
// derived from keyed streams, so results are bit-reproducible.
package repro

import (
	"repro/internal/analysis"
	"repro/internal/consent"
	"repro/internal/core"
	"repro/internal/gvl"
	"repro/internal/simtime"
	"repro/internal/stats"
	"repro/internal/tcf"
)

// Study orchestrates the full reproduction; see core.Study.
type Study = core.Study

// Config scales a study.
type Config = core.Config

// NewStudy builds all components of the measurement apparatus.
func NewStudy(cfg Config) *Study { return core.NewStudy(cfg) }

// DefaultConfig is the full reproduction scale (≈1/100 of the paper's
// capture volume); TestConfig is a reduced scale that runs in seconds.
func DefaultConfig() Config { return core.DefaultConfig() }

// TestConfig returns the reduced scale used by tests and examples.
func TestConfig() Config { return core.TestConfig() }

// Snapshot days of the paper's tables.
var (
	// Table1Snapshot is the May 2020 snapshot (Table 1).
	Table1Snapshot = simtime.Table1Snapshot
	// TableA3Snapshot is the January 2020 snapshot (Table A.3).
	TableA3Snapshot = simtime.TableA3Snapshot
	// GDPREffective and CCPAEffective are the adoption-spike events.
	GDPREffective = simtime.GDPREffective
	CCPAEffective = simtime.CCPAEffective
)

// Consent-string codec (IAB TCF v1.1).
type (
	// ConsentString is a decoded TCF v1.1 consent string.
	ConsentString = tcf.ConsentString
)

// DecodeConsentString parses a websafe-base64 TCF v1.1 consent string.
func DecodeConsentString(s string) (*ConsentString, error) { return tcf.Decode(s) }

// GenerateGVLHistory produces a synthetic Global Vendor List history
// with the longitudinal dynamics of Figures 7 and 8.
func GenerateGVLHistory(cfg gvl.HistoryConfig) *gvl.History { return gvl.GenerateHistory(cfg) }

// DefaultGVLConfig mirrors the 215-version history the paper analyzed.
func DefaultGVLConfig() gvl.HistoryConfig { return gvl.DefaultHistoryConfig() }

// NewTrustArcFlow returns the Figure 9 opt-out measurement flow.
func NewTrustArcFlow(seed uint64) *consent.TrustArcFlow { return consent.NewTrustArcFlow(seed) }

// NewFieldExperiment returns the Figure 10 dialog timing experiment.
func NewFieldExperiment(seed uint64, list *gvl.List) *consent.FieldExperiment {
	return consent.NewFieldExperiment(seed, list)
}

// AnalyzeSessions computes the Figure 10 statistics from a session log.
func AnalyzeSessions(sessions []*consent.Session) (*consent.ExperimentResult, error) {
	return consent.Analyze(sessions)
}

// MannWhitney runs the two-sided Mann–Whitney U test used by the
// paper's timing comparisons.
func MannWhitney(a, b []float64) (stats.MannWhitneyResult, error) { return stats.MannWhitney(a, b) }

// PriorWork returns the Figure 1 related-work inventory.
func PriorWork() []analysis.PriorStudy { return analysis.PriorWork() }
