// Command clustersmoke exercises fleet-wide observability end to end
// with real processes: three capd storage nodes and a capring
// replication proxy (all with -metrics), a fleetd coordinator and two
// `crawl -fleet` workers pushing their span exports to an obsd
// aggregation daemon, and obsd itself scraping every long-lived node.
// The run must produce:
//
//   - valid Prometheus exposition on every node's /metrics AND on
//     obsd's /cluster/metrics rollup (obs.ValidateExposition);
//   - at least one fully-stitched cross-process trace: one trace id
//     carrying spans from fleetd, worker, capring, and capd with zero
//     orphans — the lease→work→push→ring→ingest chain reassembled
//     from four processes' exports;
//   - a tripped SLO burn-rate alert: far-future ordered pushes into
//     the ring's bounded reorder buffer induce sheds, and the shed
//     rate rule on obsd must transition to firing.
//
// Any failure exits non-zero.
//
// Usage:
//
//	clustersmoke [-capd bin/capd] [-capring bin/capring]
//	             [-fleetd bin/fleetd] [-crawl bin/crawl] [-obsd bin/obsd]
//
// `make cluster-obs-smoke` builds the binaries and runs this; it is
// part of `make check`.
package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net/http"
	"os"
	"os/exec"
	"path/filepath"
	"regexp"
	"strconv"
	"strings"
	"sync"
	"syscall"
	"time"

	"repro/internal/obs"
	"repro/internal/obs/agg"
)

const (
	seed     = 7
	ringSeed = 5
	domains  = 600
	shares   = 60
	shards   = 4
	numNodes = 3
)

func main() {
	capdBin := flag.String("capd", filepath.Join("bin", "capd"), "path to the capd binary under test")
	capringBin := flag.String("capring", filepath.Join("bin", "capring"), "path to the capring binary under test")
	fleetdBin := flag.String("fleetd", filepath.Join("bin", "fleetd"), "path to the fleetd binary under test")
	crawlBin := flag.String("crawl", filepath.Join("bin", "crawl"), "path to the crawl binary under test")
	obsdBin := flag.String("obsd", filepath.Join("bin", "obsd"), "path to the obsd binary under test")
	flag.Parse()

	dir, err := os.MkdirTemp("", "clustersmoke-*")
	check(err)
	defer os.RemoveAll(dir)

	// Three storage nodes, all with the full telemetry surface.
	var nodeURLs, nodesFlag, targets []string
	var capds []*proc
	for i := 0; i < numNodes; i++ {
		name := fmt.Sprintf("node-%d", i)
		p := boot(*capdBin, "-store", filepath.Join(dir, name),
			"-init-shards", strconv.Itoa(shards),
			"-ingest", "-metrics", "-addr", "127.0.0.1:0")
		defer p.kill()
		url := "http://" + p.addr()
		nodeURLs = append(nodeURLs, url)
		capds = append(capds, p)
		nodesFlag = append(nodesFlag, name+"="+url)
		targets = append(targets, name+"=capd="+url)
	}

	// capring with a deliberately tiny reorder buffer: far-future
	// ordered pushes overflow it on demand, which is how the smoke
	// induces the sheds that must trip the burn-rate alert.
	capring := boot(*capringBin, "-nodes", strings.Join(nodesFlag, ","),
		"-shards", strconv.Itoa(shards), "-replicas", "2", "-quorum", "1",
		"-seed", strconv.Itoa(ringSeed), "-ingest-pending", "4",
		"-metrics", "-addr", "127.0.0.1:0")
	defer capring.kill()
	ringURL := "http://" + capring.addr()
	targets = append(targets, "ring=capring="+ringURL)

	// obsd scrapes the long-lived nodes on a tight interval and holds
	// one SLO rule: shed rate through the ring.
	obsd := boot(*obsdBin, "-targets", strings.Join(targets, ","),
		"-interval", "100ms", "-metrics", "-addr", "127.0.0.1:0",
		"-slo", "name=shed,kind=rate,metric=repl_ingest_shed_total,threshold=0.5,fast=5s,slow=10s,fastburn=1,slowburn=1")
	defer obsd.kill()
	obsdURL := "http://" + obsd.addr()

	// fleetd pushes its span export to obsd at drain and hands the obsd
	// URL to every worker via /config.
	fleetd := boot(*fleetdBin, "-ingest", ringURL, "-obsd", obsdURL,
		"-addr", "127.0.0.1:0",
		"-seed", strconv.Itoa(seed), "-domains", strconv.Itoa(domains),
		"-shares", strconv.Itoa(shares), "-from", "0", "-to", "0",
		"-lease-size", "8", "-lease-ttl", "2s", "-retry-budget", "10",
		"-retries", "2", "-breaker", "0", "-politeness", "1ms", "-metrics")
	defer fleetd.kill()

	w1 := start(*crawlBin, "-fleet", "http://"+fleetd.addr(), "-worker-id", "clustersmoke-w1")
	defer w1.kill()
	w2 := start(*crawlBin, "-fleet", "http://"+fleetd.addr(), "-worker-id", "clustersmoke-w2")
	defer w2.kill()

	if err := fleetd.wait(120 * time.Second); err != nil {
		fatalf("fleetd: %v\n%s", err, fleetd.output())
	}
	captures := parseLedger(fleetd.output())
	if captures == 0 {
		fatalf("fleetd drained with zero captures")
	}
	// A worker that was idle at the drain moment never sees a drained
	// frame (fleetd is gone); SIGTERM is the normal teardown, and the
	// span export is pushed on that path too.
	for _, w := range []*proc{w1, w2} {
		w.cmd.Process.Signal(syscall.SIGTERM) //nolint:errcheck
		w.wait(10 * time.Second)              //nolint:errcheck
	}
	fmt.Printf("clustersmoke: fleet drained with %d captures; checking scrapes\n", captures)

	// 1. Every node's text exposition and the cluster rollup validate.
	for i, url := range append(append([]string{}, nodeURLs...), ringURL, obsdURL) {
		text := get(url + "/metrics")
		if err := obs.ValidateExposition(strings.NewReader(text)); err != nil {
			fatalf("scrape %d (%s) invalid: %v", i, url, err)
		}
	}
	cluster := get(obsdURL + "/cluster/metrics")
	check(obs.ValidateExposition(strings.NewReader(cluster)))
	for _, want := range []string{
		"cluster:repl_committed_records_total",
		"role:repl_node_up",
		"node:capstore_ingest_batches_total",
	} {
		if !strings.Contains(cluster, want) {
			fatalf("/cluster/metrics missing rollup %q", want)
		}
	}
	var health agg.Health
	check(json.Unmarshal([]byte(get(obsdURL+"/cluster/healthz")), &health))
	for _, n := range health.Nodes {
		if !n.Up {
			fatalf("node %s down in /cluster/healthz: %+v", n.Name, health)
		}
	}
	fmt.Printf("clustersmoke: %d scrapes valid; waiting for a stitched trace\n", numNodes+2)

	// 2. A fully-stitched cross-process trace. The worker exports land
	// at exit and capd/capring spans ride the scrape cadence, so poll.
	wantSvcs := []string{"capd", "capring", "fleetd", "worker"}
	var stitched agg.TraceSummary
	deadline := time.Now().Add(20 * time.Second)
	for stitched.TID == "" {
		if time.Now().After(deadline) {
			fatalf("no trace stitched across %v within 20s: %s", wantSvcs, get(obsdURL+"/cluster/traces"))
		}
		var sums []agg.TraceSummary
		check(json.Unmarshal([]byte(get(obsdURL+"/cluster/traces")), &sums))
		for _, s := range sums {
			if s.Orphans == 0 && hasAll(s.Svcs, wantSvcs) {
				stitched = s
				break
			}
		}
		time.Sleep(100 * time.Millisecond)
	}
	body := get(obsdURL + "/cluster/traces/" + stitched.TID)
	for _, svc := range wantSvcs {
		if !strings.Contains(body, "["+svc+"]") {
			fatalf("trace %s render missing a [%s] span:\n%s", stitched.TID, svc, body)
		}
	}
	fmt.Printf("clustersmoke: trace %s spans %d processes (%s), %d spans, 0 orphans\n",
		stitched.TID, len(stitched.Svcs), strings.Join(stitched.Svcs, ","), stitched.Spans)

	// 3. Induce sheds: ordered pushes at far-future sequences jam the
	// ring's 4-slot reorder buffer; everything past the bound sheds
	// with 503, and the shed-rate rule must trip.
	sheds := 0
	for i := 0; i < 30; i++ {
		resp, err := http.Post(fmt.Sprintf("%s/ingest?at=%d&n=1", ringURL, 9_000_000+i),
			"application/octet-stream", bytes.NewReader(nil))
		check(err)
		io.Copy(io.Discard, resp.Body) //nolint:errcheck
		resp.Body.Close()
		if resp.StatusCode == http.StatusServiceUnavailable {
			sheds++
		}
	}
	if sheds < 5 {
		fatalf("induced only %d sheds out of 30 far-future pushes; buffer never overflowed", sheds)
	}
	deadline = time.Now().Add(20 * time.Second)
	for {
		if time.Now().After(deadline) {
			fatalf("shed alert never fired: %s", get(obsdURL+"/cluster/alerts"))
		}
		var alerts []agg.Alert
		check(json.Unmarshal([]byte(get(obsdURL+"/cluster/alerts")), &alerts))
		if len(alerts) != 1 {
			fatalf("want one alert rule, got %+v", alerts)
		}
		if alerts[0].State == "firing" {
			fmt.Printf("clustersmoke: shed alert firing (fast burn %.1f, slow burn %.1f) after %d induced sheds\n",
				alerts[0].FastBurn, alerts[0].SlowBurn, sheds)
			break
		}
		time.Sleep(100 * time.Millisecond)
	}

	fmt.Printf("clustersmoke: ok — %d captures, %d valid scrapes, trace %s stitched across %s, shed alert tripped\n",
		captures, numNodes+2, stitched.TID, strings.Join(stitched.Svcs, ","))
}

func hasAll(have, want []string) bool {
	set := map[string]bool{}
	for _, s := range have {
		set[s] = true
	}
	for _, s := range want {
		if !set[s] {
			return false
		}
	}
	return true
}

var ledgerRe = regexp.MustCompile(`drained — submitted=(\d+) captures=(\d+) dead=(\d+) dropped=(\d+)`)

func parseLedger(out string) int64 {
	m := ledgerRe.FindStringSubmatch(out)
	if m == nil {
		fatalf("no ledger line in fleetd output:\n%s", out)
	}
	n, _ := strconv.ParseInt(m[2], 10, 64)
	return n
}

// proc is a child process whose stdout is captured (and echoed) so
// startup banners and the final ledger line can be parsed.
type proc struct {
	cmd    *exec.Cmd
	mu     sync.Mutex
	buf    bytes.Buffer
	doneCh chan error
}

var addrRe = regexp.MustCompile(`on (127\.0\.0\.1:\d+)`)

// procs tracks every child so fatalf can reap them — an orphaned node
// or worker would otherwise outlive a failed smoke run.
var procs []*proc

func start(bin string, args ...string) *proc {
	cmd := exec.Command(bin, args...)
	cmd.Stderr = os.Stderr
	out, err := cmd.StdoutPipe()
	check(err)
	check(cmd.Start())
	p := &proc{cmd: cmd, doneCh: make(chan error, 1)}
	procs = append(procs, p)
	go func() {
		buf := make([]byte, 4096)
		for {
			n, err := out.Read(buf)
			if n > 0 {
				p.mu.Lock()
				p.buf.Write(buf[:n])
				p.mu.Unlock()
				os.Stdout.Write(buf[:n]) //nolint:errcheck
			}
			if err != nil {
				break
			}
		}
		p.doneCh <- cmd.Wait()
	}()
	return p
}

// boot is start plus waiting for the "… on 127.0.0.1:PORT" banner.
func boot(bin string, args ...string) *proc {
	p := start(bin, args...)
	deadline := time.Now().Add(10 * time.Second)
	for {
		if m := addrRe.FindStringSubmatch(p.output()); m != nil {
			return p
		}
		if time.Now().After(deadline) || p.exited() {
			p.kill()
			fatalf("%s did not report a listen address:\n%s", bin, p.output())
		}
		time.Sleep(10 * time.Millisecond)
	}
}

func (p *proc) addr() string {
	return addrRe.FindStringSubmatch(p.output())[1]
}

func (p *proc) output() string {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.buf.String()
}

func (p *proc) exited() bool {
	select {
	case err := <-p.doneCh:
		p.doneCh <- err
		return true
	default:
		return false
	}
}

func (p *proc) wait(d time.Duration) error {
	select {
	case err := <-p.doneCh:
		p.doneCh <- err
		return err
	case <-time.After(d):
		return fmt.Errorf("still running after %v", d)
	}
}

func (p *proc) kill() {
	if p.cmd.Process != nil && !p.exited() {
		p.cmd.Process.Kill() //nolint:errcheck
		<-p.doneCh
		p.doneCh <- nil
	}
}

func get(url string) string {
	resp, err := http.Get(url)
	check(err)
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	check(err)
	if resp.StatusCode != http.StatusOK {
		fatalf("GET %s: %s\n%s", url, resp.Status, body)
	}
	return string(body)
}

func check(err error) {
	if err != nil {
		fatalf("%v", err)
	}
}

func fatalf(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "clustersmoke: "+format+"\n", args...)
	for _, p := range procs {
		p.kill()
	}
	os.Exit(1)
}
