// Command obssmoke exercises the unified telemetry surface end to end
// against a real capd process: it writes a fixture capture store, boots
// `capd -store … -metrics` as a child, drives queries through the
// public client, and then verifies every debug endpoint — /metrics
// parses as Prometheus text and carries the store families, the same
// registry is served as /metrics.json, /debug/trace shows the query
// spans, /debug/pprof/ answers, and /healthz carries the telemetry
// summary. Any failure exits non-zero.
//
// Usage:
//
//	obssmoke [-capd bin/capd]
//
// `make obs-smoke` builds capd and runs this; it is part of `make
// check`.
package main

import (
	"flag"
	"fmt"
	"io"
	"net/http"
	"os"
	"os/exec"
	"path/filepath"
	"regexp"
	"strings"
	"syscall"
	"time"

	"repro/internal/capstore"
	"repro/internal/capture"
	"repro/internal/capturedb"
	"repro/internal/obs"
	"repro/internal/simtime"
)

const fixtureRecords = 120

func main() {
	capdPath := flag.String("capd", filepath.Join("bin", "capd"), "path to the capd binary under test")
	flag.Parse()

	dir, err := os.MkdirTemp("", "obssmoke-*")
	check(err)
	defer os.RemoveAll(dir)
	storeDir := filepath.Join(dir, "store")
	check(buildFixture(storeDir))

	addr, stop, err := bootCapd(*capdPath, storeDir)
	check(err)
	defer stop()
	base := "http://" + addr
	cl := capstore.NewClient(base)

	// Generate telemetry through the public query API: one indexed
	// domain query, one indexed host query, one count.
	var rows int
	check(cl.Query(capturedb.Query{Domain: "site-001.com"}, 0, 0, func(*capture.Capture) bool {
		rows++
		return true
	}))
	if rows == 0 {
		fatalf("domain query returned no rows")
	}
	n, err := cl.Count(capturedb.Query{RequestHost: "cdn.cookielaw.org"})
	check(err)
	if n == 0 {
		fatalf("host count returned 0")
	}

	// /metrics must be valid exposition text and carry the store,
	// tracer and limiter families.
	text := get(base + "/metrics")
	check(obs.ValidateExposition(strings.NewReader(text)))
	for _, want := range []string{
		fmt.Sprintf("capstore_records_total %d", fixtureRecords),
		"capstore_queries_total 2",
		"capstore_query_seconds_bucket",
		"obs_trace_spans",
		"resilience_http_admitted_total",
	} {
		if !strings.Contains(text, want) {
			fatalf("/metrics missing %q:\n%s", want, text)
		}
	}

	// The JSON mirror and the span export must agree with what we did.
	if js := get(base + "/metrics.json"); !strings.Contains(js, `"capstore_queries_total"`) {
		fatalf("/metrics.json missing capstore_queries_total:\n%s", js)
	}
	trace := get(base + "/debug/trace")
	for _, want := range []string{
		`"id":"query[path=domain-index]"`,
		`"id":"query[path=host-index]"`,
	} {
		if !strings.Contains(trace, want) {
			fatalf("/debug/trace missing %q:\n%s", want, trace)
		}
	}
	get(base + "/debug/pprof/")

	// /healthz gains the telemetry summary when -metrics is on.
	h, err := cl.Health()
	check(err)
	if h.Records != fixtureRecords {
		fatalf("healthz records = %d, want %d", h.Records, fixtureRecords)
	}
	if h.Telemetry == nil {
		fatalf("healthz telemetry summary missing: %+v", h)
	}
	if h.Telemetry.UptimeSeconds <= 0 {
		fatalf("healthz uptime = %v, want > 0", h.Telemetry.UptimeSeconds)
	}
	if len(h.Telemetry.SlowestQueryBuckets) == 0 {
		fatalf("healthz slowest query buckets empty after %d queries", 2)
	}

	check(stop())
	fmt.Printf("obssmoke: ok (%d records, %d rows from site-001.com, %d cdn.cookielaw.org captures)\n",
		fixtureRecords, rows, n)
}

// buildFixture writes a small sharded store: 30 domains over 200 days,
// every capture loading cdn.cookielaw.org, every 11th failed.
func buildFixture(dir string) error {
	st, err := capstore.Create(dir, 4)
	if err != nil {
		return err
	}
	for i := 0; i < fixtureRecords; i++ {
		domain := fmt.Sprintf("site-%03d.com", i%30)
		c := &capture.Capture{
			SeedURL:     "http://" + domain + "/",
			FinalDomain: domain,
			Day:         simtime.Day(i % 200),
			Vantage:     capture.EUCloud,
			Requests: []capture.Request{
				{Host: domain, Status: 200},
				{Host: "cdn.cookielaw.org", Status: 200},
			},
		}
		if i%11 == 0 {
			c.Failed = true
		}
		st.Record(c)
	}
	return st.Close()
}

var addrRe = regexp.MustCompile(`on (127\.0\.0\.1:\d+)`)

// bootCapd starts capd with telemetry on an ephemeral port and parses
// the bound address from its startup banner. stop sends SIGTERM and
// waits for the graceful drain.
func bootCapd(bin, storeDir string) (addr string, stop func() error, err error) {
	cmd := exec.Command(bin, "-store", storeDir, "-metrics", "-addr", "127.0.0.1:0")
	cmd.Stderr = os.Stderr
	out, err := cmd.StdoutPipe()
	if err != nil {
		return "", nil, err
	}
	if err := cmd.Start(); err != nil {
		return "", nil, err
	}
	banner := make(chan string, 1)
	go func() {
		buf := make([]byte, 4096)
		var seen []byte
		for {
			n, err := out.Read(buf)
			seen = append(seen, buf[:n]...)
			if m := addrRe.FindSubmatch(seen); m != nil {
				banner <- string(m[1])
				break
			}
			if err != nil {
				banner <- ""
				return
			}
		}
		io.Copy(io.Discard, out)
	}()
	select {
	case addr = <-banner:
	case <-time.After(10 * time.Second):
	}
	if addr == "" {
		cmd.Process.Kill()
		cmd.Wait()
		return "", nil, fmt.Errorf("capd did not report a listen address")
	}
	stopped := false
	stop = func() error {
		if stopped {
			return nil
		}
		stopped = true
		if err := cmd.Process.Signal(syscall.SIGTERM); err != nil {
			return err
		}
		done := make(chan error, 1)
		go func() { done <- cmd.Wait() }()
		select {
		case err := <-done:
			return err
		case <-time.After(10 * time.Second):
			cmd.Process.Kill()
			return fmt.Errorf("capd did not shut down after SIGTERM")
		}
	}
	return addr, stop, nil
}

func get(url string) string {
	resp, err := http.Get(url)
	check(err)
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	check(err)
	if resp.StatusCode != http.StatusOK {
		fatalf("GET %s: %s\n%s", url, resp.Status, body)
	}
	return string(body)
}

func check(err error) {
	if err != nil {
		fatalf("%v", err)
	}
}

func fatalf(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "obssmoke: "+format+"\n", args...)
	os.Exit(1)
}
