// Command packsmoke exercises the pack engine end to end with a real
// capd process: remote ingest under a deliberately aggressive (and
// write-paced, so passes are slow and a kill lands mid-pass)
// background compactor, a SIGKILL while the store is compacting, an
// idempotent full re-delivery after restart, a forced POST /compact,
// and a final comparison of the compacted store against a local
// never-compacted baseline. The full query sweep, a set of filtered
// queries, every shard's logical stream, and the manifests must all be
// byte-identical, the reopened store must take the indexed open path
// on every shard, and /metrics must carry the pack_* families. Any
// failure exits non-zero.
//
// Usage:
//
//	packsmoke [-capd bin/capd]
//
// `make pack-smoke` builds capd and runs this; it is part of
// `make check`.
package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net/http"
	"os"
	"os/exec"
	"path/filepath"
	"regexp"
	"strconv"
	"strings"
	"sync"
	"syscall"
	"time"

	"repro/internal/capstore"
	"repro/internal/capture"
	"repro/internal/capturedb"
	"repro/internal/obs"
	"repro/internal/resilience"
	"repro/internal/simtime"
)

const (
	shards = 4
	total  = 600
	batch  = 20
)

// mkCapture fabricates a distinct capture; i keys the idempotency
// identity, the domain (and so the shard), the day, and the failure
// flag, so dedup, placement, pruning, and failed-row handling are all
// exercised.
func mkCapture(i int) *capture.Capture {
	c := &capture.Capture{
		SeedURL:     fmt.Sprintf("https://site%d.example/p/%d", i%37, i),
		FinalURL:    fmt.Sprintf("https://site%d.example/p/%d", i%37, i),
		FinalDomain: fmt.Sprintf("site%d.example", i%37),
		Day:         simtime.Day(i % 300),
		Vantage:     capture.USCloud,
		Status:      200,
		Requests: []capture.Request{
			{Host: fmt.Sprintf("cmp%d.example", i%3), Path: "/c.js", Status: 200, BytesRaw: 90 + i, BytesCompressed: 80 + i},
			{Host: fmt.Sprintf("assets%d.example", i%5), Path: "/a.js", Status: 200, BytesRaw: 40 + i, BytesCompressed: 30 + i},
		},
	}
	if i%11 == 0 {
		c.Failed = true
		c.Error = "timeout"
		c.Status = 0
		c.Requests = nil
	}
	return c
}

// sweepQueries cover every access path: full scan, domain index, host
// index, day-window pruning, and the failed filter.
func sweepQueries() []capturedb.Query {
	return []capturedb.Query{
		{IncludeFailed: true},
		{},
		{Domain: "site3.example", IncludeFailed: true},
		{Domain: "site11.example"},
		{RequestHost: "cmp1.example"},
		{RequestHost: "assets2.example", From: 40, To: 220, HasTo: true},
		{From: 100, To: 200, HasTo: true, IncludeFailed: true},
		{From: 299, To: 299, HasTo: true},
	}
}

func main() {
	capdBin := flag.String("capd", filepath.Join("bin", "capd"), "path to the capd binary under test")
	flag.Parse()

	dir, err := os.MkdirTemp("", "packsmoke-*")
	check(err)
	defer os.RemoveAll(dir)

	caps := make([]*capture.Capture, total)
	for i := range caps {
		caps[i] = mkCapture(i)
	}

	// Never-compacted baseline: same records, same order, local store.
	baseDir := filepath.Join(dir, "baseline")
	baseline, err := capstore.Create(baseDir, shards)
	check(err)
	for _, c := range caps {
		baseline.Record(c)
	}

	// capd under test: tiny compaction threshold so packs form while
	// batches are still arriving, and a slow write pace so a pass is
	// almost certainly in flight when the SIGKILL lands.
	nodeDir := filepath.Join(dir, "store")
	compactFlags := []string{"-compact", "-compact-tail-bytes", "512",
		"-compact-interval", "2ms", "-compact-pace", "65536"}
	p := boot(*capdBin, append([]string{"-store", nodeDir, "-init-shards", strconv.Itoa(shards),
		"-ingest", "-metrics", "-addr", "127.0.0.1:0"}, compactFlags...)...)
	defer p.kill()
	url := "http://" + p.addr()
	cl := client(url)

	// Phase 1: stream the first half and require real compactions.
	half := total / 2
	push(cl, caps[:half])
	deadline := time.Now().Add(20 * time.Second)
	for stats(url).Compactions == 0 {
		if time.Now().After(deadline) {
			fatalf("no compaction within 20s of %d records (stats %+v)", half, stats(url))
		}
		time.Sleep(5 * time.Millisecond)
	}

	// Phase 2: keep streaming, then SIGKILL with the compactor hot. The
	// in-flight batch may die with the process — re-delivery heals it.
	for at := half; at < total; at += batch {
		if at >= total*3/4 {
			check(p.cmd.Process.Kill())
			fmt.Printf("packsmoke: SIGKILLed capd mid-compaction at %d/%d records\n", at, total)
			break
		}
		push(cl, caps[at:at+batch])
	}
	p.wait(10 * time.Second) //nolint:errcheck

	// Restart on the same store: a half-written pack is quarantined, an
	// interrupted tail rewrite is completed, a torn tail is truncated —
	// whatever the kill left, open repairs it to a canonical prefix.
	p2 := boot(*capdBin, append([]string{"-store", nodeDir,
		"-ingest", "-metrics", "-addr", "127.0.0.1:0"}, compactFlags...)...)
	defer p2.kill()
	url = "http://" + p2.addr()
	cl = client(url)

	// Re-deliver everything from the start: per-record idempotency
	// drops what survived and appends exactly what the kill ate, in
	// canonical order.
	push(cl, caps)

	// Forced pass via the admin trigger: everything left in the tails
	// folds into packs.
	var compactRes capstore.CompactResult
	compactRes, err = cl.Compact()
	check(err)
	if compactRes.Packs == 0 {
		fatalf("/compact left no packs: %+v", compactRes)
	}

	// The telemetry surface must expose the pack_* families as valid
	// exposition, with compactions actually booked.
	text := get(url + "/metrics")
	check(obs.ValidateExposition(strings.NewReader(text)))
	for _, want := range []string{"pack_compactions_total", "pack_packed_records_total",
		"pack_packed_bytes_total", "pack_packs", "pack_open_indexed_shards"} {
		if !strings.Contains(text, want) {
			fatalf("capd /metrics missing %q:\n%s", want, text)
		}
	}

	check(p2.cmd.Process.Signal(syscall.SIGTERM))
	if err := p2.wait(10 * time.Second); err != nil {
		fatalf("capd shutdown: %v", err)
	}

	// Headline: reopen the compacted store locally and compare it
	// against the never-compacted baseline.
	st, err := capstore.Open(nodeDir)
	check(err)
	defer st.Close()
	nodeStats := st.Stats()
	if nodeStats.Packs == 0 {
		fatalf("reopened store has no packs")
	}
	for _, sh := range nodeStats.Shards {
		if sh.OpenPath != "indexed" {
			fatalf("shard %s took the %q open path; want indexed (stats %+v)", sh.Segment, sh.OpenPath, sh)
		}
	}
	if nodeStats.Records != int64(total) {
		fatalf("reopened store has %d records, want %d", nodeStats.Records, total)
	}

	for qi, q := range sweepQueries() {
		want, got := sweep(baseline.Query, q), sweep(st.Query, q)
		if !bytes.Equal(want, got) {
			fatalf("query %d (%+v): compacted store returned %d bytes, baseline %d", qi, q, len(got), len(want))
		}
	}
	bm, err := baseline.Manifest()
	check(err)
	nm, err := st.Manifest()
	check(err)
	for s := range bm.Segments {
		if bm.Segments[s] != nm.Segments[s] {
			fatalf("manifest mismatch on segment %d: %+v vs %+v", s, nm.Segments[s], bm.Segments[s])
		}
		var bb, nb bytes.Buffer
		_, _, err = baseline.StreamShard(s, 0, &bb)
		check(err)
		_, _, err = st.StreamShard(s, 0, &nb)
		check(err)
		if !bytes.Equal(bb.Bytes(), nb.Bytes()) {
			fatalf("segment %d logical stream differs: %d bytes vs %d", s, nb.Len(), bb.Len())
		}
	}
	check(baseline.Close())
	fmt.Printf("packsmoke: ok — %d records, %d packs across %d shards, survived SIGKILL mid-compaction byte-identical to the baseline\n",
		total, nodeStats.Packs, shards)
}

func client(url string) *capstore.Client {
	cl := capstore.NewClient(url)
	cl.Retry = resilience.RetryPolicy{MaxAttempts: 8, BaseDelay: 10 * time.Millisecond,
		MaxDelay: 500 * time.Millisecond, Multiplier: 2}
	return cl
}

// push streams caps in order as fixed-size unordered batches.
func push(cl *capstore.Client, caps []*capture.Capture) {
	for at := 0; at < len(caps); at += batch {
		end := at + batch
		if end > len(caps) {
			end = len(caps)
		}
		if _, err := cl.RecordBatch(caps[at:end]); err != nil {
			fatalf("ingest batch at %d: %v", at, err)
		}
	}
}

func stats(url string) capstore.Stats {
	var st capstore.Stats
	check(json.Unmarshal([]byte(get(url+"/stats")), &st))
	return st
}

// sweep renders a query's matches as wire-format bytes for comparison.
func sweep(query func(capturedb.Query, func(*capture.Capture) bool) error, q capturedb.Query) []byte {
	var buf bytes.Buffer
	check(query(q, func(c *capture.Capture) bool {
		line, err := capturedb.Encode(c)
		check(err)
		buf.Write(line)
		return true
	}))
	return buf.Bytes()
}

// proc is a child process whose stdout is captured (and echoed) so the
// listen-address banner can be parsed.
type proc struct {
	cmd    *exec.Cmd
	mu     sync.Mutex
	buf    bytes.Buffer
	doneCh chan error
}

var addrRe = regexp.MustCompile(`on (127\.0\.0\.1:\d+)`)

// procs tracks every child so fatalf can reap them.
var procs []*proc

func start(bin string, args ...string) *proc {
	cmd := exec.Command(bin, args...)
	cmd.Stderr = os.Stderr
	out, err := cmd.StdoutPipe()
	check(err)
	check(cmd.Start())
	p := &proc{cmd: cmd, doneCh: make(chan error, 1)}
	procs = append(procs, p)
	go func() {
		buf := make([]byte, 4096)
		for {
			n, err := out.Read(buf)
			if n > 0 {
				p.mu.Lock()
				p.buf.Write(buf[:n])
				p.mu.Unlock()
				os.Stdout.Write(buf[:n]) //nolint:errcheck
			}
			if err != nil {
				break
			}
		}
		p.doneCh <- cmd.Wait()
	}()
	return p
}

// boot is start plus waiting for the "… on 127.0.0.1:PORT" banner.
func boot(bin string, args ...string) *proc {
	p := start(bin, args...)
	deadline := time.Now().Add(10 * time.Second)
	for {
		if m := addrRe.FindStringSubmatch(p.output()); m != nil {
			return p
		}
		if time.Now().After(deadline) || p.exited() {
			p.kill()
			fatalf("%s did not report a listen address:\n%s", bin, p.output())
		}
		time.Sleep(10 * time.Millisecond)
	}
}

func (p *proc) addr() string {
	return addrRe.FindStringSubmatch(p.output())[1]
}

func (p *proc) output() string {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.buf.String()
}

func (p *proc) exited() bool {
	select {
	case err := <-p.doneCh:
		p.doneCh <- err
		return true
	default:
		return false
	}
}

func (p *proc) wait(d time.Duration) error {
	select {
	case err := <-p.doneCh:
		p.doneCh <- err
		return err
	case <-time.After(d):
		p.kill()
		return fmt.Errorf("still running after %v", d)
	}
}

func (p *proc) kill() {
	if p.cmd.Process != nil && !p.exited() {
		p.cmd.Process.Kill() //nolint:errcheck
		<-p.doneCh
		p.doneCh <- nil
	}
}

func get(url string) string {
	resp, err := http.Get(url)
	check(err)
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	check(err)
	if resp.StatusCode != http.StatusOK {
		fatalf("GET %s: %s\n%s", url, resp.Status, body)
	}
	return string(body)
}

func check(err error) {
	if err != nil {
		fatalf("%v", err)
	}
}

func fatalf(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "packsmoke: "+format+"\n", args...)
	for _, p := range procs {
		p.kill()
	}
	os.Exit(1)
}
