// Command replsmoke exercises the replicated capture store end to end
// with real processes: three capd storage nodes, a capring replication
// proxy fronting them, a fleetd coordinator ingesting through the
// ring, and two `crawl -fleet` workers. One storage node is SIGKILLed
// mid-lease — hard enough that its store may be left with a torn
// segment tail or a half-written pack — then restarted, and the run
// must still converge: the ring repairs the returned node and every
// node's owned segments end byte-identical to a single-process
// baseline crawl. The nodes run the background compactor with tiny
// thresholds, so the identity is checked over each shard's logical
// stream (packs + tail), not raw segment files. Telemetry on the
// ring must be valid exposition carrying the repl_* families, with at
// least one repair pass actually booked. Any failure exits non-zero.
//
// Usage:
//
//	replsmoke [-capd bin/capd] [-capring bin/capring]
//	          [-fleetd bin/fleetd] [-crawl bin/crawl]
//
// `make replication-smoke` builds the binaries and runs this; it is
// part of `make check`.
package main

import (
	"bytes"
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net/http"
	"os"
	"os/exec"
	"path/filepath"
	"regexp"
	"slices"
	"strconv"
	"strings"
	"sync"
	"syscall"
	"time"

	"repro/internal/capstore"
	"repro/internal/capstore/replica"
	"repro/internal/crawler"
	"repro/internal/fleet"
	"repro/internal/obs"
	"repro/internal/resilience"
	"repro/internal/simtime"
	"repro/internal/socialfeed"
	"repro/internal/webworld"
)

// Fixture window (byte-affecting parameters mirror the baseline).
const (
	seed     = 7
	ringSeed = 5
	domains  = 1_500
	shares   = 150
	lastDay  = 1 // window [0, lastDay]
	retries  = 2
	shards   = 8
	numNodes = 3
)

func main() {
	capdBin := flag.String("capd", filepath.Join("bin", "capd"), "path to the capd binary under test")
	capringBin := flag.String("capring", filepath.Join("bin", "capring"), "path to the capring binary under test")
	fleetdBin := flag.String("fleetd", filepath.Join("bin", "fleetd"), "path to the fleetd binary under test")
	crawlBin := flag.String("crawl", filepath.Join("bin", "crawl"), "path to the crawl binary under test")
	flag.Parse()

	dir, err := os.MkdirTemp("", "replsmoke-*")
	check(err)
	defer os.RemoveAll(dir)

	baseDir := filepath.Join(dir, "baseline")
	baseStats := buildBaseline(baseDir)
	fmt.Printf("replsmoke: baseline: %d captured (%d failed-recorded), %d dead-lettered\n",
		baseStats.Succeeded+baseStats.FailedRecorded, baseStats.FailedRecorded, baseStats.DeadLettered)

	// Three storage nodes: capds with remote ingest and an aggressive
	// background compactor, so segments fold into packs while the fleet
	// is actively writing — the byte-identity check at the end must
	// hold through live compaction.
	var (
		names    []string
		nodeDirs []string
		nodeURLs []string
		capds    []*proc
	)
	var nodesFlag []string
	for i := 0; i < numNodes; i++ {
		name := fmt.Sprintf("node-%d", i)
		ndir := filepath.Join(dir, name)
		p := boot(*capdBin, "-store", ndir, "-init-shards", strconv.Itoa(shards),
			"-ingest", "-addr", "127.0.0.1:0",
			"-compact", "-compact-tail-bytes", "4096", "-compact-interval", "25ms")
		defer p.kill()
		url := "http://" + p.addr()
		names = append(names, name)
		nodeDirs = append(nodeDirs, ndir)
		nodeURLs = append(nodeURLs, url)
		capds = append(capds, p)
		nodesFlag = append(nodesFlag, name+"="+url)
	}

	// capring: R=2 W=1, a deliberately tiny handoff bound so the
	// injected outage overflows to dirty and forces an anti-entropy
	// repair (hints alone could not heal a torn tail).
	capring := boot(*capringBin, "-nodes", strings.Join(nodesFlag, ","),
		"-shards", strconv.Itoa(shards), "-replicas", "2", "-quorum", "1",
		"-seed", strconv.Itoa(ringSeed), "-max-handoff", "1",
		"-handoff-dir", filepath.Join(dir, "handoff"), "-metrics", "-addr", "127.0.0.1:0")
	defer capring.kill()
	ringURL := "http://" + capring.addr()

	// Placement decides the victim: the node owning the most segments,
	// so the outage is guaranteed to bite.
	var info replica.RingInfo
	check(json.Unmarshal([]byte(get(ringURL+"/ring")), &info))
	owned := make(map[string]int)
	for _, placed := range info.Placement {
		for _, n := range placed {
			owned[n]++
		}
	}
	victim := 0
	for i, n := range names {
		if owned[n] > owned[names[victim]] {
			victim = i
		}
	}
	fmt.Printf("replsmoke: ring placement %v; victim %s owns %d/%d segments\n",
		info.Placement, names[victim], owned[names[victim]], shards)

	fleetd := boot(*fleetdBin, "-ingest", ringURL, "-addr", "127.0.0.1:0",
		"-seed", strconv.Itoa(seed), "-domains", strconv.Itoa(domains), "-shares", strconv.Itoa(shares),
		"-from", "0", "-to", strconv.Itoa(lastDay),
		"-lease-size", "8", "-lease-ttl", "1s", "-retry-budget", "10",
		"-retries", strconv.Itoa(retries), "-breaker", "0", "-politeness", "1ms", "-metrics")
	defer fleetd.kill()
	fleetdURL := "http://" + fleetd.addr()

	w1 := start(*crawlBin, "-fleet", fleetdURL, "-worker-id", "replsmoke-w1")
	defer w1.kill()
	w2 := start(*crawlBin, "-fleet", fleetdURL, "-worker-id", "replsmoke-w2")
	defer w2.kill()

	// Chaos: SIGKILL the victim capd once leases are in flight and the
	// ring has committed records — mid-lease, mid-ingest, no goodbye.
	status := fleet.NewClient(fleetdURL)
	deadline := time.Now().Add(30 * time.Second)
	for {
		if time.Now().After(deadline) {
			fatalf("no lease observed within 30s; fleet never started")
		}
		if fleetd.exited() {
			fatalf("fleetd drained before the injected node kill; grow the fixture window")
		}
		st, err := status.Status()
		if err == nil && st.Active >= 1 && healthz(ringURL).Committed > 0 {
			check(capds[victim].cmd.Process.Kill())
			fmt.Printf("replsmoke: SIGKILLed %s with %d leases active\n", names[victim], st.Active)
			break
		}
		time.Sleep(5 * time.Millisecond)
	}

	// Let the outage bite: the writer must mark the node down and, with
	// -max-handoff 1, overflow its hints to dirty (repair scheduled).
	deadline = time.Now().Add(30 * time.Second)
	for {
		if time.Now().After(deadline) {
			fatalf("writer never flagged %s dirty: %+v", names[victim], healthz(ringURL))
		}
		if fleetd.exited() {
			fatalf("fleetd drained before %s went dirty; grow the fixture window", names[victim])
		}
		if n := nodeStatus(ringURL, names[victim]); !n.Up && n.Dirty {
			break
		}
		time.Sleep(5 * time.Millisecond)
	}
	fmt.Printf("replsmoke: %s is down and dirty; restarting it\n", names[victim])

	// Revive: same store, same address. A torn segment tail from the
	// SIGKILL is repaired on open (still a canonical prefix), and the
	// ring's anti-entropy repair re-streams whatever is missing.
	capds[victim] = boot(*capdBin, "-store", nodeDirs[victim], "-ingest",
		"-addr", strings.TrimPrefix(nodeURLs[victim], "http://"),
		"-compact", "-compact-tail-bytes", "4096", "-compact-interval", "25ms")
	defer capds[victim].kill()

	// The drain itself proves availability: the fleet kept ingesting
	// through the outage (W=1 acks via the surviving replica).
	if err := fleetd.wait(120 * time.Second); err != nil {
		fatalf("fleetd: %v\n%s", err, fleetd.output())
	}
	sub, caps, dead, dropped := parseLedger(fleetd.output())
	if want := baseStats.Succeeded + baseStats.FailedRecorded + baseStats.DeadLettered; sub != want {
		fatalf("fleetd submitted %d shares, baseline window has %d", sub, want)
	}
	if dropped != 0 {
		fatalf("fleetd dropped %d shares on a clean drain", dropped)
	}
	if caps != baseStats.Succeeded+baseStats.FailedRecorded {
		fatalf("fleet captured %d, baseline recorded %d", caps, baseStats.Succeeded+baseStats.FailedRecorded)
	}
	if dead != baseStats.DeadLettered {
		fatalf("fleet dead-lettered %d, baseline %d", dead, baseStats.DeadLettered)
	}
	for _, w := range []*proc{w1, w2} {
		w.cmd.Process.Signal(syscall.SIGTERM) //nolint:errcheck
		w.wait(10 * time.Second)              //nolint:errcheck
	}

	// Repair convergence: every node up, clean, and with an empty
	// handoff queue; then each node's record count must equal the sum
	// of its owned baseline segments.
	baseSegs := readSegments(baseDir)
	wantCount := make(map[string]int)
	for s, placed := range info.Placement {
		for _, n := range placed {
			wantCount[n] += bytes.Count(baseSegs[s], []byte("\n"))
		}
	}
	deadline = time.Now().Add(60 * time.Second)
	for {
		if time.Now().After(deadline) {
			fatalf("ring never converged: %+v", healthz(ringURL))
		}
		hz := healthz(ringURL)
		settled := hz.Status == "ok"
		for _, n := range hz.Nodes {
			if !n.Up || n.Dirty || n.Handoff != 0 {
				settled = false
			}
		}
		if settled {
			done := true
			for i, name := range names {
				if countAll(nodeURLs[i]) != wantCount[name] {
					done = false
				}
			}
			if done {
				break
			}
		}
		time.Sleep(20 * time.Millisecond)
	}
	fmt.Printf("replsmoke: ring converged; per-node counts match the baseline placement\n")

	// Ring telemetry: valid exposition, the repl_* families present,
	// the canonical commit counter booked every capture, and at least
	// one repair pass actually ran against the revived node.
	text := get(ringURL + "/metrics")
	check(obs.ValidateExposition(strings.NewReader(text)))
	for _, want := range []string{"repl_node_up", "repl_handoff_depth", "repl_repairs_total",
		"repl_quorum_wait_seconds", "repl_committed_records_total"} {
		if !strings.Contains(text, want) {
			fatalf("capring /metrics missing %q:\n%s", want, text)
		}
	}
	if n := gaugeValue(text, "repl_committed_records_total"); n != caps {
		fatalf("ring committed %d records, fleetd booked %d captures", n, caps)
	}
	if n := labelValue(text, "repl_repairs_total", names[victim]); n < 1 {
		fatalf("no repair pass booked for %s:\n%s", names[victim], text)
	}
	if n := labelValue(text, "repl_handoff_dropped_total", names[victim]); n < 1 {
		fatalf("no handoff overflow booked for %s (outage never went dirty):\n%s", names[victim], text)
	}

	// Graceful shutdown flushes every store; then the headline: each
	// node's owned segments are byte-identical to the baseline, and
	// unplaced segments are empty. The nodes compacted live, so the
	// comparison is over each shard's *logical* stream (packs + tail
	// re-spliced by StreamShard) — which must be byte-for-byte the
	// never-compacted baseline's segment file.
	check(capring.cmd.Process.Signal(syscall.SIGTERM))
	if err := capring.wait(10 * time.Second); err != nil {
		fatalf("capring shutdown: %v", err)
	}
	for i := range capds {
		check(capds[i].cmd.Process.Signal(syscall.SIGTERM))
		if err := capds[i].wait(10 * time.Second); err != nil {
			fatalf("capd %s shutdown: %v", names[i], err)
		}
	}
	var totalOwned, totalPacks int
	for i, name := range names {
		st, err := capstore.Open(nodeDirs[i])
		check(err)
		nodeStats := st.Stats()
		totalPacks += nodeStats.Packs
		for s := 0; s < shards; s++ {
			var buf bytes.Buffer
			_, _, err := st.StreamShard(s, 0, &buf)
			check(err)
			got := buf.Bytes()
			if slices.Contains(info.Placement[s], name) {
				if !bytes.Equal(got, baseSegs[s]) {
					fatalf("%s segment %d logical stream differs from baseline: %d bytes vs %d", name, s, len(got), len(baseSegs[s]))
				}
				totalOwned += len(got)
			} else if len(got) != 0 {
				fatalf("%s segment %d has %d bytes but is not placed there", name, s, len(got))
			}
		}
		check(st.Close())
	}
	if totalPacks == 0 {
		fatalf("no node store holds packs: live compaction never ran (lower -compact-tail-bytes)")
	}
	fmt.Printf("replsmoke: ok — %d shares, %d captured, %s repaired after SIGKILL, %d owned logical bytes identical across the ring (%d packs)\n",
		sub, caps, names[victim], totalOwned, totalPacks)
}

// buildBaseline runs the single-process reference pipeline: Workers=1
// records captures in share order, the canonical byte layout every
// ring node's owned segments must reproduce.
func buildBaseline(dir string) crawler.StreamStats {
	st, err := capstore.Create(dir, shards)
	check(err)
	world := webworld.New(webworld.Config{Seed: seed, Domains: domains})
	feed := socialfeed.New(world, socialfeed.Config{Seed: seed, SharesPerDay: shares})
	p := crawler.NewStreamPlatform(world, crawler.StreamConfig{
		Seed:           seed,
		Workers:        1,
		PerDomainDelay: time.Millisecond,
		Retry:          resilience.RetryPolicy{MaxAttempts: retries, BaseDelay: time.Millisecond, MaxDelay: 10 * time.Millisecond, Multiplier: 2, Jitter: 0.5},
	})
	done := make(chan struct{})
	go func() {
		defer close(done)
		p.Run(context.Background(), st)
	}()
	for day := simtime.Day(0); day <= lastDay; day++ {
		for _, s := range feed.Day(day) {
			check(p.Submit(context.Background(), day, s))
		}
	}
	p.Close()
	<-done
	check(st.Close())
	return p.Stats()
}

func readSegments(dir string) [][]byte {
	segs := make([][]byte, shards)
	for s := 0; s < shards; s++ {
		data, err := os.ReadFile(filepath.Join(dir, fmt.Sprintf("seg-%03d.jsonl", s)))
		check(err)
		segs[s] = data
	}
	return segs
}

type healthzPayload struct {
	Status string `json:"status"`
	replica.Stats
}

func healthz(ringURL string) healthzPayload {
	var hz healthzPayload
	check(json.Unmarshal([]byte(get(ringURL+"/healthz")), &hz))
	return hz
}

func nodeStatus(ringURL, name string) replica.NodeStatus {
	hz := healthz(ringURL)
	for _, n := range hz.Nodes {
		if n.Name == name {
			return n
		}
	}
	fatalf("node %s missing from /healthz: %+v", name, hz)
	return replica.NodeStatus{}
}

func countAll(nodeURL string) int {
	var payload struct {
		Count int `json:"count"`
	}
	check(json.Unmarshal([]byte(get(nodeURL+"/count")), &payload))
	return payload.Count
}

var ledgerRe = regexp.MustCompile(`drained — submitted=(\d+) captures=(\d+) dead=(\d+) dropped=(\d+)`)

func parseLedger(out string) (submitted, captures, dead, dropped int64) {
	m := ledgerRe.FindStringSubmatch(out)
	if m == nil {
		fatalf("no ledger line in fleetd output:\n%s", out)
	}
	vals := make([]int64, 4)
	for i := range vals {
		vals[i], _ = strconv.ParseInt(m[i+1], 10, 64)
	}
	return vals[0], vals[1], vals[2], vals[3]
}

// gaugeValue extracts the value of an unlabelled metric line.
func gaugeValue(text, name string) int64 {
	re := regexp.MustCompile(`(?m)^` + regexp.QuoteMeta(name) + ` (\d+)$`)
	m := re.FindStringSubmatch(text)
	if m == nil {
		fatalf("metric %s has no sample:\n%s", name, text)
	}
	n, _ := strconv.ParseInt(m[1], 10, 64)
	return n
}

// labelValue extracts the value of a node-labelled metric line.
func labelValue(text, name, node string) int64 {
	re := regexp.MustCompile(`(?m)^` + regexp.QuoteMeta(name) + `\{node="` + regexp.QuoteMeta(node) + `"\} (\d+)$`)
	m := re.FindStringSubmatch(text)
	if m == nil {
		return 0
	}
	n, _ := strconv.ParseInt(m[1], 10, 64)
	return n
}

// proc is a child process whose stdout is captured (and echoed) so
// startup banners and the final ledger line can be parsed.
type proc struct {
	cmd    *exec.Cmd
	mu     sync.Mutex
	buf    bytes.Buffer
	doneCh chan error
}

var addrRe = regexp.MustCompile(`on (127\.0\.0\.1:\d+)`)

// procs tracks every child so fatalf can reap them — an orphaned node
// or worker would otherwise outlive a failed smoke run.
var procs []*proc

// start launches a child with captured stdout.
func start(bin string, args ...string) *proc {
	cmd := exec.Command(bin, args...)
	cmd.Stderr = os.Stderr
	out, err := cmd.StdoutPipe()
	check(err)
	check(cmd.Start())
	p := &proc{cmd: cmd, doneCh: make(chan error, 1)}
	procs = append(procs, p)
	go func() {
		buf := make([]byte, 4096)
		for {
			n, err := out.Read(buf)
			if n > 0 {
				p.mu.Lock()
				p.buf.Write(buf[:n])
				p.mu.Unlock()
				os.Stdout.Write(buf[:n]) //nolint:errcheck
			}
			if err != nil {
				break
			}
		}
		p.doneCh <- cmd.Wait()
	}()
	return p
}

// boot is start plus waiting for the "… on 127.0.0.1:PORT" banner.
func boot(bin string, args ...string) *proc {
	p := start(bin, args...)
	deadline := time.Now().Add(10 * time.Second)
	for {
		if m := addrRe.FindStringSubmatch(p.output()); m != nil {
			return p
		}
		if time.Now().After(deadline) || p.exited() {
			p.kill()
			fatalf("%s did not report a listen address:\n%s", bin, p.output())
		}
		time.Sleep(10 * time.Millisecond)
	}
}

func (p *proc) addr() string {
	return addrRe.FindStringSubmatch(p.output())[1]
}

func (p *proc) output() string {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.buf.String()
}

func (p *proc) exited() bool {
	select {
	case err := <-p.doneCh:
		p.doneCh <- err
		return true
	default:
		return false
	}
}

func (p *proc) wait(d time.Duration) error {
	select {
	case err := <-p.doneCh:
		p.doneCh <- err
		return err
	case <-time.After(d):
		p.kill()
		return fmt.Errorf("still running after %v", d)
	}
}

func (p *proc) kill() {
	if p.cmd.Process != nil && !p.exited() {
		p.cmd.Process.Kill() //nolint:errcheck
		<-p.doneCh
		p.doneCh <- nil
	}
}

func get(url string) string {
	resp, err := http.Get(url)
	check(err)
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	check(err)
	if resp.StatusCode != http.StatusOK {
		fatalf("GET %s: %s\n%s", url, resp.Status, body)
	}
	return string(body)
}

func check(err error) {
	if err != nil {
		fatalf("%v", err)
	}
}

func fatalf(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "replsmoke: "+format+"\n", args...)
	for _, p := range procs {
		p.kill()
	}
	os.Exit(1)
}
