package main

import (
	"context"
	"errors"
	"fmt"
	"net/http"
	"os"
	"os/signal"
	"syscall"

	"repro/internal/capstore"
	"repro/internal/fleet"
	"repro/internal/obs"
	"repro/internal/resilience"
	"repro/internal/webworld"
)

// fleetWorker runs the crawl as one node of a distributed fleet: it
// fetches the run parameters from the coordinator's /config (so seeds
// and budgets can never drift between nodes), rebuilds the synthetic
// world locally, then pulls leases until the window drains. Captures
// are pushed to the capd named by the coordinator; the crawl itself
// goes through the same StreamPlatform retry/politeness/vantage path
// as a single-process run — see DESIGN.md §9 for why that makes the
// fleet's store byte-identical to the baseline.
func fleetWorker(coordURL, id string) int {
	if id == "" {
		host, _ := os.Hostname()
		if host == "" {
			host = "worker"
		}
		id = fmt.Sprintf("%s.%d", host, os.Getpid())
	}
	coord := fleet.NewClient(coordURL)
	rc, err := coord.Config()
	if err != nil {
		fmt.Fprintf(os.Stderr, "crawl: fetching fleet config from %s: %v\n", coordURL, err)
		return 1
	}
	fmt.Printf("crawl: fleet worker %s: seed=%d domains=%d retries=%d breaker=%d politeness=%dms ingest=%s\n",
		id, rc.WorldSeed, rc.WorldDomains, rc.RetryAttempts, rc.BreakerThreshold, rc.PolitenessMS, rc.IngestURL)

	// The feed is materialized by the coordinator; workers only need
	// the world to crawl against.
	world := webworld.New(webworld.Config{Seed: rc.WorldSeed, Domains: rc.WorldDomains})

	// The ingest target may be a replicated ring that sheds with 503 +
	// Retry-After while a storage node revives or a quorum reforms.
	// Absorbing those client-side (on the fleet-wide retry budget, so
	// behaviour cannot drift between nodes) keeps a momentary replica
	// outage from failing the lease and dead-lettering its shares.
	ingest := capstore.NewClient(rc.IngestURL)
	ingest.Retry = resilience.RetryPolicy{MaxAttempts: rc.RetryAttempts}
	// When the run has an obsd aggregator, the worker traces its leases
	// and pushes the span export before exiting — workers are ephemeral,
	// a scrape cadence would miss them. Service is the role "worker",
	// never the worker id: per-process names would break byte-identical
	// trace assembly across worker counts.
	var tracer *obs.Tracer
	if rc.ObsURL != "" {
		tracer = obs.NewTracer(obs.TracerConfig{Service: "worker"})
	}
	w, err := fleet.NewWorker(fleet.WorkerConfig{
		ID:          id,
		Coordinator: coord,
		Push:        fleet.IngestPush(ingest),
		World:       world,
		Run:         rc,
		Tracer:      tracer,
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, "crawl:", err)
		return 1
	}
	defer func() {
		if rc.ObsURL == "" {
			return
		}
		if err := obs.PushSpans(http.DefaultClient, rc.ObsURL+"/ingest/spans", tracer); err != nil {
			fmt.Fprintf(os.Stderr, "crawl: fleet worker %s: span push: %v\n", id, err)
		}
	}()

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	if err := w.Run(ctx); err != nil {
		if errors.Is(err, context.Canceled) {
			fmt.Printf("crawl: fleet worker %s: interrupted\n", id)
			return 1
		}
		fmt.Fprintf(os.Stderr, "crawl: fleet worker %s: %v\n", id, err)
		return 1
	}
	fmt.Printf("crawl: fleet worker %s: window drained\n", id)
	return 0
}
