// Command crawl runs the Netograph-style social-media crawl on its own
// and reports dataset statistics: capture volume, observed domains,
// dedup rates and the daily CMP-share polarization of Section 3.5.
//
// Usage:
//
//	crawl [-domains N] [-shares N] [-seed N] [-from YYYY-MM-DD] [-to YYYY-MM-DD]
//	      [-out captures.jsonl] [-store capdir [-store-shards N]]
//	      [-stream [-retries N] [-breaker N] [-chaos SPEC]] [-telemetry]
//	crawl -fleet http://COORD [-worker-id NAME]
//
// The default mode is the batch pipeline (CrawlWindow) used for
// reproducible analysis runs. -stream switches to the deployment
// architecture: the continuously-running StreamPlatform with
// per-domain politeness, retry/backoff (-retries), per-domain circuit
// breakers (-breaker) and a dead-letter ledger for shares that exhaust
// their chances. -chaos injects deterministic faults into the
// substrate, e.g.:
//
//	crawl -stream -retries 4 -breaker 8 -chaos '5xx=0.05,drop=0.02,antibot=0.01,seed=7'
//
// -telemetry attaches the unified metrics registry to the detector,
// the aggregation sink and (with -stream) the pipeline, and dumps the
// Prometheus text exposition when the run finishes.
//
// -fleet turns the process into a worker node of a distributed crawl:
// it pulls leases from the fleetd coordinator at the given URL, crawls
// them through the StreamPlatform path, and pushes captures to the
// capd ingest endpoint the coordinator names. Run parameters (seeds,
// retry budget, politeness) come from the coordinator's /config, so
// the other flags are ignored in this mode. See DESIGN.md §9.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"runtime"
	"time"

	"repro/internal/analysis"
	"repro/internal/capstore"
	"repro/internal/capture"
	"repro/internal/capturedb"
	"repro/internal/crawler"
	"repro/internal/detect"
	"repro/internal/interp"
	"repro/internal/obs"
	"repro/internal/resilience"
	"repro/internal/resilience/chaos"
	"repro/internal/simtime"
	"repro/internal/socialfeed"
	"repro/internal/webworld"
)

func main() {
	var (
		domains   = flag.Int("domains", 20_000, "universe size")
		shares    = flag.Int("shares", 800, "social-feed shares per day")
		seed      = flag.Uint64("seed", 1, "root seed")
		workers   = flag.Int("workers", runtime.GOMAXPROCS(0), "crawl concurrency")
		fromStr   = flag.String("from", "", "crawl start date (YYYY-MM-DD, default window start)")
		toStr     = flag.String("to", "", "crawl end date (YYYY-MM-DD, default window end)")
		outPath   = flag.String("out", "", "also persist raw captures to this JSONL file (query with capq -file)")
		storeDir  = flag.String("store", "", "also persist raw captures to a sharded capture store directory (serve with capd)")
		shards    = flag.Int("store-shards", capstore.DefaultShards, "segment count for -store")
		stream    = flag.Bool("stream", false, "use the streaming deployment pipeline instead of the batch crawl")
		telemetry = flag.Bool("telemetry", false, "meter the run (detector, sinks, stream pipeline) and dump the Prometheus exposition on exit")
		retries   = flag.Int("retries", 1, "total attempt budget per share for transient failures (-stream only; 1 disables retrying)")
		breaker   = flag.Int("breaker", 0, "per-domain circuit breaker: consecutive failures before opening (-stream only; 0 disables)")
		chaosSpec = flag.String("chaos", "", "inject deterministic faults, e.g. '5xx=0.05,drop=0.02,antibot=0.01,latency=0.05,torn=0.01,seed=7'")
		fleetURL  = flag.String("fleet", "", "run as a fleet worker against this coordinator (fleetd) URL; most other flags are ignored — run parameters come from the coordinator's /config")
		workerID  = flag.String("worker-id", "", "worker name in the fleet protocol (default: host.pid)")
	)
	flag.Parse()

	if *fleetURL != "" {
		os.Exit(fleetWorker(*fleetURL, *workerID))
	}

	from := simtime.Day(0)
	to := simtime.Day(simtime.NumDays - 1)
	if *fromStr != "" {
		from = parseDay(*fromStr)
	}
	if *toStr != "" {
		to = parseDay(*toStr)
	}

	chaosCfg, err := chaos.ParseSpec(*chaosSpec)
	if err != nil {
		fmt.Fprintln(os.Stderr, "crawl:", err)
		os.Exit(2)
	}
	var inj *chaos.Injector
	if *chaosSpec != "" {
		inj = chaos.New(chaosCfg)
	}

	// A nil registry keeps every recorder below in its no-op form, so
	// the untelemetered run pays only nil checks.
	var reg *obs.Registry
	if *telemetry {
		reg = obs.NewRegistry()
	}

	world := webworld.New(webworld.Config{Seed: *seed, Domains: *domains})
	feed := socialfeed.New(world, socialfeed.Config{Seed: *seed, SharesPerDay: *shares})
	det := detect.Default()
	det.SetMetrics(detect.NewMetrics(reg))
	observations := detect.NewObservations(det)
	observations.RegisterMetrics(reg)

	sinks := capture.MultiSink{observations}
	if *outPath != "" {
		w, err := capturedb.Create(*outPath)
		if err != nil {
			fmt.Fprintln(os.Stderr, "crawl:", err)
			os.Exit(1)
		}
		defer func() {
			if err := w.Close(); err != nil {
				fmt.Fprintln(os.Stderr, "crawl: writing captures:", err)
				os.Exit(1)
			}
			fmt.Printf("  persisted captures:  %d records in %s\n", w.Len(), *outPath)
		}()
		sinks = append(sinks, w)
	}
	if *storeDir != "" {
		st, err := capstore.Create(*storeDir, *shards)
		if err != nil {
			fmt.Fprintln(os.Stderr, "crawl:", err)
			os.Exit(1)
		}
		// With torn-write chaos the store is fed through the injector's
		// tearing sink, whose Close leaves crash-truncated segment
		// tails for capd to repair on open.
		var storeSink capture.Sink = st
		closeStore := func() error { return st.Close() }
		if inj != nil && chaosCfg.TornWriteRate > 0 {
			torn := inj.TornSink(st)
			storeSink = torn
			closeStore = func() error { return torn.Close() }
		}
		defer func() {
			if err := closeStore(); err != nil {
				fmt.Fprintln(os.Stderr, "crawl: writing capture store:", err)
				os.Exit(1)
			}
			stats := st.Stats()
			fmt.Printf("  capture store:       %d records in %d segments under %s (%d domains, %d hosts indexed; serve with capd)\n",
				stats.Records, len(stats.Shards), *storeDir, stats.IndexedDomains, stats.IndexedHosts)
		}()
		sinks = append(sinks, storeSink)
	}
	var sink capture.Sink = observations
	if len(sinks) > 1 {
		sink = sinks
	}

	start := time.Now()
	fmt.Printf("Crawling %s … %s (%d days), %d shares/day over %d shareable domains\n",
		from, to, int(to-from)+1, *shares, feed.NumShareable())

	var streamStats *crawler.StreamStats
	var deadByReason map[string]int
	if *stream {
		scfg := crawler.StreamConfig{
			Seed:    *seed,
			Workers: *workers,
			Retry:   resilience.RetryPolicy{MaxAttempts: *retries},
			Breaker: resilience.BreakerConfig{Threshold: *breaker},
			Metrics: crawler.NewStreamMetrics(reg),
		}
		if inj != nil {
			scfg.Visitor = inj.Visitor(world)
		}
		platform := crawler.NewStreamPlatform(world, scfg)
		platform.RegisterMetrics(reg)
		ctx := context.Background()
		done := make(chan struct{})
		go func() {
			defer close(done)
			platform.Run(ctx, sink)
		}()
		for day := from; day <= to; day++ {
			for _, s := range feed.Day(day) {
				if err := platform.Submit(ctx, day, s); err != nil {
					fmt.Fprintln(os.Stderr, "crawl: submit:", err)
					os.Exit(1)
				}
			}
			if int(day)%100 == 0 {
				fmt.Fprintf(os.Stderr, "  %s: %d captures\n", day, platform.Captures())
			}
		}
		platform.Close()
		<-done
		st := platform.Stats()
		streamStats = &st
		deadByReason = platform.DeadLetters().ByReason()
	} else {
		platform := crawler.NewPlatform(world, crawler.Config{Seed: *seed, Workers: *workers})
		platform.CrawlWindow(feed, from, to, sink, func(day simtime.Day, captures int64) {
			if int(day)%100 == 0 {
				fmt.Fprintf(os.Stderr, "  %s: %d captures\n", day, captures)
			}
		})
	}
	elapsed := time.Since(start)

	fmt.Printf("\nDataset statistics:\n")
	fmt.Printf("  captures:            %d (%.0f/s)\n", observations.Total, float64(observations.Total)/elapsed.Seconds())
	fmt.Printf("  unique domains:      %d\n", observations.NumDomains())
	fmt.Printf("  feed submissions:    %d (%.1f%% skipped by dedup)\n",
		feed.Submitted, 100*float64(feed.Skipped)/float64(feed.Submitted))
	fmt.Printf("  multi-CMP captures:  %d (%.4f%%; paper: 0.01%%)\n",
		observations.MultiCMP, 100*float64(observations.MultiCMP)/float64(observations.Total))

	if streamStats != nil {
		st := *streamStats
		fmt.Printf("\nResilience (stream pipeline):\n")
		fmt.Printf("  submitted:           %d\n", st.Submitted)
		fmt.Printf("  succeeded:           %d (%.2f%%)\n", st.Succeeded, 100*float64(st.Succeeded)/float64(st.Submitted))
		fmt.Printf("  failed (recorded):   %d\n", st.FailedRecorded)
		fmt.Printf("  retries:             %d\n", st.Retries)
		fmt.Printf("  dead-lettered:       %d %v\n", st.DeadLettered+st.Dropped, deadByReason)
		fmt.Printf("  breakers open now:   %d\n", st.BreakersOpenNow)
	}
	if inj != nil {
		c := inj.Counts()
		fmt.Printf("\nChaos (seed %d): %d faults over %d visits, %d records\n",
			chaosCfg.Seed, c.Total(), c.Visits, c.Records)
		fmt.Printf("  5xx %d, drops %d, antibot %d, latency %d, torn writes %d\n",
			c.FiveXX, c.Drops, c.AntiBot, c.Latency, c.Torn)
	}

	below, between, above := observations.DailyShareDistribution(3, 0.05, 0.95)
	total := below + between + above
	if total > 0 {
		fmt.Printf("  daily CMP-share polarization: %.2f%% of domain-days <5%% or >95%% (paper: 99.8%% of domains)\n",
			100*float64(below+above)/float64(total))
	}

	db := analysis.BuildPresence(observations, interp.Options{})
	fmt.Printf("  domains with CMP presence: %d\n", db.Len())

	if reg != nil {
		fmt.Printf("\nTelemetry (Prometheus exposition):\n")
		if err := reg.WritePrometheus(os.Stdout); err != nil {
			fmt.Fprintln(os.Stderr, "crawl: telemetry:", err)
			os.Exit(1)
		}
	}
}

func parseDay(s string) simtime.Day {
	t, err := time.Parse("2006-01-02", s)
	if err != nil {
		fmt.Fprintf(os.Stderr, "crawl: bad date %q: %v\n", s, err)
		os.Exit(2)
	}
	d := simtime.FromTime(t)
	if !d.Valid() {
		fmt.Fprintf(os.Stderr, "crawl: %s outside the observation window (%s – %s)\n",
			s, simtime.Day(0), simtime.Day(simtime.NumDays-1))
		os.Exit(2)
	}
	return d
}
