// Command serve exposes the synthetic web over real HTTP: one listener
// answers for every simulated hostname (websites, CMP endpoints, the
// consensu.org vendor list) by routing on the Host header. With -demo
// it also crawls a few sites through the HTTP stack and prints the CMP
// detections, demonstrating the full wire-level pipeline.
//
// Usage:
//
//	serve [-addr :8080] [-domains N] [-seed N] [-demo]
//
// Manual exploration:
//
//	curl -H 'Host: vendorlist.consensu.org' http://localhost:8080/v10/vendor-list.json
//	curl -H 'Host: www.<domain>' -H 'X-Sim-Day: 805' http://localhost:8080/
package main

import (
	"context"
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"repro/internal/capture"
	"repro/internal/cmps"
	"repro/internal/consensu"
	"repro/internal/detect"
	"repro/internal/gvl"
	"repro/internal/simtime"
	"repro/internal/webserve"
	"repro/internal/webworld"
)

func main() {
	var (
		addr    = flag.String("addr", "127.0.0.1:8080", "listen address")
		domains = flag.Int("domains", 10_000, "universe size")
		seed    = flag.Uint64("seed", 1, "root seed")
		demo    = flag.Bool("demo", false, "crawl a few sites over HTTP, print detections, and exit")
	)
	flag.Parse()

	world := webworld.New(webworld.Config{Seed: *seed, Domains: *domains})
	history := gvl.GenerateHistory(gvl.DefaultHistoryConfig())
	server := webserve.NewServer(world, history)
	// TCF consent endpoints on the CMP hosts: POST /consent and
	// GET /CookieAccess?user=… (the endpoint the paper queried).
	server.EnableConsentEndpoints(consensu.NewStore())

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		fmt.Fprintln(os.Stderr, "serve:", err)
		os.Exit(1)
	}
	fmt.Printf("Serving the synthetic web (%d domains) on %s\n", *domains, ln.Addr())

	if *demo {
		go http.Serve(ln, server) //nolint:errcheck // demo server dies with the process
		runDemo(world, ln.Addr().String())
		return
	}
	fmt.Println("Route by Host header; simulation context via X-Sim-Day / X-Sim-Geo / X-Sim-Cloud.")
	fmt.Println("Ctrl-C shuts down gracefully.")

	srv := &http.Server{Handler: server}
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	errc := make(chan error, 1)
	go func() { errc <- srv.Serve(ln) }()
	select {
	case err := <-errc:
		fmt.Fprintln(os.Stderr, "serve:", err)
		os.Exit(1)
	case <-ctx.Done():
		shutdownCtx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		if err := srv.Shutdown(shutdownCtx); err != nil {
			fmt.Fprintln(os.Stderr, "serve: shutdown:", err)
			os.Exit(1)
		}
		fmt.Println("serve: drained and stopped")
	}
}

// runDemo crawls the most popular CMP-using sites over HTTP.
func runDemo(world *webworld.World, addr string) {
	crawler := webserve.NewCrawler(addr)
	det := detect.Default()
	day := simtime.Table1Snapshot
	fmt.Printf("\nDemo crawl at %s from the EU university vantage:\n", day)
	shown := 0
	for _, d := range world.Domains() {
		if shown >= 10 {
			break
		}
		if d.CMPAt(day) == cmps.None || d.Unreachable || d.RedirectTo != "" || d.Geo451 {
			continue
		}
		cap, err := crawler.Fetch("http://www."+d.Name+"/", day, capture.EUUniversity)
		if err != nil || cap.Failed {
			continue
		}
		fmt.Printf("  rank %6d  %-28s %d requests → detected %s (truth: %s)\n",
			d.Rank, d.Name, len(cap.Requests), det.DetectOne(cap), d.CMPAt(day))
		shown++
	}
}
