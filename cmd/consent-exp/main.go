// Command consent-exp runs the user-interface experiments of Section
// 4.3: the randomized Quantcast dialog timing experiment (Figure 10)
// and the TrustArc opt-out cost measurement (Figure 9).
//
// Usage:
//
//	consent-exp [-seed N] [-visitors N] [-days N]
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/consent"
	"repro/internal/gvl"
	"repro/internal/report"
)

func main() {
	var (
		seed     = flag.Uint64("seed", 1, "root seed")
		visitors = flag.Int("visitors", 0, "override page-load count for the Quantcast experiment")
		days     = flag.Int("days", consent.MeasurementWindowDays, "TrustArc measurement duration in days (hourly)")
	)
	flag.Parse()

	// The dialog requests consent for the full current GVL, as
	// Quantcast's default configuration does.
	h := gvl.GenerateHistory(gvl.DefaultHistoryConfig())
	list := &h.Versions[len(h.Versions)-1]
	fmt.Printf("Requesting consent for all %d vendors of GVL v%d\n\n",
		len(list.Vendors), list.VendorListVersion)

	exp := consent.NewFieldExperiment(*seed, list)
	if *visitors > 0 {
		exp.Visitors = *visitors
	}
	res, err := consent.Analyze(exp.Run())
	if err != nil {
		fmt.Fprintln(os.Stderr, "consent-exp:", err)
		os.Exit(1)
	}
	fmt.Println(report.Quantcast(res))

	flow := consent.NewTrustArcFlow(*seed)
	fmt.Println(report.TrustArc(flow.HourlySeries(*days)))

	// Habituation: re-run the direct-reject dialog at increasing
	// exposure levels ("trained to accept", Section 5.2).
	pts, err := consent.HabituationSeries(*seed, list, 6_000, []int{0, 5, 20, 100, 500})
	if err != nil {
		fmt.Fprintln(os.Stderr, "consent-exp:", err)
		os.Exit(1)
	}
	fmt.Println("Habituation — the same dialog after N prior exposures:")
	fmt.Println("  exposures  consent-rate  median-accept  median-reject")
	for _, pt := range pts {
		fmt.Printf("  %9d  %11.1f%%  %12.2fs  %12.2fs\n",
			pt.Exposures, 100*pt.ConsentRate, pt.MedianAcceptSec, pt.MedianRejectSec)
	}
}
