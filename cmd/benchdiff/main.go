// Command benchdiff converts `go test -bench` output into JSON
// snapshots and compares two snapshots, failing when any benchmark's
// ns/op regressed beyond a threshold. It is the gate behind
// `make bench` / `make benchdiff`:
//
//	benchdiff -parse bench.out -out BENCH_2026-08-05.json
//	benchdiff -compare BENCH_seed.json BENCH_2026-08-05.json -threshold 0.20
//	benchdiff -pair BenchmarkDetectOneNop,BenchmarkDetectOne -threshold 0.05 obs.json
//
// -parse reads benchmark output (from the file argument, or stdin when
// the argument is "-") and writes a snapshot. -compare exits 1 if any
// benchmark present in both snapshots got slower by more than
// threshold (relative; 0.20 = +20%). -pair compares two benchmarks
// inside ONE snapshot — baseline name first — and exits 1 when the
// second is slower than the first beyond the threshold; it is the gate
// behind `make obs-overhead`, which bounds the cost of live telemetry
// against the no-op recorder.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"strings"

	"repro/internal/benchsnap"
)

func main() {
	var (
		parse     = flag.String("parse", "", "parse `go test -bench` output from this file (\"-\" for stdin) into a snapshot")
		out       = flag.String("out", "", "with -parse: write the snapshot JSON here (default stdout)")
		date      = flag.String("date", "", "with -parse: date string recorded in the snapshot")
		compare   = flag.Bool("compare", false, "compare two snapshot files: benchdiff -compare OLD.json NEW.json")
		pair      = flag.String("pair", "", "compare two benchmarks inside one snapshot: benchdiff -pair BASELINE,CANDIDATE SNAP.json")
		threshold = flag.Float64("threshold", 0.20, "with -compare/-pair: relative ns/op regression bound (0.20 = +20%)")
	)
	flag.Parse()

	switch {
	case *parse != "":
		if err := runParse(*parse, *out, *date); err != nil {
			fmt.Fprintln(os.Stderr, "benchdiff:", err)
			os.Exit(2)
		}
	case *compare:
		if flag.NArg() != 2 {
			fmt.Fprintln(os.Stderr, "benchdiff: -compare needs exactly two snapshot files")
			os.Exit(2)
		}
		ok, err := runCompare(flag.Arg(0), flag.Arg(1), *threshold)
		if err != nil {
			fmt.Fprintln(os.Stderr, "benchdiff:", err)
			os.Exit(2)
		}
		if !ok {
			os.Exit(1)
		}
	case *pair != "":
		if flag.NArg() != 1 {
			fmt.Fprintln(os.Stderr, "benchdiff: -pair needs exactly one snapshot file")
			os.Exit(2)
		}
		ok, err := runPair(flag.Arg(0), *pair, *threshold)
		if err != nil {
			fmt.Fprintln(os.Stderr, "benchdiff:", err)
			os.Exit(2)
		}
		if !ok {
			os.Exit(1)
		}
	default:
		flag.Usage()
		os.Exit(2)
	}
}

func runParse(in, out, date string) error {
	var r io.Reader
	if in == "-" {
		r = os.Stdin
	} else {
		f, err := os.Open(in)
		if err != nil {
			return err
		}
		defer f.Close()
		r = f
	}
	snap, err := benchsnap.Parse(r)
	if err != nil {
		return err
	}
	snap.Date = date
	if out == "" {
		enc, err := json.MarshalIndent(snap, "", "  ")
		if err != nil {
			return err
		}
		_, err = os.Stdout.Write(append(enc, '\n'))
		return err
	}
	return snap.WriteFile(out)
}

// runPair gates CANDIDATE against BASELINE within one snapshot — the
// live-telemetry-vs-no-op overhead check.
func runPair(path, pair string, threshold float64) (bool, error) {
	names := strings.Split(pair, ",")
	if len(names) != 2 || names[0] == "" || names[1] == "" {
		return false, fmt.Errorf("-pair wants BASELINE,CANDIDATE, got %q", pair)
	}
	snap, err := benchsnap.Load(path)
	if err != nil {
		return false, err
	}
	var res [2]benchsnap.Result
	for i, name := range names {
		r, ok := snap.Benchmarks[name]
		if !ok {
			return false, fmt.Errorf("%s: benchmark %q not in snapshot (have %v)", path, name, snap.Names())
		}
		if r.NsPerOp <= 0 {
			return false, fmt.Errorf("%s: benchmark %q has no ns/op", path, name)
		}
		res[i] = r
	}
	ratio := res[1].NsPerOp / res[0].NsPerOp
	fmt.Printf("benchdiff: %s %.0f ns/op vs %s %.0f ns/op: %+.1f%% (bound %+.0f%%)\n",
		names[0], res[0].NsPerOp, names[1], res[1].NsPerOp, (ratio-1)*100, threshold*100)
	if ratio > 1+threshold {
		fmt.Fprintf(os.Stderr, "benchdiff: %s exceeds %s by more than %.0f%%\n", names[1], names[0], threshold*100)
		return false, nil
	}
	return true, nil
}

func runCompare(oldPath, newPath string, threshold float64) (bool, error) {
	old, err := benchsnap.Load(oldPath)
	if err != nil {
		return false, err
	}
	new, err := benchsnap.Load(newPath)
	if err != nil {
		return false, err
	}
	rep := benchsnap.Compare(old, new, threshold)
	rep.Format(os.Stdout)
	if regs := rep.Regressions(); len(regs) > 0 {
		fmt.Fprintf(os.Stderr, "benchdiff: %d benchmark(s) regressed beyond %.0f%%\n", len(regs), threshold*100)
		return false, nil
	}
	fmt.Printf("benchdiff: no regression beyond %.0f%% across %d benchmark(s)\n", threshold*100, len(rep.Deltas))
	return true, nil
}
