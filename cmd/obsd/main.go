// Command obsd is the fleet-wide observability aggregator (DESIGN.md
// §13): it scrapes every node's /metrics.json and /debug/trace on an
// interval, folds the scrapes into cluster rollups, assembles
// cross-process traces out of the exported span streams, and
// evaluates declarative SLO rules with fast/slow burn-rate windows.
//
// Usage:
//
//	obsd -targets capd-0=capd=http://127.0.0.1:8650,ring=capring=http://127.0.0.1:8660 \
//	     [-interval 5s] [-addr 127.0.0.1:8670] [-metrics] \
//	     [-slo name=ingest-p99,kind=latency,metric=capstore_ingest_seconds,threshold=0.5] \
//	     [-slo name=sheds,kind=rate,metric=repl_ingest_shed_total,threshold=0.1,fast=30s,slow=2m,fastburn=1,slowburn=1]
//
// Each -targets entry is name=role=url: the node identity, its role
// (the tracer Service it exports spans under), and the base URL of
// its obs debug surface. -slo repeats, one rule per flag; the clause
// syntax is documented on agg.ParseRule.
//
// Endpoints:
//
//	GET  /cluster/metrics       rollups, Prometheus text exposition
//	GET  /cluster/metrics.json  rollups as {"families":[…]}
//	GET  /cluster/traces        assembled trace summaries
//	GET  /cluster/traces/{id}   one assembled trace (deterministic text)
//	GET  /cluster/alerts        SLO rule states with burn rates
//	GET  /cluster/healthz       scrape + alert health
//	POST /ingest/spans          span export pushed by an ephemeral
//	                            process (fleetd, crawl workers)
//
// With -metrics, /metrics and /metrics.json expose obsd's own
// registry (scrape counters, trace-table state).
package main

import (
	"context"
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"repro/internal/obs"
	"repro/internal/obs/agg"
)

type sloFlags []agg.Rule

func (s *sloFlags) String() string { return fmt.Sprintf("%d rules", len(*s)) }

func (s *sloFlags) Set(v string) error {
	r, err := agg.ParseRule(v)
	if err != nil {
		return err
	}
	*s = append(*s, r)
	return nil
}

func parseTargets(s string) ([]agg.Target, error) {
	var targets []agg.Target
	for _, part := range strings.Split(s, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		fields := strings.SplitN(part, "=", 3)
		if len(fields) != 3 || fields[0] == "" || fields[1] == "" || fields[2] == "" {
			return nil, fmt.Errorf("bad -targets entry %q (want name=role=url)", part)
		}
		targets = append(targets, agg.Target{Name: fields[0], Role: fields[1], URL: fields[2]})
	}
	if len(targets) == 0 {
		return nil, fmt.Errorf("-targets is empty")
	}
	return targets, nil
}

func main() {
	var rules sloFlags
	var (
		targetsFlag = flag.String("targets", "", "comma-separated name=role=url scrape targets (required)")
		interval    = flag.Duration("interval", 5*time.Second, "scrape interval")
		addr        = flag.String("addr", "127.0.0.1:8670", "listen address")
		metrics     = flag.Bool("metrics", false, "expose obsd's own /metrics and /metrics.json")
	)
	flag.Var(&rules, "slo", "SLO rule (repeatable), e.g. name=p99,kind=latency,metric=ingest_seconds,threshold=0.5")
	flag.Parse()
	if *targetsFlag == "" {
		flag.Usage()
		os.Exit(2)
	}
	targets, err := parseTargets(*targetsFlag)
	if err != nil {
		fmt.Fprintln(os.Stderr, "obsd:", err)
		os.Exit(2)
	}

	var reg *obs.Registry
	if *metrics {
		reg = obs.NewRegistry()
	}
	a, err := agg.New(agg.Config{
		Targets:  targets,
		Interval: *interval,
		Rules:    rules,
		Registry: reg,
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, "obsd:", err)
		os.Exit(1)
	}

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		fmt.Fprintln(os.Stderr, "obsd:", err)
		os.Exit(1)
	}
	fmt.Printf("obsd: aggregating %d targets every %v on %s\n", len(targets), *interval, ln.Addr())
	for _, t := range targets {
		fmt.Printf("obsd:   target %s (%s) at %s\n", t.Name, t.Role, t.URL)
	}
	for _, r := range rules {
		fmt.Printf("obsd:   slo %s: %s on %s threshold %g (windows %v/%v, burn %g/%g)\n",
			r.Name, r.Kind, r.Metric, r.Threshold, r.FastWindow, r.SlowWindow, r.FastBurn, r.SlowBurn)
	}
	fmt.Printf("obsd: endpoints /cluster/metrics /cluster/traces /cluster/alerts /cluster/healthz /ingest/spans; Ctrl-C stops.\n")

	mux := http.NewServeMux()
	mux.Handle("/", agg.Handler(a))
	if reg != nil {
		debug := obs.Handler(reg, nil)
		mux.Handle("/metrics", debug)
		mux.Handle("/metrics.json", debug)
		fmt.Printf("obsd: telemetry on /metrics, /metrics.json\n")
	}

	stop := make(chan struct{})
	scraped := make(chan struct{})
	go func() { defer close(scraped); a.Run(stop) }()

	srv := &http.Server{
		Handler:           mux,
		ReadHeaderTimeout: 5 * time.Second,
		IdleTimeout:       60 * time.Second,
	}
	ctx, cancel := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer cancel()
	errc := make(chan error, 1)
	go func() { errc <- srv.Serve(ln) }()
	select {
	case err := <-errc:
		fmt.Fprintln(os.Stderr, "obsd:", err)
		os.Exit(1)
	case <-ctx.Done():
		close(stop)
		<-scraped
		shutdownCtx, scancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer scancel()
		if err := srv.Shutdown(shutdownCtx); err != nil {
			fmt.Fprintln(os.Stderr, "obsd: shutdown:", err)
			os.Exit(1)
		}
		h := a.Health()
		fmt.Printf("obsd: stopped (%d traces assembled, %d alerts firing)\n", h.Traces, h.AlertsFiring)
	}
}
