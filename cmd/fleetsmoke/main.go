// Command fleetsmoke exercises the distributed crawl end to end with
// real processes: it boots a capd storage backend (-ingest -metrics), a
// fleetd coordinator (-metrics), and two `crawl -fleet` workers over a
// small fixture window, SIGKILLs one worker mid-run, and then verifies
// the headline invariant — the fleet's capture store is byte-identical
// to a single-process StreamPlatform run over the same window — plus
// the ledger (fleetd exits 0 only when captures+dead+dropped==submitted)
// and telemetry sanity on both /metrics endpoints. Any failure exits
// non-zero.
//
// Usage:
//
//	fleetsmoke [-capd bin/capd] [-fleetd bin/fleetd] [-crawl bin/crawl]
//
// `make fleet-smoke` builds the three binaries and runs this; it is
// part of `make check`.
package main

import (
	"bytes"
	"context"
	"flag"
	"fmt"
	"io"
	"net/http"
	"os"
	"os/exec"
	"path/filepath"
	"regexp"
	"strconv"
	"strings"
	"sync"
	"syscall"
	"time"

	"repro/internal/capstore"
	"repro/internal/crawler"
	"repro/internal/fleet"
	"repro/internal/obs"
	"repro/internal/resilience"
	"repro/internal/simtime"
	"repro/internal/socialfeed"
	"repro/internal/webworld"
)

// Fixture window. The baseline below must crawl with exactly these
// parameters — every one of them is byte-affecting except politeness
// and the lease geometry.
const (
	seed    = 7
	domains = 1_500
	shares  = 150
	lastDay = 1 // window [0, lastDay]
	retries = 2
	shards  = 4
)

func main() {
	capdBin := flag.String("capd", filepath.Join("bin", "capd"), "path to the capd binary under test")
	fleetdBin := flag.String("fleetd", filepath.Join("bin", "fleetd"), "path to the fleetd binary under test")
	crawlBin := flag.String("crawl", filepath.Join("bin", "crawl"), "path to the crawl binary under test")
	flag.Parse()

	dir, err := os.MkdirTemp("", "fleetsmoke-*")
	check(err)
	defer os.RemoveAll(dir)

	baseDir := filepath.Join(dir, "baseline")
	baseStats := buildBaseline(baseDir)
	fmt.Printf("fleetsmoke: baseline: %d captured (%d failed-recorded), %d dead-lettered\n",
		baseStats.Succeeded+baseStats.FailedRecorded, baseStats.FailedRecorded, baseStats.DeadLettered)

	// capd: fresh store, remote ingest, telemetry.
	storeDir := filepath.Join(dir, "fleetstore")
	capd := boot(*capdBin, "-store", storeDir, "-init-shards", strconv.Itoa(shards),
		"-ingest", "-metrics", "-addr", "127.0.0.1:0")
	defer capd.kill()
	capdURL := "http://" + capd.addr()

	// fleetd: the coordinator, telemetry on. Generous retry budget so a
	// killed worker's chunk is re-leased rather than dead-lettered (a
	// dead chunk would — correctly — diverge from the baseline bytes).
	fleetd := boot(*fleetdBin, "-ingest", capdURL, "-addr", "127.0.0.1:0",
		"-seed", strconv.Itoa(seed), "-domains", strconv.Itoa(domains), "-shares", strconv.Itoa(shares),
		"-from", "0", "-to", strconv.Itoa(lastDay),
		"-lease-size", "8", "-lease-ttl", "1s", "-retry-budget", "10",
		"-retries", strconv.Itoa(retries), "-breaker", "0", "-politeness", "1ms", "-metrics")
	defer fleetd.kill()
	fleetdURL := "http://" + fleetd.addr()

	w1 := start(*crawlBin, "-fleet", fleetdURL, "-worker-id", "fleetsmoke-w1")
	defer w1.kill()
	w2 := start(*crawlBin, "-fleet", fleetdURL, "-worker-id", "fleetsmoke-w2")
	defer w2.kill()

	// Chaos: SIGKILL w2 as soon as the coordinator has leases in flight.
	// If the kill lands mid-lease its chunk expires and is reassigned;
	// either way the fleet must drain to the same bytes.
	status := fleet.NewClient(fleetdURL)
	killed := false
	deadline := time.Now().Add(30 * time.Second)
	for !killed {
		if time.Now().After(deadline) {
			fatalf("no lease observed within 30s; fleet never started")
		}
		if fleetd.exited() {
			fatalf("fleetd drained before the injected worker kill; grow the fixture window")
		}
		st, err := status.Status()
		if err == nil && st.Active >= 1 {
			check(w2.cmd.Process.Kill()) // SIGKILL: no goodbye, the lease just stops heartbeating
			killed = true
			fmt.Printf("fleetsmoke: killed w2 with %d leases active, %d/%d chunks pending\n",
				st.Active, st.Pending, st.Chunks)
		}
		time.Sleep(5 * time.Millisecond)
	}

	// Coordinator telemetry must be valid exposition and carry the fleet
	// families while the run is live.
	text := get(fleetdURL + "/metrics")
	check(obs.ValidateExposition(strings.NewReader(text)))
	for _, want := range []string{"fleet_leases_granted_total", "fleet_chunks_pending", "fleet_workers_live"} {
		if !strings.Contains(text, want) {
			fatalf("fleetd /metrics missing %q:\n%s", want, text)
		}
	}

	// fleetd exits 0 only when the window drained AND the ledger
	// balances (captures+dead+dropped == submitted) — the invariant
	// check lives in fleetd itself.
	if err := fleetd.wait(60 * time.Second); err != nil {
		fatalf("fleetd: %v\n%s", err, fleetd.output())
	}
	sub, caps, dead, dropped, reassigned := parseLedger(fleetd.output())
	// The feed dedups (URL, day), so the window's real share count is
	// whatever the baseline submitted — not shares×days.
	if want := baseStats.Succeeded + baseStats.FailedRecorded + baseStats.DeadLettered; sub != want {
		fatalf("fleetd submitted %d shares, baseline window has %d", sub, want)
	}
	if dropped != 0 {
		fatalf("fleetd dropped %d shares on a clean drain", dropped)
	}
	if caps != baseStats.Succeeded+baseStats.FailedRecorded {
		fatalf("fleet captured %d, baseline recorded %d", caps, baseStats.Succeeded+baseStats.FailedRecorded)
	}
	if dead != baseStats.DeadLettered {
		fatalf("fleet dead-lettered %d, baseline %d", dead, baseStats.DeadLettered)
	}

	// The surviving worker drains on its own or spins on the vanished
	// coordinator; either way a SIGTERM must end it.
	w1.cmd.Process.Signal(syscall.SIGTERM) //nolint:errcheck
	w1.wait(10 * time.Second)              //nolint:errcheck

	// capd telemetry: valid exposition, and the ingest path actually
	// carried the records.
	text = get(capdURL + "/metrics")
	check(obs.ValidateExposition(strings.NewReader(text)))
	if !strings.Contains(text, "capstore_ingest_records_total") {
		fatalf("capd /metrics missing capstore_ingest_records_total:\n%s", text)
	}
	if n := gaugeValue(text, "capstore_ingest_records_total"); n != caps {
		fatalf("capd ingested %d records, fleetd booked %d captures", n, caps)
	}

	// Graceful capd shutdown flushes and closes the store; then the
	// headline: byte-identical segments.
	check(capd.cmd.Process.Signal(syscall.SIGTERM))
	if err := capd.wait(10 * time.Second); err != nil {
		fatalf("capd shutdown: %v", err)
	}
	compareSegments(baseDir, storeDir)

	fmt.Printf("fleetsmoke: ok — %d shares, %d captured, %d dead-lettered, %d leases reassigned after SIGKILL, stores byte-identical\n",
		sub, caps, dead, reassigned)
}

// buildBaseline runs the single-process reference pipeline: Workers=1
// records captures in share order, which is the canonical byte layout
// the fleet must reproduce. Retry budget and breaker setting mirror the
// fleetd flags above; backoff timing and politeness are byte-neutral.
func buildBaseline(dir string) crawler.StreamStats {
	st, err := capstore.Create(dir, shards)
	check(err)
	world := webworld.New(webworld.Config{Seed: seed, Domains: domains})
	feed := socialfeed.New(world, socialfeed.Config{Seed: seed, SharesPerDay: shares})
	p := crawler.NewStreamPlatform(world, crawler.StreamConfig{
		Seed:           seed,
		Workers:        1,
		PerDomainDelay: time.Millisecond,
		Retry:          resilience.RetryPolicy{MaxAttempts: retries, BaseDelay: time.Millisecond, MaxDelay: 10 * time.Millisecond, Multiplier: 2, Jitter: 0.5},
	})
	done := make(chan struct{})
	go func() {
		defer close(done)
		p.Run(context.Background(), st)
	}()
	for day := simtime.Day(0); day <= lastDay; day++ {
		for _, s := range feed.Day(day) {
			check(p.Submit(context.Background(), day, s))
		}
	}
	p.Close()
	<-done
	check(st.Close())
	return p.Stats()
}

func compareSegments(wantDir, gotDir string) {
	wants, err := filepath.Glob(filepath.Join(wantDir, "seg-*.jsonl"))
	check(err)
	gots, err := filepath.Glob(filepath.Join(gotDir, "seg-*.jsonl"))
	check(err)
	if len(wants) != len(gots) {
		fatalf("segment count: baseline %d, fleet %d", len(wants), len(gots))
	}
	var total int
	for _, wp := range wants {
		gp := filepath.Join(gotDir, filepath.Base(wp))
		w, err := os.ReadFile(wp)
		check(err)
		g, err := os.ReadFile(gp)
		check(err)
		if !bytes.Equal(w, g) {
			fatalf("segment %s differs: baseline %d bytes, fleet %d bytes",
				filepath.Base(wp), len(w), len(g))
		}
		total += len(w)
	}
	fmt.Printf("fleetsmoke: %d segments byte-identical (%d bytes)\n", len(wants), total)
}

var ledgerRe = regexp.MustCompile(`drained — submitted=(\d+) captures=(\d+) dead=(\d+) dropped=(\d+) \(leases=\d+ reassigned=(\d+)`)

func parseLedger(out string) (submitted, captures, dead, dropped, reassigned int64) {
	m := ledgerRe.FindStringSubmatch(out)
	if m == nil {
		fatalf("no ledger line in fleetd output:\n%s", out)
	}
	vals := make([]int64, 5)
	for i := range vals {
		vals[i], _ = strconv.ParseInt(m[i+1], 10, 64)
	}
	return vals[0], vals[1], vals[2], vals[3], vals[4]
}

// gaugeValue extracts the value of an unlabelled metric line.
func gaugeValue(text, name string) int64 {
	re := regexp.MustCompile(`(?m)^` + regexp.QuoteMeta(name) + ` (\d+)$`)
	m := re.FindStringSubmatch(text)
	if m == nil {
		fatalf("metric %s has no sample:\n%s", name, text)
	}
	n, _ := strconv.ParseInt(m[1], 10, 64)
	return n
}

// proc is a child process whose stdout is captured (and echoed) so
// startup banners and the final ledger line can be parsed.
type proc struct {
	cmd    *exec.Cmd
	mu     sync.Mutex
	buf    bytes.Buffer
	doneCh chan error
}

var addrRe = regexp.MustCompile(`on (127\.0\.0\.1:\d+)`)

// procs tracks every child so fatalf can reap them — an orphaned capd
// or worker would otherwise outlive a failed smoke run.
var procs []*proc

// start launches a child with captured stdout.
func start(bin string, args ...string) *proc {
	cmd := exec.Command(bin, args...)
	cmd.Stderr = os.Stderr
	out, err := cmd.StdoutPipe()
	check(err)
	check(cmd.Start())
	p := &proc{cmd: cmd, doneCh: make(chan error, 1)}
	procs = append(procs, p)
	go func() {
		buf := make([]byte, 4096)
		for {
			n, err := out.Read(buf)
			if n > 0 {
				p.mu.Lock()
				p.buf.Write(buf[:n])
				p.mu.Unlock()
				os.Stdout.Write(buf[:n]) //nolint:errcheck
			}
			if err != nil {
				break
			}
		}
		p.doneCh <- cmd.Wait()
	}()
	return p
}

// boot is start plus waiting for the "… on 127.0.0.1:PORT" banner.
func boot(bin string, args ...string) *proc {
	p := start(bin, args...)
	deadline := time.Now().Add(10 * time.Second)
	for {
		if m := addrRe.FindStringSubmatch(p.output()); m != nil {
			return p
		}
		if time.Now().After(deadline) || p.exited() {
			p.kill()
			fatalf("%s did not report a listen address:\n%s", bin, p.output())
		}
		time.Sleep(10 * time.Millisecond)
	}
}

func (p *proc) addr() string {
	return addrRe.FindStringSubmatch(p.output())[1]
}

func (p *proc) output() string {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.buf.String()
}

func (p *proc) exited() bool {
	select {
	case err := <-p.doneCh:
		p.doneCh <- err
		return true
	default:
		return false
	}
}

func (p *proc) wait(d time.Duration) error {
	select {
	case err := <-p.doneCh:
		p.doneCh <- err
		return err
	case <-time.After(d):
		p.kill()
		return fmt.Errorf("still running after %v", d)
	}
}

func (p *proc) kill() {
	if p.cmd.Process != nil && !p.exited() {
		p.cmd.Process.Kill() //nolint:errcheck
		<-p.doneCh
		p.doneCh <- nil
	}
}

func get(url string) string {
	resp, err := http.Get(url)
	check(err)
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	check(err)
	if resp.StatusCode != http.StatusOK {
		fatalf("GET %s: %s\n%s", url, resp.Status, body)
	}
	return string(body)
}

func check(err error) {
	if err != nil {
		fatalf("%v", err)
	}
}

func fatalf(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "fleetsmoke: "+format+"\n", args...)
	for _, p := range procs {
		p.kill()
	}
	os.Exit(1)
}
