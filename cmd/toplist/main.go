// Command toplist builds the Tranco-style research toplist over the
// synthetic web — the manipulation-resistant 30-day aggregation of the
// Alexa/Umbrella/Majestic/Quantcast provider lists — and prints its
// permanent ID and top entries.
//
// Usage:
//
//	toplist [-domains N] [-size N] [-seed N] [-date YYYY-MM-DD] [-n N]
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"repro/internal/simtime"
	"repro/internal/toplist"
	"repro/internal/webworld"
)

func main() {
	var (
		domains = flag.Int("domains", 50_000, "universe size")
		size    = flag.Int("size", 10_000, "toplist length")
		seed    = flag.Uint64("seed", 1, "root seed")
		dateStr = flag.String("date", "2020-01-30", "list creation date (the paper uses 2020-01-30, list K8JW)")
		n       = flag.Int("n", 25, "entries to print")
	)
	flag.Parse()

	t, err := time.Parse("2006-01-02", *dateStr)
	if err != nil {
		fmt.Fprintln(os.Stderr, "toplist: bad date:", err)
		os.Exit(2)
	}
	day := simtime.FromTime(t)
	if !day.Valid() {
		fmt.Fprintln(os.Stderr, "toplist: date outside the observation window")
		os.Exit(2)
	}

	world := webworld.New(webworld.Config{Seed: *seed, Domains: *domains})
	list := toplist.Build(toplist.Config{Seed: *seed, Size: *size}, day, world.TrueOrder())

	fmt.Printf("Tranco-style list %s, created %s, %d entries\n", list.ID, list.Created, list.Len())
	fmt.Printf("(aggregated by Borda count over %v, 30-day window)\n\n", toplist.Providers())
	for i, d := range list.Top(*n) {
		fmt.Printf("%6d  %s\n", i+1, d)
	}
}
