// Command analyzed serves the paper's analyses as incrementally
// updated materialized views over a live capture store. It follows a
// capd/capring node (or a local store directory), folds every
// committed record through the analytics engine, checkpoints view
// state to disk, and serves the views over HTTP:
//
//	GET /views          → view catalog with the current commit cursor
//	GET /view/NAME      → one view's JSON snapshot (adoption, coverage,
//	                      marketshare, gvl)
//	GET /series/NAME    → the view's per-point series as NDJSON
//	GET /healthz        → cursor, per-shard cursors, lag, checkpoint
//
// Usage:
//
//	analyzed (-server URL | -store DIR) [-addr HOST:PORT]
//	         [-checkpoint DIR] [-checkpoint-every N]
//	         [-poll D] [-batch N] [-max-inflight N] [-timeout D]
//	         [-metrics]
//
// On startup analyzed resumes from the newest valid checkpoint (torn
// checkpoint files are skipped) and streams only the store suffix past
// the checkpointed cursor; with no checkpoint it bootstraps from the
// store's full contents. Views are defined at every ingest commit
// cursor and agree byte-for-byte with batch `analyze -store` run on a
// store truncated to the same cursor.
package main

import (
	"context"
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"repro/internal/analytics"
	"repro/internal/capstore"
	"repro/internal/obs"
)

func main() {
	var (
		addr      = flag.String("addr", "127.0.0.1:8402", "listen address (use 127.0.0.1:0 for an ephemeral port)")
		server    = flag.String("server", "", "capd/capring base URL to follow (e.g. http://127.0.0.1:8400)")
		storeDir  = flag.String("store", "", "local capture store directory to follow instead of -server")
		ckptDir   = flag.String("checkpoint", "", "directory for durable view-state checkpoints (empty = none)")
		ckptEvery = flag.Int64("checkpoint-every", 4096, "records between checkpoints")
		poll      = flag.Duration("poll", 250*time.Millisecond, "source poll interval")
		batchSize = flag.Int("batch", 256, "records folded per engine apply")
		maxInFly  = flag.Int("max-inflight", 64, "max concurrent view queries before shedding with 429")
		timeout   = flag.Duration("timeout", 30*time.Second, "per-query timeout")
		metrics   = flag.Bool("metrics", false, "serve /metrics, /metrics.json and /debug endpoints")
	)
	flag.Parse()
	if (*server == "") == (*storeDir == "") {
		fmt.Fprintln(os.Stderr, "analyzed: exactly one of -server or -store is required")
		flag.Usage()
		os.Exit(2)
	}

	var reg *obs.Registry
	var tracer *obs.Tracer
	if *metrics {
		reg = obs.NewRegistry()
		// Service is the role, never a per-process identity, so span
		// exports stay byte-identical across node counts.
		tracer = obs.NewTracer(obs.TracerConfig{Service: "analyzed"})
		tracer.RegisterMetrics(reg)
	}

	engine := analytics.NewEngine(analytics.Config{Registry: reg, Tracer: tracer})

	var source analytics.Source
	if *server != "" {
		source = analytics.ClientSource{Client: capstore.NewClient(*server)}
		fmt.Printf("analyzed: following %s\n", *server)
	} else {
		store, err := capstore.Open(*storeDir)
		if err != nil {
			fmt.Fprintln(os.Stderr, "analyzed:", err)
			os.Exit(1)
		}
		defer store.Close()
		source = analytics.StoreSource{Store: store}
		fmt.Printf("analyzed: following local store %s\n", *storeDir)
	}

	follower := analytics.NewFollower(analytics.FollowerConfig{
		Source:          source,
		Engine:          engine,
		CheckpointDir:   *ckptDir,
		CheckpointEvery: *ckptEvery,
		PollInterval:    *poll,
		BatchSize:       *batchSize,
	})
	resumed, err := follower.Resume()
	if err != nil {
		fmt.Fprintln(os.Stderr, "analyzed: resume:", err)
		os.Exit(1)
	}
	if resumed >= 0 {
		fmt.Printf("analyzed: resumed from checkpoint at cursor %d\n", resumed)
	} else if *ckptDir != "" {
		fmt.Printf("analyzed: cold start (no checkpoint in %s), bootstrapping from store\n", *ckptDir)
	}

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		fmt.Fprintln(os.Stderr, "analyzed:", err)
		os.Exit(1)
	}
	outer := http.NewServeMux()
	if *metrics {
		debug := obs.Handler(reg, tracer)
		outer.Handle("/metrics", debug)
		outer.Handle("/metrics.json", debug)
		outer.Handle("/debug/", debug)
		fmt.Printf("analyzed: telemetry on /metrics, /metrics.json, /debug/trace, /debug/pprof/\n")
	}
	outer.Handle("/", analytics.NewHandler(analytics.HandlerConfig{
		Engine:         engine,
		Follower:       follower,
		MaxInFlight:    *maxInFly,
		RequestTimeout: *timeout,
		Tracer:         tracer,
	}, reg))

	fmt.Printf("analyzed: serving %d views on %s\n", len(analytics.ViewNames()), ln.Addr())
	fmt.Printf("analyzed: endpoints /views /view/NAME /series/NAME /healthz; ≤%d in flight, %v/query; Ctrl-C shuts down gracefully.\n",
		*maxInFly, *timeout)

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	followDone := make(chan struct{})
	go func() {
		defer close(followDone)
		follower.Run(ctx)
	}()

	srv := &http.Server{
		Handler:           outer,
		ReadHeaderTimeout: 5 * time.Second,
		IdleTimeout:       60 * time.Second,
	}
	errc := make(chan error, 1)
	go func() { errc <- srv.Serve(ln) }()
	select {
	case err := <-errc:
		fmt.Fprintln(os.Stderr, "analyzed:", err)
		os.Exit(1)
	case <-ctx.Done():
		// The follower writes a final checkpoint on its way out, so a
		// clean restart resumes at exactly this cursor.
		<-followDone
		shutdownCtx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		if err := srv.Shutdown(shutdownCtx); err != nil {
			fmt.Fprintln(os.Stderr, "analyzed: shutdown:", err)
			os.Exit(1)
		}
		fmt.Printf("analyzed: drained and stopped at cursor %d (lag %d)\n",
			engine.Cursor(), follower.Lag())
	}
}
