// Command decisionsmoke is the end-to-end gate for the consent-decision
// service: it boots a real consentd child process with telemetry on an
// ephemeral port, drives mixed traffic through the load driver (batch
// NDJSON, single decisions, vendor filters), re-checks sampled batch
// answers against the naive reference path, and verifies the /metrics
// and /healthz surfaces carry the decision families. Any failure exits
// non-zero.
//
// Usage:
//
//	decisionsmoke [-consentd bin/consentd] [-decisions 50000]
//
// `make decision-smoke` builds consentd and runs this; it is part of
// `make check`.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net/http"
	"os"
	"os/exec"
	"path/filepath"
	"regexp"
	"strings"
	"syscall"
	"time"

	"repro/internal/decision"
	"repro/internal/gvl"
	"repro/internal/obs"
)

// The child's GVL must match the validator's resolver exactly; both use
// these parameters.
const (
	gvlSeed     = 1
	gvlVersions = 60
	gvlVendors  = 400
	flexProb    = 0.25
)

func main() {
	bin := flag.String("consentd", filepath.Join("bin", "consentd"), "path to the consentd binary under test")
	decisions := flag.Int("decisions", 50_000, "decisions to drive through the batch endpoint")
	flag.Parse()

	addr, stop, err := bootConsentd(*bin)
	check(err)
	defer stop()
	base := "http://" + addr

	pop, err := decision.GeneratePopulation(decision.PopulationConfig{
		Seed: 1, Size: 2000, MaxVLV: gvlVersions,
	})
	check(err)

	// Mixed batch traffic through the load driver.
	cfg := decision.LoadConfig{
		ServerURL:  base,
		Population: pop,
		Workers:    4,
		Decisions:  *decisions,
		BatchSize:  256,
		Bodies:     32,
	}
	res, err := decision.RunLoad(cfg)
	check(err)
	if res.Decisions < int64(*decisions) {
		fatalf("drove only %d of %d decisions", res.Decisions, *decisions)
	}
	if res.Bases["consent"] == 0 || res.Bases["none"] == 0 {
		fatalf("implausible basis mix: %v", res.Bases)
	}

	// Single-decision endpoint agrees with the local kernel.
	raw := pop.Strings[0]
	one := get(base + "/decide?tc=" + raw + "&vendor=1&purpose=1")
	var dr struct {
		Allowed bool   `json:"allowed"`
		Basis   string `json:"basis"`
	}
	check(json.Unmarshal([]byte(one), &dr))
	if (dr.Basis == "none") == dr.Allowed {
		fatalf("/decide inconsistent: %s", one)
	}

	// Vendor filter answers a plausible subset.
	fresp, err := http.Post(base+"/v1/filter", "application/json",
		strings.NewReader(`{"t":"`+raw+`","purpose":1,"vendors":[1,2,3,4,5,6,7,8,9,10]}`))
	check(err)
	fbody, _ := io.ReadAll(fresp.Body)
	fresp.Body.Close()
	if fresp.StatusCode != http.StatusOK {
		fatalf("/v1/filter: %s\n%s", fresp.Status, fbody)
	}
	var fr struct {
		Allowed []int `json:"allowed"`
		Checked int   `json:"checked"`
	}
	check(json.Unmarshal(fbody, &fr))
	if fr.Checked != 10 || len(fr.Allowed) > 10 {
		fatalf("/v1/filter implausible: %s", fbody)
	}

	// Validation: sampled batches re-checked against the naive path
	// over the same generated GVL.
	h := gvl.GenerateHistory(gvl.HistoryConfig{
		Seed: gvlSeed, Versions: gvlVersions, PeakVendors: gvlVendors,
	})
	resolver := decision.NewResolver(gvl.UpgradeHistory(h, gvl.V2UpgradeConfig{
		FlexibleSeed: gvlSeed, FlexibleProb: flexProb,
	}))
	vr, err := decision.ValidateAgainstNaive(cfg, resolver, 8)
	check(err)
	if vr.Mismatches > 0 {
		fatalf("%d of %d answers disagree with the naive path: %s",
			vr.Mismatches, vr.Checked, vr.FirstMismatch)
	}

	// /metrics is valid exposition text and carries the decision
	// families with real traffic in them.
	text := get(base + "/metrics")
	check(obs.ValidateExposition(strings.NewReader(text)))
	for _, want := range []string{
		`decision_decisions_total{endpoint="batch",basis="consent"}`,
		`decision_decisions_total{endpoint="filter",basis="consent"}`,
		"decision_cache_hits_total",
		"decision_cache_hit_ratio",
		"decision_batch_seconds_bucket",
		"decision_single_seconds_bucket",
		"decision_http_admitted_total",
		"obs_trace_spans",
	} {
		if !strings.Contains(text, want) {
			fatalf("/metrics missing %q", want)
		}
	}

	// /healthz totals cover the driven traffic and the cache absorbed
	// the skewed string population.
	var health struct {
		Decisions     int64   `json:"decisions"`
		CacheHitRatio float64 `json:"cache_hit_ratio"`
		GVL           struct {
			Versions int `json:"versions"`
		} `json:"gvl"`
	}
	check(json.Unmarshal([]byte(get(base+"/healthz")), &health))
	if health.Decisions < res.Decisions {
		fatalf("/healthz decisions = %d, driver counted %d", health.Decisions, res.Decisions)
	}
	if health.GVL.Versions != gvlVersions {
		fatalf("/healthz GVL versions = %d, want %d", health.GVL.Versions, gvlVersions)
	}
	if health.CacheHitRatio < 0.5 {
		fatalf("cache hit ratio %.3f after skewed traffic, want ≥ 0.5", health.CacheHitRatio)
	}

	check(stop())
	fmt.Printf("decisionsmoke: ok (%d decisions at %.0f/sec, p50 %v p99 %v, %.1f%% cache hits, %d answers validated)\n",
		res.Decisions, res.DecisionsPerSec, res.P50, res.P99,
		100*health.CacheHitRatio, vr.Checked)
}

var addrRe = regexp.MustCompile(`on (127\.0\.0\.1:\d+)`)

// bootConsentd starts consentd with telemetry on an ephemeral port and
// parses the bound address from its startup banner. stop sends SIGTERM
// and waits for the graceful drain.
func bootConsentd(bin string) (addr string, stop func() error, err error) {
	cmd := exec.Command(bin,
		"-addr", "127.0.0.1:0", "-metrics",
		"-gvl-seed", fmt.Sprint(gvlSeed),
		"-gvl-versions", fmt.Sprint(gvlVersions),
		"-gvl-vendors", fmt.Sprint(gvlVendors),
		"-flexible-prob", fmt.Sprint(flexProb),
	)
	cmd.Stderr = os.Stderr
	out, err := cmd.StdoutPipe()
	if err != nil {
		return "", nil, err
	}
	if err := cmd.Start(); err != nil {
		return "", nil, err
	}
	banner := make(chan string, 1)
	go func() {
		buf := make([]byte, 4096)
		var seen []byte
		for {
			n, err := out.Read(buf)
			seen = append(seen, buf[:n]...)
			if m := addrRe.FindSubmatch(seen); m != nil {
				banner <- string(m[1])
				break
			}
			if err != nil {
				banner <- ""
				return
			}
		}
		io.Copy(io.Discard, out)
	}()
	select {
	case addr = <-banner:
	case <-time.After(10 * time.Second):
	}
	if addr == "" {
		cmd.Process.Kill()
		cmd.Wait()
		return "", nil, fmt.Errorf("consentd did not report a listen address")
	}
	stopped := false
	stop = func() error {
		if stopped {
			return nil
		}
		stopped = true
		if err := cmd.Process.Signal(syscall.SIGTERM); err != nil {
			return err
		}
		done := make(chan error, 1)
		go func() { done <- cmd.Wait() }()
		select {
		case err := <-done:
			return err
		case <-time.After(10 * time.Second):
			cmd.Process.Kill()
			return fmt.Errorf("consentd did not shut down after SIGTERM")
		}
	}
	return addr, stop, nil
}

func get(url string) string {
	resp, err := http.Get(url)
	check(err)
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	check(err)
	if resp.StatusCode != http.StatusOK {
		fatalf("GET %s: %s\n%s", url, resp.Status, body)
	}
	return string(body)
}

func check(err error) {
	if err != nil {
		fatalf("%v", err)
	}
}

func fatalf(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "decisionsmoke: "+format+"\n", args...)
	os.Exit(1)
}
