// Command capq queries a persisted capture database, mirroring
// Netograph's custom query API. It reads either a local source — a
// JSONL file from `crawl -out` or a sharded store directory from
// `crawl -store` — or a live capd server.
//
// Usage:
//
//	capq -file captures.jsonl | -store capdir | -server http://host:8650
//	     [-domain D] [-from YYYY-MM-DD] [-to YYYY-MM-DD]
//	     [-vantage us-cloud|eu-cloud|eu-university] [-host H] [-failed]
//	     [-count] [-cmp] [-n N] [-stats]
//
// -stats skips the query entirely and prints the store's shape: totals
// plus one line per shard with its pack/tail record and byte split and
// the open path the shard took ("indexed" = pack footer indexes were
// loaded, "scan" = full segment scan).
//
// Examples:
//
//	capq -file caps.jsonl -count -host cdn.cookielaw.org   # OneTrust captures
//	capq -store capdir -domain example.com -cmp            # indexed lookup
//	capq -server http://127.0.0.1:8650 -count -host cdn.cookielaw.org
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"repro/internal/capstore"
	"repro/internal/capture"
	"repro/internal/capturedb"
	"repro/internal/detect"
	"repro/internal/simtime"
)

func main() {
	var (
		file      = flag.String("file", "", "capture JSONL file")
		storeDir  = flag.String("store", "", "sharded capture store directory")
		server    = flag.String("server", "", "base URL of a running capd (e.g. http://127.0.0.1:8650)")
		domain    = flag.String("domain", "", "filter by final registrable domain")
		fromStr   = flag.String("from", "", "filter: captures on or after this date")
		toStr     = flag.String("to", "", "filter: captures on or before this date")
		vantage   = flag.String("vantage", "", "filter by vantage name")
		host      = flag.String("host", "", "filter: captures that requested this host")
		failed    = flag.Bool("failed", false, "include failed captures")
		countOnly = flag.Bool("count", false, "print only the match count")
		withCMP   = flag.Bool("cmp", false, "annotate each capture with the detected CMP")
		limit     = flag.Int("n", 50, "maximum captures to print (0 = unlimited)")
		stats     = flag.Bool("stats", false, "print store shape (per-shard pack/tail split and open path) instead of querying")
	)
	flag.Parse()
	sources := 0
	for _, s := range []string{*file, *storeDir, *server} {
		if s != "" {
			sources++
		}
	}
	if sources != 1 {
		fmt.Fprintln(os.Stderr, "capq: exactly one of -file, -store, -server is required")
		flag.Usage()
		os.Exit(2)
	}

	if *stats {
		var st capstore.Stats
		var err error
		switch {
		case *server != "":
			cl := capstore.NewClient(*server)
			if st, err = cl.Stats(); err == nil {
				// A serving node also knows its ingest commit cursor;
				// print it beside the store shape so operators can
				// compare against analyzed view lag.
				if h, herr := cl.Health(); herr == nil && h.Ingest != nil {
					fmt.Printf("ingest: cursor %d  accepted %d  duplicates %d  shed %d  pending %d\n",
						h.Ingest.NextSeq, h.Ingest.Accepted, h.Ingest.Duplicates,
						h.Ingest.Shed, h.Ingest.PendingBatches)
				}
			}
		case *storeDir != "":
			var s *capstore.Store
			if s, err = capstore.Open(*storeDir); err == nil {
				st = s.Stats()
				s.Close()
			}
		default:
			err = fmt.Errorf("-stats needs -store or -server (a flat -file has no shards)")
		}
		if err != nil {
			fmt.Fprintln(os.Stderr, "capq:", err)
			os.Exit(1)
		}
		printStats(st)
		return
	}

	q := capturedb.Query{
		Domain:        *domain,
		Vantage:       *vantage,
		RequestHost:   *host,
		IncludeFailed: *failed,
	}
	if *fromStr != "" {
		q.From = parseDay(*fromStr)
	}
	if *toStr != "" {
		q.To, q.HasTo = parseDay(*toStr), true
	}

	det := detect.Default()
	n := 0
	print := func(c *capture.Capture) bool {
		n++
		if *countOnly {
			return true
		}
		line := fmt.Sprintf("%s  %-28s %-13s status=%d requests=%d",
			c.Day, c.FinalDomain, c.Vantage.Name, c.Status, len(c.Requests))
		if c.Failed {
			line += "  FAILED: " + c.Error
		}
		if *withCMP {
			line += fmt.Sprintf("  cmp=%s", det.DetectOne(c))
		}
		fmt.Println(line)
		return *limit == 0 || n < *limit
	}

	var err error
	switch {
	case *server != "":
		cl := capstore.NewClient(*server)
		if *countOnly {
			n, err = cl.Count(q)
		} else {
			err = cl.Query(q, *limit, 0, print)
		}
	case *storeDir != "":
		var s *capstore.Store
		s, err = capstore.Open(*storeDir)
		if err == nil {
			if *countOnly {
				n, err = s.Count(q)
			} else {
				err = s.Query(q, print)
			}
			s.Close()
		}
	default:
		err = capturedb.ScanFile(*file, q, print)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "capq:", err)
		os.Exit(1)
	}
	if *countOnly {
		fmt.Println(n)
	} else if *limit > 0 && n >= *limit {
		fmt.Printf("… (stopped after %d matches; raise -n)\n", *limit)
	}
}

// printStats renders the store-shape snapshot: totals, then one line
// per shard with its pack/tail split and which open path it took.
func printStats(st capstore.Stats) {
	// Sum the pack split from per-shard state, not the lifetime
	// counters: a freshly opened -store has served no compactions this
	// process, but its packs are on disk.
	var packedRecs, packedBytes int64
	for _, sh := range st.Shards {
		packedRecs += sh.PackedRecords
		packedBytes += sh.PackedBytes
	}
	fmt.Printf("records %d  shards %d  packs %d  packed %d records / %d bytes  (compactions this process: %d)\n",
		st.Records, len(st.Shards), st.Packs, packedRecs, packedBytes, st.Compactions)
	fmt.Printf("indexes: %d domains, %d hosts, %d host postings; repairs: %d torn tails, %d torn packs, %d overlaps\n",
		st.IndexedDomains, st.IndexedHosts, st.HostPostings, st.TruncatedTails, st.TornPacks, st.OverlapRepairs)
	for _, sh := range st.Shards {
		fmt.Printf("%s  open=%-7s packs=%-3d packed=%d/%dB  tail=%d/%dB  records=%d  days=[%d,%d]\n",
			sh.Segment, sh.OpenPath, sh.Packs, sh.PackedRecords, sh.PackedBytes,
			sh.TailRecords, sh.TailBytes, sh.Records, sh.MinDay, sh.MaxDay)
	}
}

func parseDay(s string) simtime.Day {
	t, err := time.Parse("2006-01-02", s)
	if err != nil {
		fmt.Fprintf(os.Stderr, "capq: bad date %q: %v\n", s, err)
		os.Exit(2)
	}
	return simtime.FromTime(t)
}
