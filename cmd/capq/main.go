// Command capq queries a persisted capture database (the JSONL files
// written by `crawl -out`), mirroring Netograph's custom query API.
//
// Usage:
//
//	capq -file captures.jsonl [-domain D] [-from YYYY-MM-DD] [-to YYYY-MM-DD]
//	     [-vantage us-cloud|eu-cloud|eu-university] [-host H] [-failed]
//	     [-count] [-cmp] [-n N]
//
// Examples:
//
//	capq -file caps.jsonl -count -host cdn.cookielaw.org   # OneTrust captures
//	capq -file caps.jsonl -domain example.com -cmp         # detection timeline
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"repro/internal/capture"
	"repro/internal/capturedb"
	"repro/internal/detect"
	"repro/internal/simtime"
)

func main() {
	var (
		file      = flag.String("file", "", "capture JSONL file (required)")
		domain    = flag.String("domain", "", "filter by final registrable domain")
		fromStr   = flag.String("from", "", "filter: captures on or after this date")
		toStr     = flag.String("to", "", "filter: captures on or before this date")
		vantage   = flag.String("vantage", "", "filter by vantage name")
		host      = flag.String("host", "", "filter: captures that requested this host")
		failed    = flag.Bool("failed", false, "include failed captures")
		countOnly = flag.Bool("count", false, "print only the match count")
		withCMP   = flag.Bool("cmp", false, "annotate each capture with the detected CMP")
		limit     = flag.Int("n", 50, "maximum captures to print (0 = unlimited)")
	)
	flag.Parse()
	if *file == "" {
		flag.Usage()
		os.Exit(2)
	}

	q := capturedb.Query{
		Domain:        *domain,
		Vantage:       *vantage,
		RequestHost:   *host,
		IncludeFailed: *failed,
	}
	if *fromStr != "" {
		q.From = parseDay(*fromStr)
	}
	if *toStr != "" {
		q.To = parseDay(*toStr)
	}

	det := detect.Default()
	n := 0
	err := capturedb.ScanFile(*file, q, func(c *capture.Capture) bool {
		n++
		if *countOnly {
			return true
		}
		line := fmt.Sprintf("%s  %-28s %-13s status=%d requests=%d",
			c.Day, c.FinalDomain, c.Vantage.Name, c.Status, len(c.Requests))
		if c.Failed {
			line += "  FAILED: " + c.Error
		}
		if *withCMP {
			line += fmt.Sprintf("  cmp=%s", det.DetectOne(c))
		}
		fmt.Println(line)
		return *limit == 0 || n < *limit
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, "capq:", err)
		os.Exit(1)
	}
	if *countOnly {
		fmt.Println(n)
	} else if *limit > 0 && n >= *limit {
		fmt.Printf("… (stopped after %d matches; raise -n)\n", *limit)
	}
}

func parseDay(s string) simtime.Day {
	t, err := time.Parse("2006-01-02", s)
	if err != nil {
		fmt.Fprintf(os.Stderr, "capq: bad date %q: %v\n", s, err)
		os.Exit(2)
	}
	return simtime.FromTime(t)
}
