// Command replay re-runs the detection and presence pipeline over a
// persisted capture database (written by `crawl -out`), without
// touching the synthetic web: the workflow of an analyst who has the
// capture archive but not the crawling infrastructure — which is
// exactly the position the paper's authors were in relative to the
// Netograph platform they queried.
//
// Usage:
//
//	replay -file captures.jsonl [-at YYYY-MM-DD] [-top N]
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"
	"time"

	"repro/internal/analysis"
	"repro/internal/capture"
	"repro/internal/capturedb"
	"repro/internal/cmps"
	"repro/internal/detect"
	"repro/internal/interp"
	"repro/internal/simtime"
)

func main() {
	var (
		file  = flag.String("file", "", "capture JSONL file (required)")
		atStr = flag.String("at", "", "presence snapshot date (default: last captured day)")
		top   = flag.Int("top", 20, "print the N most-captured CMP domains")
	)
	flag.Parse()
	if *file == "" {
		flag.Usage()
		os.Exit(2)
	}

	obs := detect.NewObservations(detect.Default())
	var lastDay simtime.Day
	n := 0
	err := capturedb.ScanFile(*file, capturedb.Query{}, func(c *capture.Capture) bool {
		obs.Record(c)
		if c.Day > lastDay {
			lastDay = c.Day
		}
		n++
		return true
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, "replay:", err)
		os.Exit(1)
	}
	fmt.Printf("Replayed %d captures of %d domains (last day %s)\n", n, obs.NumDomains(), lastDay)

	at := lastDay
	if *atStr != "" {
		t, err := time.Parse("2006-01-02", *atStr)
		if err != nil {
			fmt.Fprintln(os.Stderr, "replay: bad -at date:", err)
			os.Exit(2)
		}
		at = simtime.FromTime(t)
	}

	db := analysis.BuildPresence(obs, interp.Options{})
	counts := map[cmps.ID]int{}
	type row struct {
		domain string
		cmp    cmps.ID
	}
	var rows []row
	for _, domain := range db.Domains() {
		if id := db.CMPAt(domain, at); id != cmps.None {
			counts[id]++
			rows = append(rows, row{domain, id})
		}
	}
	fmt.Printf("\nCMP presence at %s:\n", at)
	for _, c := range cmps.All() {
		fmt.Printf("  %-10s %d domains\n", c, counts[c])
	}

	sort.Slice(rows, func(i, j int) bool { return rows[i].domain < rows[j].domain })
	if len(rows) > *top {
		rows = rows[:*top]
	}
	fmt.Printf("\nFirst %d CMP domains:\n", len(rows))
	for _, r := range rows {
		fmt.Printf("  %-28s %s\n", r.domain, r.cmp)
	}
}
