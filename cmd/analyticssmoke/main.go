// Command analyticssmoke exercises the incremental-analytics path end
// to end with real processes: a capd ingest node, an analyzed follower
// with a short checkpoint interval, a SIGKILL mid-stream, a restart
// that must resume from the checkpoint (not refold the whole store),
// and a final byte-for-byte comparison of every served view against
// `analyze -store` batch mode over the same store. Any failure exits
// non-zero.
//
// Usage:
//
//	analyticssmoke [-capd bin/capd] [-analyzed bin/analyzed] [-analyze bin/analyze]
//
// `make analytics-smoke` builds the three binaries and runs this; it
// is part of `make check`.
package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net/http"
	"os"
	"os/exec"
	"path/filepath"
	"regexp"
	"strconv"
	"strings"
	"sync"
	"syscall"
	"time"

	"repro/internal/analytics"
	"repro/internal/capstore"
	"repro/internal/capture"
	"repro/internal/cmps"
	"repro/internal/obs"
	"repro/internal/resilience"
	"repro/internal/simtime"
)

const (
	shards = 4
	total  = 480
	batch  = 16
)

// mkCapture fabricates capture i: a few dozen domains cycling through
// the studied CMPs across the window, with CMP-less pages and failed
// captures mixed in so the folds' skip paths run too.
func mkCapture(i int) *capture.Capture {
	domain := fmt.Sprintf("site%d.example", i%29)
	c := &capture.Capture{
		SeedURL:     fmt.Sprintf("https://%s/p/%d", domain, i),
		FinalURL:    "https://" + domain + "/",
		FinalDomain: domain,
		Day:         simtime.Day((i * 7) % simtime.NumDays),
		Vantage:     capture.EUCloud,
		Config:      "default",
		Status:      200,
	}
	if i%3 == 0 {
		c.Vantage = capture.USCloud
	}
	switch i % 7 {
	case 0: // CMP-less page
	case 1:
		c.Failed = true
		c.Error = "timeout"
		c.Status = 0
	default:
		id := cmps.ID(1 + i%int(cmps.Count))
		c.Requests = []capture.Request{{Host: id.Hostname(), Path: "/cmp.js", Status: 200}}
	}
	return c
}

func main() {
	capdBin := flag.String("capd", filepath.Join("bin", "capd"), "path to the capd binary under test")
	analyzedBin := flag.String("analyzed", filepath.Join("bin", "analyzed"), "path to the analyzed binary under test")
	analyzeBin := flag.String("analyze", filepath.Join("bin", "analyze"), "path to the analyze binary (batch reference)")
	flag.Parse()

	dir, err := os.MkdirTemp("", "analyticssmoke-*")
	check(err)
	defer os.RemoveAll(dir)
	storeDir := filepath.Join(dir, "store")
	ckptDir := filepath.Join(dir, "checkpoints")

	caps := make([]*capture.Capture, total)
	for i := range caps {
		caps[i] = mkCapture(i)
	}

	// Boot the ingest node and the follower against it.
	capd := boot(*capdBin, "-store", storeDir, "-init-shards", strconv.Itoa(shards),
		"-ingest", "-metrics", "-addr", "127.0.0.1:0")
	defer capd.kill()
	capdURL := "http://" + capd.addr()
	cl := client(capdURL)

	analyzed := boot(*analyzedBin, "-server", capdURL, "-checkpoint", ckptDir,
		"-checkpoint-every", "64", "-poll", "10ms", "-metrics", "-addr", "127.0.0.1:0")
	defer analyzed.kill()
	anURL := "http://" + analyzed.addr()

	// Phase 1: stream ~40% and wait for the follower to catch up and
	// cut at least one durable checkpoint.
	phase1 := total * 2 / 5
	push(cl, caps[:phase1])
	waitHealth(anURL, func(h analytics.AnalyzedHealth) bool {
		return h.Cursor == int64(phase1) && h.CheckpointCursor > 0
	}, "cursor %d with a checkpoint", phase1)

	// Phase 2: SIGKILL analyzed mid-stream — no graceful checkpoint —
	// and keep ingesting while it is down.
	ckptBefore := health(anURL).CheckpointCursor
	check(analyzed.cmd.Process.Kill())
	analyzed.wait(10 * time.Second) //nolint:errcheck
	fmt.Printf("analyticssmoke: SIGKILLed analyzed at cursor %d (checkpoint %d)\n", phase1, ckptBefore)
	phase2 := total * 7 / 10
	push(cl, caps[phase1:phase2])

	// Phase 3: restart on the same checkpoint directory. The banner
	// must report a resume, and the process must fold only the suffix
	// past its checkpoint — never the whole store again.
	analyzed2 := boot(*analyzedBin, "-server", capdURL, "-checkpoint", ckptDir,
		"-checkpoint-every", "64", "-poll", "10ms", "-metrics", "-addr", "127.0.0.1:0")
	defer analyzed2.kill()
	anURL = "http://" + analyzed2.addr()
	m := resumeRe.FindStringSubmatch(analyzed2.output())
	if m == nil {
		fatalf("restarted analyzed did not resume from a checkpoint:\n%s", analyzed2.output())
	}
	resumed, err := strconv.ParseInt(m[1], 10, 64)
	check(err)
	if resumed <= 0 || resumed > int64(phase1) {
		fatalf("resumed cursor %d out of range (0, %d]", resumed, phase1)
	}

	// Phase 4: stream the rest and wait for full catch-up.
	push(cl, caps[phase2:])
	waitHealth(anURL, func(h analytics.AnalyzedHealth) bool {
		return h.Cursor == int64(total) && h.Lag == 0
	}, "cursor %d with zero lag", total)

	// The restarted process folded exactly the post-checkpoint suffix.
	folded := metricValue(anURL, "analytics_fold_records_total")
	if want := float64(total) - float64(resumed); folded != want {
		fatalf("restarted analyzed folded %.0f records, want %.0f (resumed at %d of %d — full replay?)",
			folded, want, resumed, total)
	}

	// Satellite check: capd's /healthz exposes the ingest commit
	// cursor, and it agrees with what analyzed applied.
	var capdHealth capstore.Health
	check(json.Unmarshal([]byte(get(capdURL+"/healthz")), &capdHealth))
	if capdHealth.Ingest == nil || capdHealth.Ingest.Accepted != int64(total) {
		fatalf("capd /healthz ingest = %+v, want %d accepted", capdHealth.Ingest, total)
	}

	// Pull every view (twice, so the snapshot cache also serves) and
	// validate the telemetry surface.
	views := make(map[string][]byte)
	for _, name := range analytics.ViewNames() {
		get(anURL + "/view/" + name)
		views[name] = bytes.TrimSuffix([]byte(get(anURL+"/view/"+name)), []byte("\n"))
		if lines := strings.Count(get(anURL+"/series/"+name), "\n"); lines == 0 {
			fatalf("/series/%s served no points", name)
		}
	}
	text := get(anURL + "/metrics")
	check(obs.ValidateExposition(strings.NewReader(text)))
	for _, want := range []string{"analytics_fold_records_total", "analytics_cursor",
		"analytics_lag_records", "analytics_checkpoints_total", "analytics_queries_total",
		"analytics_view_update_seconds"} {
		if !strings.Contains(text, want) {
			fatalf("analyzed /metrics missing %q", want)
		}
	}

	// Shut both down gracefully; batch mode needs the store unlocked.
	for _, p := range []*proc{analyzed2, capd} {
		check(p.cmd.Process.Signal(syscall.SIGTERM))
		if err := p.wait(10 * time.Second); err != nil {
			fatalf("shutdown: %v", err)
		}
	}

	// Headline: `analyze -store` over the very store capd wrote must
	// reproduce every served view byte for byte.
	out := filepath.Join(dir, "views.json")
	cmd := exec.Command(*analyzeBin, "-store", storeDir, "-views-out", out)
	cmd.Stderr = os.Stderr
	check(cmd.Run())
	var envelope struct {
		Cursor int64                      `json:"cursor"`
		Views  map[string]json.RawMessage `json:"views"`
	}
	b, err := os.ReadFile(out)
	check(err)
	check(json.Unmarshal(b, &envelope))
	if envelope.Cursor != int64(total) {
		fatalf("batch cursor %d, want %d", envelope.Cursor, total)
	}
	for name, served := range views {
		if !bytes.Equal(served, envelope.Views[name]) {
			fatalf("view %s: analyzed served different bytes than batch analyze\nserved: %.200s\nbatch:  %.200s",
				name, served, envelope.Views[name])
		}
	}
	fmt.Printf("analyticssmoke: ok — %d records, %d views byte-identical to batch after SIGKILL + checkpoint resume at cursor %d\n",
		total, len(views), resumed)
}

var resumeRe = regexp.MustCompile(`resumed from checkpoint at cursor (\d+)`)

func client(url string) *capstore.Client {
	cl := capstore.NewClient(url)
	cl.Retry = resilience.RetryPolicy{MaxAttempts: 8, BaseDelay: 10 * time.Millisecond,
		MaxDelay: 500 * time.Millisecond, Multiplier: 2}
	return cl
}

// push streams caps in order as fixed-size batches.
func push(cl *capstore.Client, caps []*capture.Capture) {
	for at := 0; at < len(caps); at += batch {
		end := at + batch
		if end > len(caps) {
			end = len(caps)
		}
		if _, err := cl.RecordBatch(caps[at:end]); err != nil {
			fatalf("ingest batch at %d: %v", at, err)
		}
	}
}

func health(url string) analytics.AnalyzedHealth {
	var h analytics.AnalyzedHealth
	check(json.Unmarshal([]byte(get(url+"/healthz")), &h))
	return h
}

func waitHealth(url string, ok func(analytics.AnalyzedHealth) bool, format string, args ...any) {
	deadline := time.Now().Add(20 * time.Second)
	for {
		h := health(url)
		if ok(h) {
			return
		}
		if time.Now().After(deadline) {
			fatalf("timed out waiting for "+format+" (health %+v)", append(args, h)...)
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// metricValue extracts one untyped sample from the text exposition.
func metricValue(url, name string) float64 {
	for _, line := range strings.Split(get(url+"/metrics"), "\n") {
		if strings.HasPrefix(line, name+" ") {
			v, err := strconv.ParseFloat(strings.TrimSpace(strings.TrimPrefix(line, name+" ")), 64)
			check(err)
			return v
		}
	}
	fatalf("metric %s not found in exposition", name)
	return 0
}

// proc is a child process whose stdout is captured (and echoed) so the
// listen-address banner can be parsed.
type proc struct {
	cmd    *exec.Cmd
	mu     sync.Mutex
	buf    bytes.Buffer
	doneCh chan error
}

var addrRe = regexp.MustCompile(`on (127\.0\.0\.1:\d+)`)

// procs tracks every child so fatalf can reap them.
var procs []*proc

func start(bin string, args ...string) *proc {
	cmd := exec.Command(bin, args...)
	cmd.Stderr = os.Stderr
	out, err := cmd.StdoutPipe()
	check(err)
	check(cmd.Start())
	p := &proc{cmd: cmd, doneCh: make(chan error, 1)}
	procs = append(procs, p)
	go func() {
		buf := make([]byte, 4096)
		for {
			n, err := out.Read(buf)
			if n > 0 {
				p.mu.Lock()
				p.buf.Write(buf[:n])
				p.mu.Unlock()
				os.Stdout.Write(buf[:n]) //nolint:errcheck
			}
			if err != nil {
				break
			}
		}
		p.doneCh <- cmd.Wait()
	}()
	return p
}

// boot is start plus waiting for the "… on 127.0.0.1:PORT" banner.
func boot(bin string, args ...string) *proc {
	p := start(bin, args...)
	deadline := time.Now().Add(10 * time.Second)
	for {
		if m := addrRe.FindStringSubmatch(p.output()); m != nil {
			return p
		}
		if time.Now().After(deadline) || p.exited() {
			p.kill()
			fatalf("%s did not report a listen address:\n%s", bin, p.output())
		}
		time.Sleep(10 * time.Millisecond)
	}
}

func (p *proc) addr() string {
	return addrRe.FindStringSubmatch(p.output())[1]
}

func (p *proc) output() string {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.buf.String()
}

func (p *proc) exited() bool {
	select {
	case err := <-p.doneCh:
		p.doneCh <- err
		return true
	default:
		return false
	}
}

func (p *proc) wait(d time.Duration) error {
	select {
	case err := <-p.doneCh:
		p.doneCh <- err
		return err
	case <-time.After(d):
		p.kill()
		return fmt.Errorf("still running after %v", d)
	}
}

func (p *proc) kill() {
	if p.cmd.Process != nil && !p.exited() {
		p.cmd.Process.Kill() //nolint:errcheck
		<-p.doneCh
		p.doneCh <- nil
	}
}

func get(url string) string {
	resp, err := http.Get(url)
	check(err)
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	check(err)
	if resp.StatusCode != http.StatusOK {
		fatalf("GET %s: %s\n%s", url, resp.Status, body)
	}
	return string(body)
}

func check(err error) {
	if err != nil {
		fatalf("%v", err)
	}
}

func fatalf(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "analyticssmoke: "+format+"\n", args...)
	for _, p := range procs {
		p.kill()
	}
	os.Exit(1)
}
