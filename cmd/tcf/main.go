// Command tcf inspects and converts IAB TCF consent strings — the
// practical tool for poking at the euconsent cookies this repository's
// dialogs produce (and real-world v1 strings).
//
// Usage:
//
//	tcf -decode <consent-string>       # v1 or v2, auto-detected
//	tcf -decode <v1-string> -upgrade   # also print the v2 equivalent
//	tcf -decode <string> -decide V:P   # answer "may vendor V process for
//	                                   # purpose P?" via the decision kernel
//	tcf -demo                          # build, encode and decode an example
//	tcf -demo -decide V:P              # …and decide against the example string
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"
	"strconv"
	"strings"
	"time"

	"repro/internal/decision"
	"repro/internal/tcf"
)

func main() {
	var (
		decode  = flag.String("decode", "", "consent string to decode")
		upgrade = flag.Bool("upgrade", false, "with -decode of a v1 string: print the v2 upgrade")
		decide  = flag.String("decide", "", "with -decode: answer a vendor:purpose question (e.g. -decide 32:1)")
		demo    = flag.Bool("demo", false, "encode and decode an example string")
	)
	flag.Parse()

	switch {
	case *demo:
		runDemo(*decide)
	case *decode != "" && *decide != "":
		runDecide(*decode, *decide)
	case *decode != "":
		if c, err := tcf.Decode(*decode); err == nil {
			printV1(c)
			if *upgrade {
				v2 := tcf.UpgradeToV2(c)
				s, err := v2.EncodeV2()
				if err != nil {
					fatal(err)
				}
				fmt.Printf("\nv2 upgrade: %s\n", s)
				printV2(v2)
			}
			return
		}
		c2, err := tcf.DecodeV2(*decode)
		if err != nil {
			fatal(fmt.Errorf("neither a v1 nor a v2 consent string: %w", err))
		}
		printV2(c2)
	default:
		flag.Usage()
		os.Exit(2)
	}
}

// runDecide answers one vendor:purpose question through the same
// compiled kernel consentd serves from (internal/decision), so the CLI
// answer is bit-for-bit the production answer. No GVL table is applied:
// the answer reflects the string alone.
func runDecide(raw, question string) {
	vs, ps, ok := strings.Cut(question, ":")
	if !ok {
		fatal(fmt.Errorf("-decide wants vendor:purpose, e.g. -decide 32:1"))
	}
	vendor, err1 := strconv.Atoi(strings.TrimSpace(vs))
	purpose, err2 := strconv.Atoi(strings.TrimSpace(ps))
	if err1 != nil || err2 != nil {
		fatal(fmt.Errorf("-decide wants integer vendor:purpose, got %q", question))
	}
	c, err := decision.Compile(raw)
	if err != nil {
		fatal(err)
	}
	basis := decision.Decide(c, nil, vendor, purpose)
	fmt.Printf("vendor %d, purpose %d (TCF v%d string, vendor list v%d):\n",
		vendor, purpose, c.WireVersion, c.VendorListVersion)
	if basis.Allowed() {
		fmt.Printf("  ALLOWED under %s\n", basis)
	} else {
		fmt.Printf("  DENIED\n")
	}
	fmt.Printf("  purpose consent: %v, purpose LI: %v, vendor consent: %v, vendor LI: %v\n",
		c.PurposeConsent(purpose), c.PurposeLI(purpose),
		c.VendorConsent(vendor), c.VendorLI(vendor))
	if !basis.Allowed() {
		os.Exit(3)
	}
}

func runDemo(decide string) {
	c := tcf.New(time.Now().UTC())
	c.CMPID = 10
	c.ConsentLanguage = "EN"
	c.VendorListVersion = 183
	c.SetAllPurposes(true)
	c.SetAllVendors(650, true)
	c.VendorConsent[13] = false
	s, err := c.Encode()
	if err != nil {
		fatal(err)
	}
	fmt.Printf("example euconsent cookie: %s\n\n", s)
	d, err := tcf.Decode(s)
	if err != nil {
		fatal(err)
	}
	printV1(d)
	if decide != "" {
		fmt.Println()
		runDecide(s, decide)
	}
}

func printV1(c *tcf.ConsentString) {
	fmt.Println("TCF v1.1 consent string")
	fmt.Printf("  created/updated:   %s / %s\n",
		c.Created.Format(time.RFC3339), c.LastUpdated.Format(time.RFC3339))
	fmt.Printf("  CMP:               id %d, version %d, screen %d, language %s\n",
		c.CMPID, c.CMPVersion, c.ConsentScreen, c.ConsentLanguage)
	fmt.Printf("  vendor list:       v%d, max vendor id %d\n", c.VendorListVersion, c.MaxVendorID)
	fmt.Printf("  purposes allowed:  %v\n", sortedKeys(c.PurposesAllowed))
	granted := c.ConsentedVendors()
	fmt.Printf("  vendors granted:   %d of %d", len(granted), c.MaxVendorID)
	if n := c.MaxVendorID - len(granted); n > 0 && n <= 10 {
		var denied []int
		for v := 1; v <= c.MaxVendorID; v++ {
			if !c.VendorConsent[v] {
				denied = append(denied, v)
			}
		}
		fmt.Printf(" (denied: %v)", denied)
	}
	fmt.Println()
}

func printV2(c *tcf.V2ConsentString) {
	fmt.Println("TCF v2.0 TC string")
	fmt.Printf("  created/updated:   %s / %s\n",
		c.Created.Format(time.RFC3339), c.LastUpdated.Format(time.RFC3339))
	fmt.Printf("  CMP:               id %d, version %d, language %s, publisher %s\n",
		c.CMPID, c.CMPVersion, c.ConsentLanguage, c.PublisherCC)
	fmt.Printf("  vendor list:       v%d (policy v%d)\n", c.VendorListVersion, c.TCFPolicyVersion)
	fmt.Printf("  purposes consent:  %v\n", sortedKeys(c.PurposesConsent))
	fmt.Printf("  purposes LI:       %v\n", sortedKeys(c.PurposesLITransparency))
	fmt.Printf("  special features:  %v\n", sortedKeys(c.SpecialFeatureOptIns))
	fmt.Printf("  vendors consent:   %d of %d\n", countTrue(c.VendorConsent), c.MaxVendorID)
	fmt.Printf("  vendors LI:        %d of %d\n", countTrue(c.VendorLegInt), c.MaxVendorLIID)
	if len(c.PubRestrictions) > 0 {
		fmt.Printf("  publisher restrictions: %d\n", len(c.PubRestrictions))
	}
	if len(c.DisclosedVendors) > 0 {
		fmt.Printf("  disclosed vendors: %d\n", countTrue(c.DisclosedVendors))
	}
}

func sortedKeys(m map[int]bool) []int {
	var out []int
	for k, ok := range m {
		if ok {
			out = append(out, k)
		}
	}
	sort.Ints(out)
	return out
}

func countTrue(m map[int]bool) int {
	n := 0
	for _, ok := range m {
		if ok {
			n++
		}
	}
	return n
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "tcf:", err)
	os.Exit(1)
}
