// Command gvlgen generates the synthetic Global Vendor List history
// and either writes the versioned vendor-list.json files (the format
// served at vendorlist.consensu.org/vXXX/vendor-list.json) to a
// directory, or prints the Figure 7/8 longitudinal series.
//
// Usage:
//
//	gvlgen [-versions N] [-seed N] [-out DIR]
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"

	"repro/internal/gvl"
	"repro/internal/report"
)

func main() {
	var (
		versions = flag.Int("versions", 215, "number of GVL versions to publish")
		seed     = flag.Uint64("seed", 1, "root seed")
		outDir   = flag.String("out", "", "write vXXX/vendor-list.json files to this directory")
	)
	flag.Parse()

	cfg := gvl.DefaultHistoryConfig()
	cfg.Seed = *seed
	cfg.Versions = *versions
	h := gvl.GenerateHistory(cfg)

	if *outDir != "" {
		for i := range h.Versions {
			l := &h.Versions[i]
			dir := filepath.Join(*outDir, fmt.Sprintf("v%d", l.VendorListVersion))
			if err := os.MkdirAll(dir, 0o755); err != nil {
				fatal(err)
			}
			data, err := json.MarshalIndent(l, "", "  ")
			if err != nil {
				fatal(err)
			}
			if err := os.WriteFile(filepath.Join(dir, "vendor-list.json"), data, 0o644); err != nil {
				fatal(err)
			}
		}
		fmt.Printf("wrote %d vendor-list.json versions to %s\n", len(h.Versions), *outDir)
		return
	}

	fmt.Println(report.GVLSeries(h.PurposeSeries()))
	fmt.Println(report.LegalBasisFlows(h))
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "gvlgen:", err)
	os.Exit(1)
}
