// Command analyze runs the full reproduction pipeline and prints every
// table and figure of the paper's evaluation: the social-media crawl,
// the toplist campaigns (Tables 1, A.3), the longitudinal analyses
// (Figures 4–6), the Global Vendor List series (Figures 7–8), and the
// consent-dialog experiments (Figures 9–10).
//
// Usage:
//
//	analyze [-quick] [-seed N] [-domains N] [-shares N] [-toplist N] [-workers N]
//	        [-telemetry]
//	analyze -store DIR [-views-out FILE]
//
// -quick runs at test scale (seconds); the default scale is ≈1/100 of
// the paper's capture volume and takes a few minutes. -telemetry meters
// the detector, the aggregation sink and the campaign-memoization cache
// and dumps the Prometheus text exposition after the report.
//
// -store switches to batch-over-store mode: instead of simulating a
// world, analyze folds an existing capture store through the same
// incremental engine cmd/analyzed runs live and emits every
// materialized view as one JSON envelope ({"cursor":N,"views":{...}}).
// Each view's bytes are identical to what analyzed serves on
// /view/<name> at the same commit cursor — the byte-for-byte
// batch/incremental invariant the analytics tests enforce.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"

	"repro/internal/analysis"
	"repro/internal/analytics"
	"repro/internal/capstore"
	"repro/internal/cmps"
	"repro/internal/consent"
	"repro/internal/core"
	"repro/internal/detect"
	"repro/internal/obs"
	"repro/internal/report"
	"repro/internal/simtime"
)

func main() {
	var (
		quick     = flag.Bool("quick", false, "run at reduced test scale")
		seed      = flag.Uint64("seed", 1, "root seed (bit-reproducible results per seed)")
		domains   = flag.Int("domains", 0, "override universe size")
		shares    = flag.Int("shares", 0, "override social-feed shares per day")
		topN      = flag.Int("toplist", 0, "override toplist size for rank analyses")
		workers   = flag.Int("workers", runtime.GOMAXPROCS(0), "campaign/crawl worker count")
		verbose   = flag.Bool("v", false, "print crawl progress")
		telemetry = flag.Bool("telemetry", false, "meter the run and dump the Prometheus exposition after the report")
		storeDir  = flag.String("store", "", "batch mode: fold this capture store through the analytics engine and emit the views as JSON")
		viewsOut  = flag.String("views-out", "", "with -store, write the views envelope here instead of stdout")
	)
	flag.Parse()

	if *storeDir != "" {
		if err := runStoreBatch(*storeDir, *viewsOut); err != nil {
			fmt.Fprintln(os.Stderr, "analyze:", err)
			os.Exit(1)
		}
		return
	}

	cfg := core.DefaultConfig()
	if *quick {
		cfg = core.TestConfig()
	}
	cfg.Seed = *seed
	cfg.Workers = *workers
	if *domains > 0 {
		cfg.Domains = *domains
	}
	if *shares > 0 {
		cfg.SharesPerDay = *shares
	}
	if *topN > 0 {
		cfg.ToplistSize = *topN
	}

	fmt.Printf("Building study: %d domains, %d shares/day, toplist %d, seed %d (Tranco-style list %s)\n",
		cfg.Domains, cfg.SharesPerDay, cfg.ToplistSize, cfg.Seed, "")
	s := core.NewStudy(cfg)
	fmt.Printf("Toplist ID: %s (created %s, as the paper's list K8JW of 2020-01-30)\n",
		s.Toplist.ID, s.Toplist.Created)

	// A nil registry keeps every recorder in its no-op form.
	var reg *obs.Registry
	if *telemetry {
		reg = obs.NewRegistry()
		s.Detector.SetMetrics(detect.NewMetrics(reg))
		s.Observations.RegisterMetrics(reg)
		s.RegisterMetrics(reg)
	}

	fmt.Println("Crawling the social-media feed, March 2018 – September 2020 …")
	var lastPct int
	s.RunSocialCrawl(func(day simtime.Day, captures int64) {
		if !*verbose {
			return
		}
		pct := int(day) * 100 / simtime.NumDays
		if pct != lastPct && pct%5 == 0 {
			fmt.Fprintf(os.Stderr, "  %3d%%  %s  %d captures\n", pct, day, captures)
			lastPct = pct
		}
	})
	fmt.Printf("Captured %d pages from %d domains (multi-CMP overcount: %.4f%%)\n\n",
		s.Observations.Total, s.Observations.NumDomains(),
		100*float64(s.Observations.MultiCMP)/float64(s.Observations.Total))

	fmt.Println(report.PriorWork())

	// Tables 1 and A.3.
	fmt.Println(report.VantageTable(
		"Table 1 — CMP occurrence in the toplist by vantage point (May 2020)",
		s.VantageTable(simtime.Table1Snapshot, cfg.ToplistSize)))
	fmt.Println(report.VantageTable(
		"Table A.3 — same measurement in January 2020",
		s.VantageTable(simtime.TableA3Snapshot, cfg.ToplistSize)))

	// Figure 5 and the historic variants.
	sizes := []int{100, 200, 500, 1_000, 2_000, 5_000, 10_000, 20_000, 50_000, 100_000}
	ms, err := s.MarketShareByRank(simtime.Table1Snapshot, sizes)
	check(err)
	fmt.Println(report.MarketShare("Figure 5 / A.6 — cumulative CMP market share by toplist size (May 2020)", ms))
	for _, h := range []struct {
		title string
		day   simtime.Day
	}{
		{"Figure A.4 — market share by toplist size (January 2019)", simtime.Date(2019, 1, 15)},
		{"Figure A.5 — market share by toplist size (January 2020)", simtime.Date(2020, 1, 15)},
	} {
		pts, err := s.MarketShareByRank(h.day, sizes)
		check(err)
		fmt.Println(report.MarketShare(h.title, pts))
	}

	euuk := analysis.EUUKShare(s.Presence, simtime.Table1Snapshot)
	fmt.Printf("EU+UK TLD share (Section 4.1): Quantcast %.1f%% (paper 38.3%%), OneTrust %.1f%% (paper 16.3%%)\n\n",
		100*euuk[cmps.Quantcast], 100*euuk[cmps.OneTrust])

	// Figure 6.
	pts, err := s.AdoptionOverTime(cfg.ToplistSize, 7)
	check(err)
	fmt.Println(report.Adoption(
		fmt.Sprintf("Figure 6 — websites in the toplist top %d embedding a CMP", cfg.ToplistSize),
		pts, cfg.ToplistSize))

	// Spike detection: laws coming into effect drive adoption; fines
	// and guidance do not (Figure 6's qualitative claim, automated).
	spikes := analysis.DetectAdoptionSpikes(pts, 3)
	fmt.Println("Detected adoption spikes (growth ≥ 3× median monthly growth):")
	for _, sp := range spikes {
		fmt.Printf("  %s  +%d sites (%.1f× median)\n", sp.Month.Time().Format("2006-01"), sp.Growth, sp.Ratio)
	}
	for _, ev := range simtime.Events() {
		near := analysis.SpikeNear(spikes, ev.Day, 62)
		fmt.Printf("  event %-38s %-14s spike nearby: %v\n", ev.Name, "("+ev.Kind.String()+")", near)
	}
	fmt.Println()

	// Figure 4.
	flows, err := s.SwitchingFlows()
	check(err)
	fmt.Println(report.Flows(flows))
	fmt.Println(report.Retention(analysis.ComputeRetention(s.Presence)))

	// Section 3.5 missing data.
	top := s.Toplist.Top(cfg.ToplistSize)
	md := analysis.ComputeMissingData(s.World, top, s.Observations.Observed)
	fmt.Println(report.MissingData(md))

	// Item I3 customization.
	campaign := s.RunToplistCampaign(simtime.Table1Snapshot, cfg.ToplistSize)
	fmt.Println(report.Customization(s.Customization(campaign)))

	// Tracking context and subsite coverage (Sections 3.5 and 6).
	fmt.Println(report.Tracking(analysis.ComputeTracking(core.EUUniversityStore(campaign))))
	subsiteSample := top
	if len(subsiteSample) > 2_000 {
		subsiteSample = subsiteSample[:2_000]
	}
	fmt.Println(report.Subsites(analysis.CompareSubsiteCoverage(
		s.World, subsiteSample, simtime.Table1Snapshot, 4)))

	// Vantage coverage over time (continuous Tables 1/A.3).
	covTop := cfg.ToplistSize
	if covTop > 1_000 {
		covTop = 1_000
	}
	fmt.Println(report.CoverageSeries(s.CoverageSeries(
		simtime.Date(2019, 1, 1), simtime.Day(simtime.NumDays-1), covTop)))

	// Compliance audit (Matte-et-al classes; Section 6 related work).
	survey, err := s.ComplianceSurvey(simtime.Table1Snapshot, cfg.ToplistSize)
	check(err)
	fmt.Println(report.Compliance(survey))

	// Prompt-change history (Figure 1 annotation).
	fmt.Println(report.PromptChanges(s.PromptChanges()))

	// Figures 7 and 8.
	fmt.Println(report.GVLSeries(s.GVL.PurposeSeries()))
	fmt.Println(report.LegalBasisFlows(s.GVL))

	// Figures 9 and 10.
	fmt.Println(report.TrustArc(s.TrustArcOptOut()))
	exp, err := s.QuantcastExperiment()
	check(err)
	fmt.Println(report.Quantcast(exp))

	// Synthesis: the expected time cost of rejecting everywhere, from
	// this run's own measurements.
	optOutSec := consent.MedianTotalMS(s.TrustArcOptOut()) / 1000
	// Cost for a user browsing toplist-popular sites: use the top-10k
	// adoption point (or the largest available below it).
	adoptionAt := ms[0]
	for _, pt := range ms {
		if pt.Size <= cfg.ToplistSize {
			adoptionAt = pt
		}
	}
	fmt.Println(report.TimeCost(analysis.TimeCostFromMeasurements(
		adoptionAt, s.Customization(campaign),
		exp.DirectReject.MedianAcceptSec, exp.DirectReject.MedianRejectSec,
		exp.MoreOptions.MedianRejectSec, optOutSec)))

	hits, misses := s.CampaignCacheStats()
	fmt.Printf("Campaign cache: %d hits, %d misses (%d workers)\n", hits, misses, *workers)

	if reg != nil {
		fmt.Printf("\nTelemetry (Prometheus exposition):\n")
		check(reg.WritePrometheus(os.Stdout))
	}
}

func check(err error) {
	if err != nil {
		fmt.Fprintln(os.Stderr, "analyze:", err)
		os.Exit(1)
	}
}

// runStoreBatch is the -store path: fold the whole store through the
// incremental engine and emit one JSON envelope with every view at
// the store's final commit cursor.
func runStoreBatch(dir, out string) error {
	store, err := capstore.Open(dir)
	if err != nil {
		return err
	}
	defer store.Close()
	eng, err := analytics.BatchEngine(store, analytics.Config{})
	if err != nil {
		return err
	}
	snaps, err := eng.SnapshotAll()
	if err != nil {
		return err
	}
	envelope := struct {
		Cursor int64                      `json:"cursor"`
		Views  map[string]json.RawMessage `json:"views"`
	}{Cursor: eng.Cursor(), Views: make(map[string]json.RawMessage, len(snaps))}
	for name, b := range snaps {
		envelope.Views[name] = b
	}
	b, err := json.Marshal(envelope)
	if err != nil {
		return err
	}
	b = append(b, '\n')
	fmt.Fprintf(os.Stderr, "analyze: folded %d records into %d views from %s\n",
		eng.Cursor(), len(snaps), dir)
	if out == "" {
		_, err = os.Stdout.Write(b)
		return err
	}
	return os.WriteFile(out, b, 0o644)
}
