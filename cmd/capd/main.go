// Command capd serves a sharded capture store (written by
// `crawl -store`) over HTTP — the reproduction of the paper's central
// capture database with its custom query API (Section 3.2).
//
// Usage:
//
//	capd -store capdir [-addr 127.0.0.1:8650] [-max-inflight N]
//	     [-request-timeout 30s] [-ingest [-init-shards N]]
//
// Endpoints:
//
//	GET /query?domain=D&host=H&vantage=V&from=D1&to=D2&failed=1&limit=N&offset=M
//	    streaming NDJSON, one capture per line (capturedb wire format)
//	GET /count?…   match count as {"count": N}
//	GET /stats     per-shard record counts, index sizes, and counters
//	               for queries served and rows scanned vs. skipped
//	GET /healthz   store and admission-queue state (never load-shed)
//
// With -ingest, the store also accepts remote writes — the fleet's
// storage backend (see internal/fleet and DESIGN.md §9):
//
//	POST /ingest           NDJSON batch in the capturedb wire format,
//	                       applied in body order with per-share
//	                       idempotency (re-delivery is safe)
//	POST /ingest?at=S&n=N  ordered mode: the batch covers work items
//	                       [S, S+N) of the coordinator's total order
//	                       and commits exactly in that order
//
// -init-shards N creates the store directory if it does not exist yet,
// so a fleet can be booted against an empty capd.
//
// With -metrics, the unified telemetry surface is mounted as well —
// outside the load-shedding limiter, so it stays scrapeable while
// queries are being shed:
//
//	GET /metrics       Prometheus text exposition (store counters,
//	                   per-query histograms, limiter admission state)
//	GET /metrics.json  the same registry as JSON
//	GET /debug/trace   per-query spans as NDJSON (?name= filters)
//	GET /debug/pprof/  the standard net/http/pprof surface
//
// and /healthz gains a telemetry summary (uptime, slowest query
// buckets).
//
// With -compact, a background compactor folds each shard's append-only
// tail into immutable pack files with persistent footer indexes once
// the tail crosses -compact-tail-bytes (or outlives -compact-age), so
// a later open loads indexes instead of re-scanning segments;
// -compact-pace bounds the compactor's write rate. POST /compact
// (mounted outside the limiter, like /metrics) forces a full
// compaction pass on demand regardless of -compact.
//
// The server degrades gracefully instead of falling over: at most
// -max-inflight requests are served concurrently and the rest are shed
// with 429 + Retry-After, each admitted request is bounded by
// -request-timeout, request bodies are capped, and slow-loris clients
// are cut by read-header/idle timeouts.
//
// Query it with `capq -server http://127.0.0.1:8650 …` or curl:
//
//	curl 'http://127.0.0.1:8650/count?host=cdn.cookielaw.org'
//	curl 'http://127.0.0.1:8650/query?domain=example.com&limit=5'
//	curl 'http://127.0.0.1:8650/healthz'
//	curl 'http://127.0.0.1:8650/metrics'        # with -metrics
package main

import (
	"context"
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"repro/internal/capstore"
	"repro/internal/obs"
)

func main() {
	var (
		dir        = flag.String("store", "", "capture store directory (required; see crawl -store)")
		addr       = flag.String("addr", "127.0.0.1:8650", "listen address")
		maxInFly   = flag.Int("max-inflight", 64, "concurrent requests served before shedding with 429")
		reqTimeout = flag.Duration("request-timeout", 30*time.Second, "per-request deadline (0 disables)")
		metrics    = flag.Bool("metrics", false, "expose /metrics, /debug/trace and /debug/pprof (outside the limiter)")
		ingest     = flag.Bool("ingest", false, "accept remote writes on POST /ingest (fleet storage backend)")
		initShards = flag.Int("init-shards", 0, "create the store with N shards if -store does not exist yet (requires -ingest)")
		maxPending = flag.Int("ingest-pending", 64, "ordered-ingest reorder batches buffered before shedding with 503")

		compact      = flag.Bool("compact", false, "run the background segment compactor (pack engine)")
		compactBytes = flag.Int64("compact-tail-bytes", capstore.DefaultMinTailBytes, "compact a shard once its tail reaches this many bytes")
		compactAge   = flag.Duration("compact-age", 0, "also compact a non-empty tail older than this (0 disables the age trigger)")
		compactEvery = flag.Duration("compact-interval", time.Second, "how often the compactor checks its triggers")
		compactPace  = flag.Int64("compact-pace", 0, "bound compaction writes to this many bytes/sec (0 = unpaced)")
	)
	flag.Parse()
	if *dir == "" {
		flag.Usage()
		os.Exit(2)
	}
	if *initShards > 0 && !*ingest {
		fmt.Fprintln(os.Stderr, "capd: -init-shards only makes sense with -ingest")
		os.Exit(2)
	}

	var store *capstore.Store
	var err error
	if *initShards > 0 {
		if _, statErr := os.Stat(*dir); os.IsNotExist(statErr) {
			store, err = capstore.Create(*dir, *initShards)
		} else {
			store, err = capstore.Open(*dir)
		}
	} else {
		store, err = capstore.Open(*dir)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "capd:", err)
		os.Exit(1)
	}
	defer store.Close()
	st := store.Stats()
	if st.TruncatedTails > 0 {
		fmt.Fprintf(os.Stderr, "capd: repaired %d crash-truncated segment tail(s)\n", st.TruncatedTails)
	}
	if st.TornPacks > 0 {
		fmt.Fprintf(os.Stderr, "capd: quarantined %d torn pack(s)\n", st.TornPacks)
	}
	if st.OverlapRepairs > 0 {
		fmt.Fprintf(os.Stderr, "capd: completed %d interrupted compaction(s)\n", st.OverlapRepairs)
	}
	if *compact {
		comp := store.StartCompactor(capstore.CompactConfig{
			MinTailBytes:    *compactBytes,
			MaxTailAge:      *compactAge,
			Interval:        *compactEvery,
			PaceBytesPerSec: *compactPace,
		})
		defer comp.Close()
		fmt.Printf("capd: compactor on (tail ≥ %d bytes, age %v, every %v, pace %d B/s)\n",
			*compactBytes, *compactAge, *compactEvery, *compactPace)
	}

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		fmt.Fprintln(os.Stderr, "capd:", err)
		os.Exit(1)
	}
	fmt.Printf("capd: serving %d captures (%d segments, %d domains, %d request hosts indexed) on %s\n",
		st.Records, len(st.Shards), st.IndexedDomains, st.IndexedHosts, ln.Addr())
	fmt.Printf("capd: endpoints /query /count /stats /healthz; ≤%d in flight, %v/request; Ctrl-C shuts down gracefully.\n",
		*maxInFly, *reqTimeout)

	timeout := *reqTimeout
	if timeout <= 0 {
		timeout = -1 // ServeConfig: negative disables, zero means default
	}
	serveCfg := capstore.ServeConfig{
		MaxInFlight:    *maxInFly,
		RequestTimeout: timeout,
	}
	var reg *obs.Registry
	var tracer *obs.Tracer
	if *metrics {
		reg = obs.NewRegistry()
		// Service is the role, never a per-process identity, so span
		// exports stay byte-identical across node counts.
		tracer = obs.NewTracer(obs.TracerConfig{Service: "capd"})
	}
	var ingester *capstore.Ingester
	if *ingest {
		ingester, err = capstore.NewIngester(store, capstore.IngestConfig{
			MaxPendingBatches: *maxPending,
			Registry:          reg,
			Tracer:            tracer,
		})
		if err != nil {
			fmt.Fprintln(os.Stderr, "capd:", err)
			os.Exit(1)
		}
		// /healthz reports the ingest commit cursor so operators can
		// compare it against analyzed view lag in one probe.
		serveCfg.Ingester = ingester
	}
	// Admin and debug surfaces mount on an outer mux, beside /healthz
	// and outside the limiter: scrapes, profiles, and compaction
	// triggers must work exactly when the query path is saturated.
	outer := http.NewServeMux()
	if *metrics {
		tracer.RegisterMetrics(reg)
		store.RegisterMetrics(reg)
		store.SetTracer(tracer)
		serveCfg.Registry = reg
		serveCfg.Metrics = store.Metrics()
		debug := obs.Handler(reg, tracer)
		outer.Handle("/metrics", debug)
		outer.Handle("/metrics.json", debug)
		outer.Handle("/debug/", debug)
		fmt.Printf("capd: telemetry on /metrics, /metrics.json, /debug/trace, /debug/pprof/\n")
	}
	if ingester != nil {
		// Ingest mounts outside the limiter and its 1 MiB body cap:
		// the query path's shedding must not starve the fleet's
		// storage backend, and batches are legitimately large. The
		// ingester enforces its own body bound and reorder-buffer
		// shedding instead.
		outer.Handle("/ingest", ingester)
	}
	outer.HandleFunc("/compact", func(w http.ResponseWriter, r *http.Request) {
		if r.Method != http.MethodPost {
			w.Header().Set("Allow", http.MethodPost)
			http.Error(w, "POST only", http.StatusMethodNotAllowed)
			return
		}
		packed, err := store.CompactAll()
		if err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
			return
		}
		cst := store.Stats()
		w.Header().Set("Content-Type", "application/json")
		fmt.Fprintf(w, "{\"packed_records\":%d,\"packs\":%d,\"compactions\":%d}\n",
			packed, cst.Packs, cst.Compactions)
	})
	outer.Handle("/", capstore.NewResilientHandler(store, serveCfg))
	var handler http.Handler = outer
	if ingester != nil {
		fmt.Printf("capd: remote ingest on POST /ingest (≤%d reorder batches buffered)\n", *maxPending)
	}
	srv := &http.Server{
		Handler: handler,
		// Slow-loris protection: a client must finish its headers
		// promptly and keep-alive connections cannot idle forever.
		// WriteTimeout stays unset: /query legitimately streams for as
		// long as the per-request context allows.
		ReadHeaderTimeout: 5 * time.Second,
		IdleTimeout:       60 * time.Second,
	}
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	errc := make(chan error, 1)
	go func() { errc <- srv.Serve(ln) }()
	select {
	case err := <-errc:
		fmt.Fprintln(os.Stderr, "capd:", err)
		os.Exit(1)
	case <-ctx.Done():
		shutdownCtx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		if err := srv.Shutdown(shutdownCtx); err != nil {
			fmt.Fprintln(os.Stderr, "capd: shutdown:", err)
			os.Exit(1)
		}
		final := store.Stats()
		fmt.Printf("capd: drained and stopped (%d queries served, %d rows scanned, %d skipped by indexes)\n",
			final.QueriesServed, final.RowsScanned, final.RowsSkipped)
	}
}
