// Command decisionload is the seeded load generator for consentd: it
// synthesizes a deterministic consent-string population, pre-renders
// batch request bodies shaped like real bid traffic (Zipf-skewed string
// popularity, runs of vendor/purpose questions per string), drives the
// server from concurrent workers, and reports throughput with p50/p99
// request latency. With -validate it replays sampled batches and checks
// every answer against the naive reference path (full re-decode + map
// lookups over the same generated GVL) — the correctness gate used by
// `make decision-smoke`.
//
// Usage:
//
//	decisionload -server http://127.0.0.1:8344 [-decisions 1000000]
//	             [-workers 4] [-batch 512] [-seed 1] [-population 10000]
//	             [-zipf 1.1] [-uniform] [-validate N] [-json]
//
// The generated population and traffic are functions of -seed alone, so
// a run is exactly reproducible; the GVL flags must match the ones the
// target consentd was started with for -validate to agree.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"time"

	"repro/internal/decision"
	"repro/internal/gvl"
)

func main() {
	var (
		server   = flag.String("server", "", "consentd base URL (required)")
		seed     = flag.Uint64("seed", 1, "root seed for population and traffic")
		popSize  = flag.Int("population", 10_000, "distinct consent strings generated")
		decs     = flag.Int("decisions", 1_000_000, "total decisions to drive")
		workers  = flag.Int("workers", 4, "concurrent client connections")
		batch    = flag.Int("batch", 512, "decisions per batch request")
		bodies   = flag.Int("bodies", 64, "pre-rendered request bodies cycled through")
		zipfExp  = flag.Float64("zipf", 1.1, "Zipf exponent for string popularity")
		uniform  = flag.Bool("uniform", false, "uniform string popularity (cache-hostile)")
		maxVLV   = flag.Int("max-vlv", 215, "max vendor-list version stamped on strings")
		validate = flag.Int("validate", 0, "after the run, re-check N batches against the naive path")
		gvlSeed  = flag.Uint64("gvl-seed", 1, "GVL seed (must match the server's for -validate)")
		gvlVers  = flag.Int("gvl-versions", 215, "GVL versions (must match the server's)")
		gvlVend  = flag.Int("gvl-vendors", 650, "GVL peak vendors (must match the server's)")
		flexProb = flag.Float64("flexible-prob", 0.25, "flexible-purpose probability (must match the server's)")
		asJSON   = flag.Bool("json", false, "emit the result as one JSON object")
	)
	flag.Parse()
	if *server == "" {
		flag.Usage()
		os.Exit(2)
	}

	pop, err := decision.GeneratePopulation(decision.PopulationConfig{
		Seed:   *seed,
		Size:   *popSize,
		MaxVLV: *maxVLV,
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, "decisionload:", err)
		os.Exit(1)
	}
	cfg := decision.LoadConfig{
		ServerURL:    *server,
		Population:   pop,
		Seed:         *seed,
		Workers:      *workers,
		Decisions:    *decs,
		BatchSize:    *batch,
		Bodies:       *bodies,
		ZipfExponent: *zipfExp,
		Uniform:      *uniform,
	}

	res, err := decision.RunLoad(cfg)
	if err != nil {
		fmt.Fprintln(os.Stderr, "decisionload:", err)
		os.Exit(1)
	}

	var vr *decision.ValidateResult
	if *validate > 0 {
		h := gvl.GenerateHistory(gvl.HistoryConfig{
			Seed: *gvlSeed, Versions: *gvlVers, PeakVendors: *gvlVend,
		})
		resolver := decision.NewResolver(gvl.UpgradeHistory(h, gvl.V2UpgradeConfig{
			FlexibleSeed: *gvlSeed, FlexibleProb: *flexProb,
		}))
		vr, err = decision.ValidateAgainstNaive(cfg, resolver, *validate)
		if err != nil {
			fmt.Fprintln(os.Stderr, "decisionload: validate:", err)
			os.Exit(1)
		}
	}

	if *asJSON {
		out := struct {
			*decision.LoadResult
			Validation *decision.ValidateResult `json:"validation,omitempty"`
		}{res, vr}
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		enc.Encode(out)
	} else {
		fmt.Printf("decisionload: %d decisions in %d requests over %v\n",
			res.Decisions, res.Requests, res.Elapsed.Round(time.Millisecond))
		fmt.Printf("decisionload: %.0f decisions/sec; batch latency p50 %v, p99 %v\n",
			res.DecisionsPerSec, res.P50, res.P99)
		fmt.Printf("decisionload: bases: consent %d, legitimate-interest %d, denied %d\n",
			res.Bases["consent"], res.Bases["legitimate-interest"], res.Bases["none"])
		if vr != nil {
			fmt.Printf("decisionload: validated %d answers against the naive path, %d mismatches\n",
				vr.Checked, vr.Mismatches)
		}
	}
	if vr != nil && vr.Mismatches > 0 {
		fmt.Fprintln(os.Stderr, "decisionload: MISMATCH:", vr.FirstMismatch)
		os.Exit(1)
	}
}
