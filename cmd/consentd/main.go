// Command consentd serves real-time consent decisions: the serving-side
// counterpart of this repository's batch TCF analyses, answering "may
// vendor N process for purpose P under this TC string, and on which
// legal basis?" at auction latency (see DESIGN.md §10).
//
// Usage:
//
//	consentd [-addr 127.0.0.1:8344] [-max-inflight N] [-request-timeout 10s]
//	         [-cache N] [-cache-shards N] [-metrics]
//	         [-gvl-seed S] [-gvl-versions N] [-gvl-vendors N] [-flexible-prob P]
//
// At startup the daemon generates the deterministic GVL version history
// (the same internal/gvl model the batch side uses), upgrades it to v2
// with flexible-purpose enrichment, and pre-resolves every version into
// packed serving tables. Decisions then run entirely on bit arithmetic:
// raw strings are compiled once into the sharded LRU and every
// steady-state decision is allocation-free.
//
// Endpoints (behind a load-shedding limiter):
//
//	GET  /decide?tc=S&vendor=N&purpose=P   one decision as JSON
//	POST /v1/batch                         NDJSON in/out, one line per
//	                                       decision; {"t":…,"v":…,"p":…}
//	                                       lines, "t" sticky across lines
//	POST /v1/filter                        {"t":…,"purpose":P,"vendors":[…]}
//	                                       → the subset that may process
//	GET  /healthz                          counters, cache and GVL state
//	                                       (never load-shed)
//
// With -metrics, /metrics, /metrics.json, /debug/trace and
// /debug/pprof/ are mounted outside the limiter (decision counters by
// basis, cache hit ratio, latency histograms, per-request spans).
//
// Drive it with cmd/decisionload:
//
//	consentd -addr 127.0.0.1:8344 &
//	decisionload -server http://127.0.0.1:8344 -decisions 1000000
package main

import (
	"context"
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"repro/internal/decision"
	"repro/internal/gvl"
	"repro/internal/obs"
)

func main() {
	var (
		addr       = flag.String("addr", "127.0.0.1:8344", "listen address")
		maxInFly   = flag.Int("max-inflight", 256, "concurrent requests served before shedding with 429")
		reqTimeout = flag.Duration("request-timeout", 10*time.Second, "per-request deadline (0 disables)")
		cacheCap   = flag.Int("cache", 32768, "compiled consent strings cached")
		cacheShard = flag.Int("cache-shards", 16, "cache shard count (rounded up to a power of two)")
		metrics    = flag.Bool("metrics", false, "expose /metrics, /debug/trace and /debug/pprof (outside the limiter)")
		gvlSeed    = flag.Uint64("gvl-seed", 1, "seed for the generated GVL history")
		gvlVers    = flag.Int("gvl-versions", 215, "GVL versions to publish and pre-resolve")
		gvlVendors = flag.Int("gvl-vendors", 650, "peak vendor count of the generated GVL")
		flexProb   = flag.Float64("flexible-prob", 0.25, "probability a declared purpose is flexible in the v2 upgrade")
	)
	flag.Parse()

	t0 := time.Now()
	h := gvl.GenerateHistory(gvl.HistoryConfig{
		Seed:     *gvlSeed,
		Versions: *gvlVers,
		// InitialVendors keeps its generator default; the peak is the
		// knob that matters for table width.
		PeakVendors: *gvlVendors,
	})
	h2 := gvl.UpgradeHistory(h, gvl.V2UpgradeConfig{
		FlexibleSeed: *gvlSeed,
		FlexibleProb: *flexProb,
	})
	resolver := decision.NewResolver(h2)
	minV, maxV, nV := resolver.Versions()

	var reg *obs.Registry
	var tracer *obs.Tracer
	if *metrics {
		reg = obs.NewRegistry()
		// Service is the role, never a per-process identity, so span
		// exports stay byte-identical across deployments.
		tracer = obs.NewTracer(obs.TracerConfig{Service: "consentd"})
		tracer.RegisterMetrics(reg)
	}
	srv := decision.NewServer(decision.ServerConfig{
		Resolver:       resolver,
		Cache:          decision.CacheConfig{Capacity: *cacheCap, Shards: *cacheShard},
		MaxInFlight:    *maxInFly,
		RequestTimeout: *reqTimeout,
		Registry:       reg,
		Tracer:         tracer,
	})

	var handler http.Handler = srv.Handler()
	if *metrics {
		outer := http.NewServeMux()
		debug := obs.Handler(reg, tracer)
		outer.Handle("/metrics", debug)
		outer.Handle("/metrics.json", debug)
		outer.Handle("/debug/", debug)
		outer.Handle("/", handler)
		handler = outer
	}

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		fmt.Fprintln(os.Stderr, "consentd:", err)
		os.Exit(1)
	}
	fmt.Printf("consentd: %d GVL versions (v%d–v%d) pre-resolved in %v; serving on %s\n",
		nV, minV, maxV, time.Since(t0).Round(time.Millisecond), ln.Addr())
	fmt.Printf("consentd: endpoints /decide /v1/batch /v1/filter /healthz; ≤%d in flight, %v/request; cache %d strings.\n",
		*maxInFly, *reqTimeout, *cacheCap)
	if *metrics {
		fmt.Printf("consentd: telemetry on /metrics, /metrics.json, /debug/trace, /debug/pprof/\n")
	}

	httpSrv := &http.Server{
		Handler:           handler,
		ReadHeaderTimeout: 5 * time.Second,
		IdleTimeout:       60 * time.Second,
	}
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	errc := make(chan error, 1)
	go func() { errc <- httpSrv.Serve(ln) }()
	select {
	case err := <-errc:
		fmt.Fprintln(os.Stderr, "consentd:", err)
		os.Exit(1)
	case <-ctx.Done():
		shutdownCtx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		if err := httpSrv.Shutdown(shutdownCtx); err != nil {
			fmt.Fprintln(os.Stderr, "consentd: shutdown:", err)
			os.Exit(1)
		}
		st := srv.Cache().Stats()
		fmt.Printf("consentd: drained and stopped (cache %d/%d entries, %.1f%% hit ratio, %d evictions)\n",
			st.Size, st.Capacity, 100*st.HitRatio(), st.Evictions)
	}
}
