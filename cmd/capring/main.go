// Command capring fronts N capd storage nodes as one replicated
// capture store (DESIGN.md §11): deterministic ring placement, hinted
// handoff while a node is down, anti-entropy repair when it returns,
// and quorum-acknowledged writes — the fleet keeps ingesting and capq
// keeps answering through the loss of any single storage node.
//
// Usage:
//
//	capring -nodes node-0=http://127.0.0.1:8650,node-1=http://127.0.0.1:8651,node-2=http://127.0.0.1:8652 \
//	        -shards 16 [-replicas 2] [-quorum 1] [-seed 1] \
//	        [-addr 127.0.0.1:8660] [-handoff-dir DIR] [-metrics]
//
// Every node must be a capd started with -ingest against a store
// created with the same -shards count. The ring seed, replica count,
// and node names must be stable across restarts — placement is
// derived from them.
//
// Endpoints (same shapes as a single capd, so fleetd workers and capq
// talk to either interchangeably):
//
//	POST /ingest           unordered batch (capturedb wire format)
//	POST /ingest?at=S&n=N  ordered fleet commit; 503 + Retry-After when
//	                       the reorder buffer sheds or the write quorum
//	                       is missed (the pusher retries, never drops)
//	GET  /query?…          streaming NDJSON, replica failover hidden
//	GET  /count?…          {"count": N}
//	GET  /ring             placement table and live node states
//	GET  /healthz          writer snapshot (never load-shed)
//
// With -metrics, /metrics and /metrics.json expose the repl_* family
// (per-node up/down gauges, handoff depth, repair volume, quorum
// latency) outside the limiter, so the ring stays observable while it
// is shedding.
//
// With -handoff-dir, hinted handoff is mirrored to a durable NDJSON
// log per node (torn-tail repair-on-open); hints survive a capring
// restart and are replayed on boot.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/signal"
	"sort"
	"strings"
	"sync"
	"syscall"
	"time"

	"repro/internal/capstore"
	"repro/internal/capstore/replica"
	"repro/internal/obs"
	"repro/internal/resilience"
)

func parseNodes(s string) ([]replica.NodeConfig, error) {
	var nodes []replica.NodeConfig
	seen := map[string]bool{}
	for _, part := range strings.Split(s, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		name, url, ok := strings.Cut(part, "=")
		if !ok || name == "" || url == "" {
			return nil, fmt.Errorf("bad -nodes entry %q (want name=url)", part)
		}
		if seen[name] {
			return nil, fmt.Errorf("duplicate node name %q", name)
		}
		seen[name] = true
		nodes = append(nodes, replica.NodeConfig{Name: name, URL: url})
	}
	// Deterministic placement must not depend on flag order.
	sort.Slice(nodes, func(i, j int) bool { return nodes[i].Name < nodes[j].Name })
	return nodes, nil
}

func main() {
	var (
		nodesFlag  = flag.String("nodes", "", "comma-separated name=url storage nodes (required; capd -ingest instances)")
		shards     = flag.Int("shards", 0, "segment count the node stores were created with (required)")
		replicas   = flag.Int("replicas", 2, "replication factor R (each segment lives on R nodes)")
		quorum     = flag.Int("quorum", 1, "per-shard write quorum W (1..replicas)")
		seed       = flag.Uint64("seed", 1, "placement ring seed (must be stable across restarts)")
		addr       = flag.String("addr", "127.0.0.1:8660", "listen address")
		handoffDir = flag.String("handoff-dir", "", "mirror hinted handoff to durable NDJSON logs in this directory")
		maxHandoff = flag.Int("max-handoff", 256, "hinted-handoff batches queued per down node before it goes dirty (repair on return)")
		maxPending = flag.Int("ingest-pending", 64, "ordered-ingest reorder batches buffered before shedding with 503")
		maxInFly   = flag.Int("max-inflight", 64, "concurrent requests served before shedding with 429")
		reqTimeout = flag.Duration("request-timeout", 30*time.Second, "per-request deadline (0 disables)")
		nodeTO     = flag.Duration("node-timeout", 10*time.Second, "per-node HTTP call deadline")
		quorumTO   = flag.Duration("quorum-timeout", 5*time.Second, "how long a push waits for its write quorum before 503")
		metrics    = flag.Bool("metrics", false, "expose /metrics and /metrics.json (outside the limiter)")
	)
	flag.Parse()
	if *nodesFlag == "" || *shards <= 0 {
		flag.Usage()
		os.Exit(2)
	}
	nodes, err := parseNodes(*nodesFlag)
	if err != nil {
		fmt.Fprintln(os.Stderr, "capring:", err)
		os.Exit(2)
	}

	var reg *obs.Registry
	var tracer *obs.Tracer
	if *metrics {
		reg = obs.NewRegistry()
		// Service is the role, not this process's identity — role names
		// keep trace exports byte-identical across deployments.
		tracer = obs.NewTracer(obs.TracerConfig{Service: "capring"})
		tracer.RegisterMetrics(reg)
	}
	w, err := replica.NewWriter(replica.Config{
		Nodes:             nodes,
		Shards:            *shards,
		Seed:              *seed,
		Replicas:          *replicas,
		Quorum:            *quorum,
		MaxPendingBatches: *maxPending,
		MaxHandoff:        *maxHandoff,
		HandoffDir:        *handoffDir,
		QuorumTimeout:     *quorumTO,
		NodeTimeout:       *nodeTO,
		Registry:          reg,
		Tracer:            tracer,
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, "capring:", err)
		os.Exit(1)
	}
	defer w.Close()

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		fmt.Fprintln(os.Stderr, "capring:", err)
		os.Exit(1)
	}
	fmt.Printf("capring: %d-node ring (R=%d, W=%d, seed %d, %d segments) on %s\n",
		len(nodes), *replicas, *quorum, *seed, *shards, ln.Addr())
	for _, n := range nodes {
		fmt.Printf("capring:   node %s at %s\n", n.Name, n.URL)
	}
	fmt.Printf("capring: endpoints /ingest /query /count /ring /healthz; ≤%d in flight; Ctrl-C shuts down gracefully.\n", *maxInFly)

	limiter := resilience.NewHTTPLimiter(resilience.HTTPLimiterConfig{
		MaxInFlight: *maxInFly,
		Timeout:     *reqTimeout,
	})
	outer := http.NewServeMux()
	// /healthz and the telemetry surface live outside the limiter:
	// probes and scrapes must work exactly when the ring is shedding.
	outer.Handle("/healthz", replica.HealthzHandler(w))
	if reg != nil {
		// The full capd-style debug surface: metrics, trace export, and
		// pprof, all outside the limiter so obsd scrapes keep working
		// while the ring sheds.
		debug := obs.Handler(reg, tracer)
		outer.Handle("/metrics", debug)
		outer.Handle("/metrics.json", debug)
		outer.Handle("/debug/trace", debug)
		outer.Handle("/debug/pprof/", debug)
		fmt.Printf("capring: telemetry on /metrics, /metrics.json, /debug/trace, /debug/pprof\n")
	}
	// POST /compact fans the pack-engine admin trigger out to every
	// node — one call compacts the whole ring. Mounted outside the
	// limiter like the other admin surfaces; per-node failures are
	// reported, not fatal (a down node compacts on its own at restart
	// or via its background compactor).
	outer.HandleFunc("/compact", func(rw http.ResponseWriter, r *http.Request) {
		if r.Method != http.MethodPost {
			rw.Header().Set("Allow", http.MethodPost)
			http.Error(rw, "POST only", http.StatusMethodNotAllowed)
			return
		}
		type nodeResult struct {
			Node          string `json:"node"`
			PackedRecords int64  `json:"packed_records"`
			Packs         int    `json:"packs"`
			Error         string `json:"error,omitempty"`
		}
		results := make([]nodeResult, len(nodes))
		var wg sync.WaitGroup
		for i, n := range nodes {
			wg.Add(1)
			go func(i int, n replica.NodeConfig) {
				defer wg.Done()
				results[i].Node = n.Name
				cl := capstore.NewClient(n.URL)
				cl.HTTP = &http.Client{Timeout: *nodeTO}
				res, err := cl.Compact()
				if err != nil {
					results[i].Error = err.Error()
					return
				}
				results[i].PackedRecords = res.PackedRecords
				results[i].Packs = res.Packs
			}(i, n)
		}
		wg.Wait()
		rw.Header().Set("Content-Type", "application/json")
		json.NewEncoder(rw).Encode(map[string]any{"nodes": results}) //nolint:errcheck
	})
	outer.Handle("/", limiter.Wrap(replica.Handler(w)))
	srv := &http.Server{
		Handler: outer,
		// WriteTimeout stays unset: /query legitimately streams for as
		// long as the per-request context allows.
		ReadHeaderTimeout: 5 * time.Second,
		IdleTimeout:       60 * time.Second,
	}
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	errc := make(chan error, 1)
	go func() { errc <- srv.Serve(ln) }()
	select {
	case err := <-errc:
		fmt.Fprintln(os.Stderr, "capring:", err)
		os.Exit(1)
	case <-ctx.Done():
		shutdownCtx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		if err := srv.Shutdown(shutdownCtx); err != nil {
			fmt.Fprintln(os.Stderr, "capring: shutdown:", err)
			os.Exit(1)
		}
		st := w.Stats()
		fmt.Printf("capring: drained and stopped (%d records committed, next seq %d)\n", st.Committed, st.NextSeq)
	}
}
