// Command fleetd hosts the fleet coordinator: the control plane of the
// distributed crawl (DESIGN.md §9). It materializes the feed window's
// work list, hands out leases to `crawl -fleet` workers, reassigns
// leases whose heartbeats stop, checkpoints per-chunk outcomes for
// crash-safe resume, and accounts for every share exactly once.
//
// Usage:
//
//	fleetd -ingest http://127.0.0.1:8650 [-addr 127.0.0.1:8660]
//	       [-seed 1] [-domains 20000] [-shares 800]
//	       [-from YYYY-MM-DD] [-to YYYY-MM-DD]
//	       [-lease-size 32] [-lease-ttl 10s] [-retry-budget 3]
//	       [-max-leases 64] [-checkpoint fleet.ckpt]
//	       [-retries 3] [-breaker 0] [-politeness 2ms] [-metrics]
//	       [-obsd http://127.0.0.1:8670]
//
// Endpoints:
//
//	POST /lease /heartbeat /complete   the fleet wire protocol
//	GET  /status                       ledger + chunk states
//	GET  /config                       RunConfig for workers
//	GET  /healthz                      liveness (never load-shed)
//
// Workers need only the coordinator address: every run parameter that
// determinism depends on (world seed, crawl seed, retry budget,
// politeness, the capd ingest URL) is served on /config, so a fleet
// cannot accidentally run with mismatched seeds.
//
// With -metrics the unified telemetry surface (/metrics, /metrics.json,
// /debug/trace, /debug/pprof/) is mounted outside the protocol limiter.
//
// fleetd exits 0 once the window is drained (every share captured,
// dead-lettered, or — after Ctrl-C — dropped), printing the final
// ledger. A restart with the same flags and -checkpoint resumes where
// the previous run stopped.
package main

import (
	"context"
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/signal"
	"strconv"
	"syscall"
	"time"

	"repro/internal/capstore"
	"repro/internal/fleet"
	"repro/internal/obs"
	"repro/internal/resilience"
	"repro/internal/simtime"
	"repro/internal/socialfeed"
	"repro/internal/webworld"
)

func main() {
	var (
		addr       = flag.String("addr", "127.0.0.1:8660", "listen address")
		ingestURL  = flag.String("ingest", "", "capd ingest base URL (required; capd must run with -ingest)")
		seed       = flag.Uint64("seed", 1, "root seed (world, feed, and crawl streams derive from it)")
		domains    = flag.Int("domains", 20_000, "universe size")
		shares     = flag.Int("shares", 800, "social-feed shares per day")
		fromStr    = flag.String("from", "", "window start (YYYY-MM-DD or day index, default window start)")
		toStr      = flag.String("to", "", "window end (YYYY-MM-DD or day index, default window end)")
		leaseSize  = flag.Int("lease-size", 32, "work items per lease")
		leaseTTL   = flag.Duration("lease-ttl", 10*time.Second, "lease time-to-live without a heartbeat")
		budget     = flag.Int("retry-budget", 3, "leases a chunk may consume before its shares are dead-lettered")
		maxLeases  = flag.Int("max-leases", 64, "in-flight lease ceiling; beyond it lease requests are shed")
		checkpoint = flag.String("checkpoint", "", "progress log for crash-safe resume")
		retries    = flag.Int("retries", 3, "worker-side attempt budget per share")
		breaker    = flag.Int("breaker", 0, "worker-side per-domain breaker threshold (0 disables; breakers are order-dependent, keep 0 for reproducible runs)")
		politeness = flag.Duration("politeness", 2*time.Millisecond, "worker-side per-domain politeness delay")
		metrics    = flag.Bool("metrics", false, "expose /metrics, /debug/trace and /debug/pprof (outside the limiter)")
		obsURL     = flag.String("obsd", "", "obsd aggregator base URL: served to workers on /config and the destination for fleetd's own span export at drain")
	)
	flag.Parse()
	if *ingestURL == "" {
		flag.Usage()
		os.Exit(2)
	}

	from := simtime.Day(0)
	to := simtime.Day(simtime.NumDays - 1)
	if *fromStr != "" {
		from = parseDay(*fromStr)
	}
	if *toStr != "" {
		to = parseDay(*toStr)
	}

	world := webworld.New(webworld.Config{Seed: *seed, Domains: *domains})
	feed := socialfeed.New(world, socialfeed.Config{Seed: *seed, SharesPerDay: *shares})
	items := fleet.WorkFromFeed(feed, from, to)
	fmt.Printf("fleetd: window %s..%s, %d shares in %d-item leases\n",
		from, to, len(items), *leaseSize)

	var reg *obs.Registry
	var tracer *obs.Tracer
	if *metrics || *obsURL != "" {
		if *metrics {
			reg = obs.NewRegistry()
		}
		// Service is the role, never a per-process identity, so span
		// exports stay byte-identical across worker counts.
		tracer = obs.NewTracer(obs.TracerConfig{Service: "fleetd"})
		tracer.RegisterMetrics(reg)
	}

	capCl := capstore.NewClient(*ingestURL)
	deadLetters := resilience.NewMemDeadLetter()
	co, err := fleet.NewCoordinator(items, fleet.CoordinatorConfig{
		LeaseSize:        *leaseSize,
		LeaseTTL:         *leaseTTL,
		LeaseRetryBudget: *budget,
		MaxActiveLeases:  *maxLeases,
		CheckpointPath:   *checkpoint,
		Skip: func(at, n int64) error {
			_, err := capCl.RecordBatchAt(at, n, nil)
			return err
		},
		DeadLetter: deadLetters,
		Registry:   reg,
		Tracer:     tracer,
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, "fleetd:", err)
		os.Exit(1)
	}
	defer co.Close()

	rc := fleet.RunConfig{
		WorldSeed:        *seed,
		WorldDomains:     *domains,
		CrawlSeed:        *seed,
		RetryAttempts:    *retries,
		BreakerThreshold: *breaker,
		PolitenessMS:     politeness.Milliseconds(),
		IngestURL:        *ingestURL,
		ObsURL:           *obsURL,
	}
	handler := fleet.NewHandler(co, rc, fleet.ServerConfig{MaxInFlight: 2 * *maxLeases})
	if *metrics {
		outer := http.NewServeMux()
		debug := obs.Handler(reg, tracer)
		outer.Handle("/metrics", debug)
		outer.Handle("/metrics.json", debug)
		outer.Handle("/debug/", debug)
		outer.Handle("/", handler)
		handler = outer
	}

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		fmt.Fprintln(os.Stderr, "fleetd:", err)
		os.Exit(1)
	}
	fmt.Printf("fleetd: serving /lease /heartbeat /complete /status /config on %s\n", ln.Addr())
	if *metrics {
		fmt.Printf("fleetd: telemetry on /metrics, /metrics.json, /debug/trace, /debug/pprof/\n")
	}

	srv := &http.Server{
		Handler:           handler,
		ReadHeaderTimeout: 5 * time.Second,
		IdleTimeout:       60 * time.Second,
	}
	errc := make(chan error, 1)
	go func() { errc <- srv.Serve(ln) }()

	// Sweep at half the TTL: expired leases reassign within one extra
	// half-TTL at worst, and pending cursor skips retry on the same beat.
	sweepDone := make(chan struct{})
	go func() {
		defer close(sweepDone)
		ticker := time.NewTicker(*leaseTTL / 2)
		defer ticker.Stop()
		for {
			select {
			case <-co.Done():
				return
			case <-ticker.C:
				co.Sweep()
			}
		}
	}()

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	exitCode := 0
	select {
	case err := <-errc:
		fmt.Fprintln(os.Stderr, "fleetd:", err)
		os.Exit(1)
	case <-ctx.Done():
		// Early shutdown: drop unfinished work so the ledger still
		// balances, then drain the server.
		co.Abort()
		exitCode = 1
	case <-co.Done():
	}
	<-sweepDone
	shutdownCtx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	srv.Shutdown(shutdownCtx) //nolint:errcheck

	// fleetd is ephemeral from obsd's point of view: push the span
	// export on the way out, where a scrape cadence would miss it.
	if *obsURL != "" {
		if err := obs.PushSpans(http.DefaultClient, *obsURL+"/ingest/spans", tracer); err != nil {
			fmt.Fprintln(os.Stderr, "fleetd: span push:", err)
		}
	}

	l := co.Ledger()
	fmt.Printf("fleetd: drained — submitted=%d captures=%d dead=%d dropped=%d (leases=%d reassigned=%d dup-completions=%d)\n",
		l.Submitted, l.Captures, l.DeadLettered, l.Dropped, l.Leases, l.Reassigned, l.DuplicateCompletions)
	if got := l.Captures + l.DeadLettered + l.Dropped; got != l.Submitted {
		fmt.Fprintf(os.Stderr, "fleetd: LEDGER VIOLATION: captures+dead+dropped=%d, submitted=%d\n", got, l.Submitted)
		os.Exit(1)
	}
	if n := deadLetters.Len(); n > 0 {
		fmt.Printf("fleetd: %d dead-lettered shares by reason: %v\n", n, deadLetters.ByReason())
	}
	os.Exit(exitCode)
}

// parseDay accepts YYYY-MM-DD or a bare day index.
func parseDay(s string) simtime.Day {
	d := simtime.Day(-1)
	if t, err := time.Parse("2006-01-02", s); err == nil {
		d = simtime.FromTime(t)
	} else if idx, err := strconv.Atoi(s); err == nil {
		d = simtime.Day(idx)
	} else {
		fmt.Fprintf(os.Stderr, "fleetd: bad day %q (want YYYY-MM-DD or index)\n", s)
		os.Exit(2)
	}
	if !d.Valid() {
		fmt.Fprintf(os.Stderr, "fleetd: %s outside the observation window (%s – %s)\n",
			s, simtime.Day(0), simtime.Day(simtime.NumDays-1))
		os.Exit(2)
	}
	return d
}
