// GVL study: the ad-tech vendor measurements of Section 4.2. The IAB's
// Global Vendor List makes vendors' data-processing purposes and legal
// bases publicly queryable; this example generates the 215-version
// history, serializes one version in the vendor-list.json wire format,
// and computes the Figure 7/8 longitudinal series — including the
// paper's surprising result that on net more vendors switched from
// claiming legitimate interest to obtaining consent than the reverse.
package main

import (
	"encoding/json"
	"fmt"

	"repro"
	"repro/internal/gvl"
	"repro/internal/report"
	"repro/internal/tcf"
)

func main() {
	history := repro.GenerateGVLHistory(repro.DefaultGVLConfig())
	fmt.Printf("Generated %d GVL versions (%s … %s)\n\n",
		len(history.Versions),
		history.Versions[0].LastUpdated.Format("2006-01-02"),
		history.Versions[len(history.Versions)-1].LastUpdated.Format("2006-01-02"))

	// One version in the consensu.org wire format.
	latest := &history.Versions[len(history.Versions)-1]
	data, err := json.Marshal(latest)
	if err != nil {
		panic(err)
	}
	fmt.Printf("vendor-list.json v%d: %d vendors, %d bytes\n", latest.VendorListVersion, len(latest.Vendors), len(data))
	v := latest.Vendors[0]
	fmt.Printf("example vendor: %q consents for purposes %v, claims legitimate interest for %v\n\n",
		v.Name, v.PurposeIDs, v.LegIntPurposeIDs)

	// Per-purpose legitimate-interest shares (Section 5.2: "at least a
	// fifth of the vendors" per purpose).
	consentCounts, liCounts := latest.PurposeCounts()
	fmt.Println("Purpose declarations on the latest version:")
	for _, p := range tcf.Purposes() {
		fmt.Printf("  %d %-42s consent %3d  legitimate-interest %3d (%.0f%% of vendors)\n",
			p.ID, p.Name, consentCounts[p.ID], liCounts[p.ID],
			100*float64(liCounts[p.ID])/float64(len(latest.Vendors)))
	}
	fmt.Println()

	fmt.Println(report.GVLSeries(history.PurposeSeries()))
	fmt.Println(report.LegalBasisFlows(history))

	// Per-kind totals across the window.
	totals := map[gvl.ChangeKind]int{}
	for _, c := range history.DiffAll() {
		totals[c.Kind]++
	}
	fmt.Printf("Window totals: %d joins, %d departures, %d LI→consent vs %d consent→LI switches\n",
		totals[gvl.VendorJoined], totals[gvl.VendorLeft],
		totals[gvl.LegIntToConsent], totals[gvl.ConsentToLegInt])
}
