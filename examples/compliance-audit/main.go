// Compliance audit: the ecosystem's standardization makes privacy
// violations measurable at scale (Section 5.2: "regulators could
// exploit the structure provided by CMPs to audit privacy practices at
// scale"). This example audits every TCF website among the toplist's
// top 2,000 for the violation classes of Matte et al. (S&P 2020) —
// consent signals sent before any user choice, positive consent stored
// after an explicit opt-out, non-affirmative accept wording, and
// missing first-page reject options — and prints one concrete
// violating site's evidence.
package main

import (
	"fmt"

	"repro"
	"repro/internal/compliance"
	"repro/internal/report"
	"repro/internal/simtime"
)

func main() {
	cfg := repro.TestConfig()
	s := repro.NewStudy(cfg)

	fmt.Println("Auditing TCF websites in the toplist top 2000 (May 2020) …")
	auditor := compliance.New(s.World)
	top := s.Toplist.Top(2_000)
	res, err := auditor.Survey(top, simtime.Table1Snapshot)
	if err != nil {
		panic(err)
	}
	fmt.Println(report.Compliance(res))

	// Show the evidence trail for one site that ignores opt-outs.
	for _, domain := range top {
		r, err := auditor.AuditSite(domain, simtime.Table1Snapshot)
		if err != nil || r == nil || !r.Has(compliance.ConsentAfterOptOut) {
			continue
		}
		fmt.Printf("Example violation on %s (%s):\n", r.Domain, r.CMP)
		fmt.Printf("  the audit opted out explicitly, yet the stored consensu.org cookie grants consent:\n")
		c, err := repro.DecodeConsentString(r.StoredAfterOptOut)
		if err != nil {
			panic(err)
		}
		fmt.Printf("  stored string: %q\n", r.StoredAfterOptOut)
		fmt.Printf("  decodes to: %d purposes allowed, %d vendors granted\n",
			len(c.PurposesAllowed), len(c.ConsentedVendors()))
		break
	}
}
