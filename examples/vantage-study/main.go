// Vantage study: "The notion that a web-page has a single set of
// observer-independent privacy features is dead" (Section 5.1). This
// example reproduces Tables 1 and A.3 — CMP occurrence measured from
// six vantage configurations — and the monthly coverage series showing
// CCPA adoption making CMPs visible from the US over time.
package main

import (
	"fmt"

	"repro"
	"repro/internal/report"
	"repro/internal/simtime"
)

func main() {
	cfg := repro.TestConfig()
	s := repro.NewStudy(cfg)
	const topN = 1_000

	fmt.Println("Crawling the toplist top 1000 from six vantage configurations …")
	fmt.Println()
	fmt.Println(report.VantageTable(
		"Table 1 — CMP occurrence by vantage point (May 2020)",
		s.VantageTable(repro.Table1Snapshot, topN)))
	fmt.Println(report.VantageTable(
		"Table A.3 — the same measurement in January 2020",
		s.VantageTable(repro.TableA3Snapshot, topN)))

	fmt.Println("Monthly coverage series (this takes a minute):")
	pts := s.CoverageSeries(simtime.Date(2019, 7, 1), simtime.Date(2020, 8, 31), 500)
	fmt.Println(report.CoverageSeries(pts))

	fmt.Println("Takeaways (Section 3.5):")
	fmt.Println(" - cloud address space loses ≈10% of CMP sites to anti-bot interstitials;")
	fmt.Println(" - the US vantage misses EU-only embeds, shrinking as CCPA adoption spreads;")
	fmt.Println(" - aggressive crawl timeouts cost ≈2%; browser language costs nothing.")
}
