// Timing experiment: the user-interface measurements of Section 4.3.
// Part 1 reproduces the randomized field experiment with Quantcast's
// real dialog in two configurations (Figure 10), including the
// Mann–Whitney U tests; part 2 reproduces the TrustArc opt-out cost
// measurement on forbes.com (Figure 9). It also shows the TCF consent
// string an accepting user ends up storing in the global consensu.org
// cookie.
package main

import (
	"fmt"

	"repro"
	"repro/internal/consent"
	"repro/internal/report"
)

func main() {
	// The dialog requests consent for every vendor on the current GVL.
	history := repro.GenerateGVLHistory(repro.DefaultGVLConfig())
	list := &history.Versions[len(history.Versions)-1]

	exp := repro.NewFieldExperiment(1, list)
	fmt.Printf("Simulating %d page loads of mitmproxy.org with an embedded Quantcast dialog …\n\n", exp.Visitors)
	sessions := exp.Run()
	res, err := repro.AnalyzeSessions(sessions)
	if err != nil {
		panic(err)
	}
	fmt.Println(report.Quantcast(res))

	// Inspect one accepting session's consent string through the
	// public TCF codec.
	for _, s := range sessions {
		if s.Decision == consent.DecisionAccept {
			c, err := repro.DecodeConsentString(s.ConsentString)
			if err != nil {
				panic(err)
			}
			fmt.Printf("Example consent cookie: GVL v%d, %d vendors granted, %d purposes, string %q\n\n",
				c.VendorListVersion, len(c.ConsentedVendors()), len(c.PurposesAllowed),
				s.ConsentString)
			break
		}
	}

	flow := repro.NewTrustArcFlow(1)
	fmt.Println(report.TrustArc(flow.HourlySeries(consent.MeasurementWindowDays)))
	fmt.Println("Training users to accept: accepting closes the dialog immediately;")
	fmt.Println("opting out costs tens of seconds while requests fan out to 25 third parties.")
}
