// Coalition model: the paper's measurements speak to Woods & Böhme's
// "Commodification of Consent" theory, which predicts that consent
// sharing creates winner-takes-all dynamics ending in one global
// coalition. The measured reality differs: jurisdictional boundaries
// produced regional winners — Quantcast dominating the EU+UK and
// OneTrust the US (Section 5.2). This example runs the market model in
// both regimes and shows why the measurements and the theory disagree.
package main

import (
	"fmt"

	"repro/internal/coalition"
)

func run(title string, cfg coalition.Config, providers []coalition.Provider) {
	m := coalition.NewMarket(cfg, providers)
	out := m.Run()
	fmt.Println(title)
	for _, p := range out.SortedProviders() {
		fmt.Printf("  %-16s EU share %5.1f%%   US share %5.1f%%\n",
			m.Providers[p].Name, 100*out.Share[p][coalition.EU], 100*out.Share[p][coalition.US])
	}
	fmt.Printf("  adoption: EU %.0f%% / US %.0f%%   concentration (HHI): EU %.2f / US %.2f\n",
		100*out.Adoption[coalition.EU], 100*out.Adoption[coalition.US],
		out.HHI[coalition.EU], out.HHI[coalition.US])
	if out.GlobalCoalition(0.5) {
		fmt.Println("  → a single global coalition (the theory's prediction)")
	} else {
		fmt.Printf("  → distinct regional winners: %s in the EU, %s in the US (the measured regime)\n",
			m.Providers[out.Winner[coalition.EU]].Name, m.Providers[out.Winner[coalition.US]].Name)
	}
	fmt.Println()
}

func main() {
	fmt.Println("Consent-coalition market model (Woods & Böhme, WEIS 2020)")
	fmt.Println()

	// Regime 1: compliance requirements differ by jurisdiction, as the
	// GDPR/CCPA split makes them.
	run("Regime 1 — jurisdiction-specific compliance (GDPR vs CCPA):",
		coalition.DefaultConfig(), coalition.DefaultProviders())

	// Regime 2: no jurisdictional differentiation; the consent-sharing
	// network effect dominates.
	cfg := coalition.DefaultConfig()
	cfg.ComplianceWeight = 0.25
	cfg.NetworkWeight = 1.6
	providers := coalition.DefaultProviders()
	for i := range providers {
		providers[i].Fit = [2]float64{0.7, 0.7}
	}
	run("Regime 2 — undifferentiated compliance, pure network effect:", cfg, providers)

	fmt.Println("The paper's longitudinal data (Figures 4, A.4–A.6) matches regime 1:")
	fmt.Println("Quantcast held 38% EU+UK TLD share vs OneTrust's 16%, and neither")
	fmt.Println("displaced the other — jurisdictional boundaries partition the market.")
}
