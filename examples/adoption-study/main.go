// Adoption study: the paper's headline longitudinal result (Figure 6
// and the abstract) — CMP adoption in the toplist doubled from June
// 2018 to June 2019 and doubled again until June 2020, with visible
// spikes when GDPR and CCPA came into effect. This example runs the
// full 2.5-year crawl and renders the adoption series with the event
// timeline, plus the inter-CMP switching flows (Figure 4).
package main

import (
	"fmt"

	"repro"
	"repro/internal/analysis"
	"repro/internal/report"
	"repro/internal/simtime"
)

func main() {
	cfg := repro.TestConfig()
	s := repro.NewStudy(cfg)

	fmt.Println("Crawling March 2018 – September 2020 (this takes a few seconds) …")
	s.RunSocialCrawl(nil)

	points, err := s.AdoptionOverTime(cfg.ToplistSize, 7)
	if err != nil {
		panic(err)
	}
	fmt.Println(report.Adoption(
		fmt.Sprintf("Figure 6 — CMP adoption in the toplist top %d", cfg.ToplistSize),
		points, cfg.ToplistSize))

	jun18 := simtime.Date(2018, 6, 15)
	jun19 := simtime.Date(2019, 6, 15)
	jun20 := simtime.Date(2020, 6, 15)
	fmt.Printf("Growth Jun18→Jun19: ×%.1f   Jun19→Jun20: ×%.1f   (paper: ×2 and ×2)\n\n",
		analysis.GrowthFactor(points, jun18, jun19),
		analysis.GrowthFactor(points, jun19, jun20))

	flows, err := s.SwitchingFlows()
	if err != nil {
		panic(err)
	}
	fmt.Println(report.Flows(flows))
	fmt.Println("Note the gateway dynamic: Cookiebot loses far more websites to competitors than it gains.")
}
