// Quickstart: build a small study, crawl one simulated year, and print
// the CMP market share it measures — the minimal end-to-end use of the
// public API.
package main

import (
	"fmt"

	"repro"
	"repro/internal/simtime"
)

func main() {
	cfg := repro.TestConfig()
	cfg.Domains = 6_000
	cfg.SharesPerDay = 300
	cfg.ToplistSize = 1_000
	// Crawl only 2019 to keep the quickstart fast.
	cfg.CrawlFrom = simtime.Date(2019, 1, 1)
	cfg.CrawlTo = simtime.Date(2019, 12, 31)

	s := repro.NewStudy(cfg)
	fmt.Printf("Synthetic web: %d domains; toplist %s\n", s.World.NumDomains(), s.Toplist.ID)

	fmt.Println("Crawling 2019 …")
	s.RunSocialCrawl(nil)
	fmt.Printf("Captured %d pages from %d domains\n\n",
		s.Observations.Total, s.Observations.NumDomains())

	day := simtime.Date(2019, 12, 1)
	points, err := s.MarketShareByRank(day, []int{100, 500, 1_000})
	if err != nil {
		panic(err)
	}
	fmt.Printf("CMP market share on %s:\n", day)
	for _, pt := range points {
		fmt.Printf("  top %4d: %.1f%% of sites embed a studied CMP\n", pt.Size, 100*pt.TotalShare)
	}
}
